"""The evaluation service: concurrent clients getting micro-batched.

Starts a local evaluation server (the same thing ``repro serve`` runs), then
demonstrates the serving pipeline end to end:

* **micro-batching** -- eight concurrent clients each ask for one Monte
  Carlo evaluation at a different process-quality point (``p_scale``).  The
  requests agree on (model, method, options, seed), so the server groups
  them inside one batching window and dispatches a *single* shared-demand
  sweep-kernel call instead of eight scalar simulations -- the responses are
  exactly what ``repro.evaluate_sweep`` returns for the same seed;
* **the serial baseline** -- the same eight requests one at a time: each is
  a lone group and takes the scalar ``repro.evaluate`` path, so the wall
  time shows what batching saves;
* **the response cache** -- re-firing the concurrent burst is answered from
  the in-process LRU without any recomputation;
* **/metrics** -- the counters capacity planning would scrape.

Run with::

    python examples/service_client.py
"""

from __future__ import annotations

import pathlib
import sys
import time
from concurrent.futures import ThreadPoolExecutor

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.scenarios import many_small_faults_scenario  # noqa: E402
from repro.service import EvaluationServer, ServiceClient, start_in_background  # noqa: E402

POINTS = 8
REPLICATIONS = 20_000
SEED = 7


def fire_concurrently(client: ServiceClient, model, scales) -> tuple[list, float]:
    def one(scale: float):
        return client.evaluate_detail(
            model,
            "montecarlo",
            options={"replications": REPLICATIONS},
            seed=SEED,
            p_scale=scale,
        )

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=len(scales)) as pool:
        outcomes = list(pool.map(one, scales))
    return outcomes, time.perf_counter() - start


def main() -> None:
    model = many_small_faults_scenario(n=100)
    scales = [0.125 + 0.875 * index / (POINTS - 1) for index in range(POINTS)]

    server = EvaluationServer(batch_window_ms=50.0)
    with start_in_background(server) as handle:
        client = ServiceClient(port=handle.port)
        print(f"evaluation service up on port {handle.port}")
        print(f"workload: {POINTS} montecarlo points, {REPLICATIONS} replications each\n")

        outcomes, concurrent_elapsed = fire_concurrently(client, model, scales)
        print("concurrent clients (micro-batched):")
        for (result, served), scale in zip(outcomes, scales):
            print(
                f"  p_scale={scale:5.3f}  mean_system={result['mc_mean_system']:.3e}  "
                f"served: batched={served['batched']} group_size={served['group_size']}"
            )
        print(f"  wall time: {concurrent_elapsed:.3f}s\n")

        start = time.perf_counter()
        for scale in scales:
            client.evaluate(
                model,
                "montecarlo",
                options={"replications": REPLICATIONS},
                seed=SEED + 1,  # a fresh seed: these must all be cache misses
                p_scale=scale,
            )
        serial_elapsed = time.perf_counter() - start
        print(f"serial loop over the same points: {serial_elapsed:.3f}s")
        print(f"micro-batching speedup: {serial_elapsed / concurrent_elapsed:.1f}x\n")

        warm, warm_elapsed = fire_concurrently(client, model, scales)
        cached = sum(1 for _, served in warm if served["cached"])
        print(f"warm burst: {cached}/{POINTS} answered from cache in {warm_elapsed:.3f}s")

        metrics = client.metrics()
        print("\nserver metrics:")
        for key in (
            "requests_total",
            "evaluations_computed",
            "dispatched_groups",
            "batched_groups",
            "batched_group_requests",
            "cache_hits_lru",
            "max_group_size",
        ):
            print(f"  {key}: {metrics[key]}")
    print("\nserver stopped.")


if __name__ == "__main__":
    main()
