"""Batched sweep evaluation: one pass over a whole process-quality axis.

The paper's central question -- how much the PFD distribution improves as the
development process improves -- is a sweep over the Appendix B quality knob
``p_scale``.  This example evaluates a 25-point axis three ways:

* ``repro.evaluate_sweep`` with the **batched exact kernel**: one stacked
  convolution for the whole family instead of 25 convolutions;
* ``repro.evaluate_sweep`` with **shared-demand Monte Carlo** (common random
  numbers): one sampled development history scored against every point --
  faster than per-point simulation, and the cross-point ratio curve comes
  out smooth because neighbouring points share their sampling noise;
* the same Monte Carlo sweep with *independent* per-point streams, to show
  both the cost gap and the noise the shared-demand mode removes from
  cross-point comparisons.

Run with::

    python examples/batched_sweep.py
"""

from __future__ import annotations

import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro import evaluate, evaluate_sweep  # noqa: E402
from repro.experiments.scenarios import many_small_faults_scenario  # noqa: E402

REPLICATIONS = 100_000
SCALES = np.geomspace(0.125, 1.0, 25)


def main() -> None:
    model = many_small_faults_scenario(n=200)
    variations = [{"p_scale": float(scale)} for scale in SCALES]

    # ----------------------------------------------------------------- #
    # Exact PFD distributions: one stacked convolution for 25 points
    # ----------------------------------------------------------------- #
    start = time.perf_counter()
    exact = evaluate_sweep(model, "exact", variations, max_support=2048)
    exact_elapsed = time.perf_counter() - start
    print(f"batched exact sweep: {len(variations)} points in {exact_elapsed:.3f}s")

    # ----------------------------------------------------------------- #
    # Monte Carlo: shared demands (CRN) versus independent streams
    # ----------------------------------------------------------------- #
    start = time.perf_counter()
    shared = evaluate_sweep(
        model, "montecarlo", variations, replications=REPLICATIONS, seed=7
    )
    shared_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    independent = [
        evaluate(
            model.rescaled(variation["p_scale"]),
            "montecarlo",
            replications=REPLICATIONS,
            chunk_size=100_000,
            seed=(7, index),
        )
        for index, variation in enumerate(variations)
    ]
    independent_elapsed = time.perf_counter() - start
    print(
        f"shared-demand MC sweep: {shared_elapsed:.3f}s; "
        f"independent per-point streams: {independent_elapsed:.3f}s "
        f"({independent_elapsed / shared_elapsed:.1f}x slower)"
    )

    # ----------------------------------------------------------------- #
    # The table: exact vs simulated system mean, and the gain curve
    # ----------------------------------------------------------------- #
    print(f"\n{'p_scale':>8s} {'exact mean_2':>13s} {'CRN mc mean_2':>14s} "
          f"{'CRN gain':>9s} {'indep gain':>11s}")
    for variation, e, s, i in zip(variations, exact, shared, independent):
        print(
            f"{variation['p_scale']:>8.3f} {e['exact_mean']:>13.4e} "
            f"{s['mc_mean_system']:>14.4e} {s['mc_mean_ratio']:>9.5f} "
            f"{i['mc_mean_ratio']:>11.5f}"
        )

    # The shared-demand gain curve is monotone sample path by sample path;
    # the independent-stream curve carries fresh noise at every point.
    crn_gains = [result["mc_mean_ratio"] for result in shared]
    indep_gains = [result["mc_mean_ratio"] for result in independent]
    crn_wiggle = float(np.std(np.diff(crn_gains)))
    indep_wiggle = float(np.std(np.diff(indep_gains)))
    print(
        f"\npoint-to-point wiggle of the gain curve (std of successive "
        f"differences):\n  shared demands: {crn_wiggle:.2e}   "
        f"independent streams: {indep_wiggle:.2e} "
        f"({indep_wiggle / max(crn_wiggle, 1e-300):.0f}x noisier)"
    )
    print(
        "\nshared-demand sweeps reuse one sampled world across every point "
        "(common random numbers): equal marginals per point, shared noise "
        "across points -- use them for comparisons and trends, and "
        "independent streams when points must be independent."
    )


if __name__ == "__main__":
    main()
