"""Assessor workflow for a dual-channel plant-protection system (Fig. 1).

Walks through the assessment of the canonical protection-system scenario:

1. build the demand space, operational profile and failure-region geometry;
2. derive the fault model (the q_i are the profile measures of the regions);
3. compute confidence bounds and the supportable Safety Integrity Level for a
   single channel and for the 1-out-of-2 system;
4. express the diversity gain as a beta factor with its guaranteed bound;
5. update the claim with (simulated) failure-free operational experience.

Run with::

    python examples/protection_system_assessment.py
"""

from __future__ import annotations

import numpy as np

from repro.adjudication.architectures import NVersionSystem
from repro.assessment.bayesian import BayesianPfdAssessment
from repro.assessment.beta_factor import beta_factor, guaranteed_beta_factor
from repro.assessment.sil import sil_claim_for_system
from repro.core.system import OneOutOfTwoSystem, SingleVersionSystem
from repro.experiments.scenarios import protection_system_scenario
from repro.versions.generation import IndependentDevelopmentProcess


def main() -> None:
    scenario = protection_system_scenario()
    model = scenario.model

    print("=== Scenario: dual-channel plant protection system ===")
    print(f"  demand variables: {scenario.space.names}")
    print("  potential faults (p_i = introduction probability, q_i = region measure):")
    for name, p, q in zip(model.names, model.p, model.q):
        print(f"    {name:32s} p = {p:<6.3f} q = {q:.2e}")

    single = SingleVersionSystem(model)
    pair = OneOutOfTwoSystem(model)

    print("\n=== Reliability claims (99% confidence) ===")
    for label, system in (("single channel", single), ("1-out-of-2 system", pair)):
        claim = sil_claim_for_system(system, confidence=0.99, method="exact-distribution")
        print(f"  {label:18s}: bound = {claim.confidence_claim.bound:.2e}  ->  {claim.level.name}")

    print("\n=== Diversity gain as a common-cause beta factor ===")
    print(f"  model beta factor (mu2/mu1):      {beta_factor(model):.4f}")
    print(f"  guaranteed by eq. (4) (p_max):    <= {guaranteed_beta_factor(model.p_max):.4f}")

    print("\n=== Demand-by-demand check of one developed pair ===")
    rng = np.random.default_rng(2001)
    process = IndependentDevelopmentProcess(model)
    pair_of_versions = process.sample_pair(rng)
    architecture = NVersionSystem(
        [pair_of_versions.channel_a, pair_of_versions.channel_b],
        scenario.regions,
        scenario.profile,
    )
    simulated = architecture.simulate(rng, demands=50_000)
    print(f"  channel A faults: {pair_of_versions.channel_a.fault_names or ('none',)}")
    print(f"  channel B faults: {pair_of_versions.channel_b.fault_names or ('none',)}")
    print(f"  simulated channel PFDs: {np.round(simulated.channel_pfd_estimates, 5)}")
    print(f"  simulated system PFD:   {simulated.system_pfd_estimate:.5f}"
          f"  (analytic for this pair: {architecture.analytic_system_pfd():.5f})")

    print("\n=== Updating the claim with operational experience ===")
    assessment = BayesianPfdAssessment.from_model(model, versions=2)
    requirement = 1e-4
    for demands in (0, 1_000, 10_000, 100_000):
        probability = assessment.prob_requirement_met(requirement, demands)
        print(f"  after {demands:>7d} failure-free demands:"
              f"  P(PFD <= {requirement:.0e}) = {probability:.5f}")
    needed = assessment.demands_needed_for_confidence(requirement, confidence=0.999)
    print(f"  failure-free demands needed for 99.9% confidence in PFD <= {requirement:.0e}: {needed}")


if __name__ == "__main__":
    main()
