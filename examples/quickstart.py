"""Quickstart: the fault-creation model in five minutes.

Builds a small fault model, computes the paper's headline quantities for a
single version and for a 1-out-of-2 diverse system, and prints the gain an
assessor could claim from diversity.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    FaultModel,
    OneOutOfTwoSystem,
    SingleVersionSystem,
    diversity_gain_summary,
    evaluate,
    evaluate_batch,
    pmax_gain_table,
)


def main() -> None:
    # A protection function with five potential faults.  p_i is the chance a
    # development (including all reviews and testing) leaves the fault in the
    # delivered version; q_i is the chance an operational demand hits its
    # failure region.
    model = FaultModel(
        p=np.array([0.05, 0.03, 0.02, 0.01, 0.005]),
        q=np.array([1e-4, 5e-5, 2e-4, 1e-5, 5e-4]),
        names=(
            "trip threshold off by one",
            "unit conversion error",
            "sensor saturation case",
            "mode switch race",
            "stale input timeout",
        ),
    )

    single = SingleVersionSystem(model)
    pair = OneOutOfTwoSystem(model)

    print("=== Fault model ===")
    for fault in model.fault_classes():
        print(f"  {fault.name:28s}  p = {fault.probability:<7.3f} q = {fault.impact:.1e}")
    print(f"  p_max = {model.p_max}")

    print("\n=== Single version vs 1-out-of-2 system ===")
    print(f"  mean PFD:        {single.mean_pfd():.3e}   vs   {pair.mean_pfd():.3e}")
    print(f"  std of PFD:      {single.std_pfd():.3e}   vs   {pair.std_pfd():.3e}")
    print(f"  P(any fault):    {single.prob_any_fault():.4f}     vs   {pair.prob_any_fault():.6f}")
    print(f"  99% PFD bound:   {single.exact_bound(0.99):.3e}   vs   {pair.exact_bound(0.99):.3e}")

    print("\n=== Gain from diversity (assessor view) ===")
    summary = diversity_gain_summary(model, confidence=0.99)
    print(f"  mean ratio mu2/mu1:            {summary.mean_ratio:.4f}")
    print(f"  guaranteed by eq. (4):         <= {summary.guaranteed_mean_ratio:.4f} (p_max)")
    print(f"  risk ratio P(N2>0)/P(N1>0):    {summary.risk_ratio:.4f}  (eq. (10))")
    print(f"  99% bound ratio:               {summary.bound_ratio:.4f}")
    print(f"  guaranteed by eq. (12):        <= {summary.guaranteed_bound_ratio:.4f}")
    print(f"  'independent failures' claim would predict mu2 = {summary.independence_mean:.2e};")
    print(f"  the model predicts mu2 = {summary.mean_pair:.2e} "
          f"({'worse' if summary.independence_is_optimistic else 'no worse'} than independence).")

    print("\n=== The paper's Section 5.1 table ===")
    for row in pmax_gain_table():
        print(
            f"  p_max = {row.p_max:<5} -> bound reduction factor {row.gain_factor:.3f} "
            f"({row.improvement_factor:.1f}x better)"
        )

    # The unified evaluation API: every registered method (moments, exact,
    # normal, bounds, montecarlo, tail-quantile, ...) through one dispatch
    # path, with typed results.  `python -m repro methods` lists them.
    print("\n=== Unified evaluation API ===")
    tail = evaluate(model, "tail-quantile", level=0.999, threshold=1e-4)
    print(f"  99.9% PFD quantile (exact):    {tail['tail_quantile']:.3e}")
    print(f"  P(PFD > 1e-4):                 {tail['tail_exceedance']:.3e}")
    for result in evaluate_batch(
        model,
        ["moments", ("montecarlo", {"replications": 50_000})],
        seed=7,
    ):
        print(f"  {result.method:11s} metrics in {result.elapsed_seconds * 1e3:7.1f} ms: "
              f"{sorted(result.metric_dict())[:3]} ...")


if __name__ == "__main__":
    main()
