"""Synthetic replication of the Knight-Leveson qualitative check (Section 7).

The paper validates its conclusions qualitatively against the Knight-Leveson
N-version programming experiment: over the 27 versions produced there,
diversity reduced both the sample mean of the PFD and -- greatly -- its sample
standard deviation.  The original data set is not available, so this example
runs the synthetic stand-in: 27 versions are developed from a fault-creation
model, every one of the 351 possible pairs is formed, and the same sample
statistics are computed.

Run with::

    python examples/knight_leveson_replication.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments.knight_leveson import SyntheticNVersionExperiment
from repro.experiments.scenarios import many_small_faults_scenario


def main() -> None:
    model = many_small_faults_scenario(n=60)
    experiment = SyntheticNVersionExperiment(model, version_count=27)

    print("=== Model predictions for the experiment ===")
    expected = experiment.expected_statistics()
    print(f"  single version: mean PFD {expected['single_mean']:.4e}, std {expected['single_std']:.4e}")
    print(f"  1-out-of-2 pair: mean PFD {expected['pair_mean']:.4e}, std {expected['pair_std']:.4e}")

    print("\n=== One synthetic 27-version experiment ===")
    result = experiment.run(rng=2001)
    summary = result.summary()
    print(f"  27 versions ->  sample mean PFD {summary['single_mean']:.4e}, "
          f"sample std {summary['single_std']:.4e}")
    print(f"  351 pairs   ->  sample mean PFD {summary['pair_mean']:.4e}, "
          f"sample std {summary['pair_std']:.4e}")
    print(f"  mean reduced by a factor of {summary['mean_reduction_factor']:.1f}, "
          f"std by a factor of {summary['std_reduction_factor']:.1f}")

    print("\n=== How often would a 27-version experiment show the effect? ===")
    replications = experiment.run_replicated(200, rng=7)
    mean_reduced = np.mean([replica.diversity_reduced_mean() for replica in replications])
    std_reduced = np.mean([replica.diversity_reduced_std() for replica in replications])
    print(f"  over {len(replications)} replications of the whole experiment:")
    print(f"    diversity reduced the sample mean in {mean_reduced:6.1%} of them")
    print(f"    diversity reduced the sample std  in {std_reduced:6.1%} of them")
    print("  -> the paper's qualitative observation is exactly what the fault-creation")
    print("     model predicts for an experiment of this size.")


if __name__ == "__main__":
    main()
