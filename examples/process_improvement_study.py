"""Process improvement and the gain from diversity (Section 4.2, Appendices A-B).

Reproduces the paper's central warning: the gain from diversity is *not* a
constant of the development process.

* A proportional improvement of the whole process (all p_i scaled by k < 1)
  always increases the gain (Appendix B).
* An improvement targeting a single fault class can *decrease* the gain once
  that fault's probability drops below a reversal point (Appendix A) -- even
  though reliability itself keeps improving.

Run with::

    python examples/process_improvement_study.py
"""

from __future__ import annotations

import numpy as np

from repro import FaultModel
from repro.core.process_improvement import (
    risk_ratio_proportional_sweep,
    risk_ratio_single_fault_sweep,
    two_fault_reversal_point,
)


def ascii_plot(xs: np.ndarray, ys: np.ndarray, width: int = 61, height: int = 12) -> str:
    """A minimal ASCII line plot (no plotting dependencies needed)."""
    grid = [[" "] * width for _ in range(height)]
    y_min, y_max = float(np.min(ys)), float(np.max(ys))
    span = (y_max - y_min) or 1.0
    for x, y in zip(xs, ys):
        column = int((x - xs[0]) / (xs[-1] - xs[0]) * (width - 1))
        row = height - 1 - int((y - y_min) / span * (height - 1))
        grid[row][column] = "*"
    lines = ["".join(row) for row in grid]
    lines.append("-" * width)
    lines.append(f"y in [{y_min:.4f}, {y_max:.4f}], x in [{xs[0]:.2f}, {xs[-1]:.2f}]")
    return "\n".join(lines)


def main() -> None:
    print("=== Appendix B: proportional process improvement ===")
    base = FaultModel(
        p=np.array([0.4, 0.2, 0.1, 0.05, 0.01]),
        q=np.array([0.02, 0.05, 0.01, 0.1, 0.03]),
    )
    k_values = np.linspace(0.05, 1.0, 40)
    proportional = risk_ratio_proportional_sweep(base, k_values)
    print("risk ratio P(N2>0)/P(N1>0) versus process quality factor k (p_i = k b_i):")
    print(ascii_plot(k_values, proportional.risk_ratios))
    print(f"monotone non-decreasing in k: {proportional.ratio_is_monotone_nondecreasing()}")
    print("=> a proportionally better process (smaller k) always gains MORE from diversity.\n")

    print("=== Appendix A: improving a single fault class ===")
    p_other = 0.5
    model = FaultModel(p=np.array([0.3, p_other]), q=np.array([0.1, 0.1]))
    values = np.linspace(0.01, 0.99, 99)
    single_fault = risk_ratio_single_fault_sweep(model, 0, values)
    reversal = two_fault_reversal_point(p_other)
    print(f"risk ratio versus p1 (p2 fixed at {p_other}):")
    print(ascii_plot(values, single_fault.risk_ratios))
    print(f"closed-form reversal point p1* = {reversal:.4f} "
          f"(sweep minimum at p1 = {single_fault.argmin_ratio():.4f})")
    print("=> pushing p1 below the reversal point keeps improving reliability, but")
    print("   REDUCES the advantage of the two-channel system over a single channel.")
    print("   (Note: the paper's Appendix A text places the reversal above p2; our")
    print("   re-derivation and the numerical sweep place it below -- see DESIGN.md 3.5.)\n")

    print("=== Reliability still improves while the gain reverses ===")
    print(f"{'p1':>6s}  {'P(N1>0)':>10s}  {'P(N2>0)':>10s}  {'ratio':>8s}")
    for probability in (0.5, 0.3, reversal, 0.05, 0.01):
        candidate = model.with_probability(0, float(probability))
        from repro.core.no_common_faults import prob_any_common_fault, prob_any_fault, risk_ratio

        print(
            f"{probability:6.3f}  {prob_any_fault(candidate):10.4f}  "
            f"{prob_any_common_fault(candidate):10.5f}  {risk_ratio(candidate):8.4f}"
        )
    print("\n=> the paper's conclusion: the gain from diverse redundancy is not a constant;")
    print("   it must be re-evaluated whenever the development process changes.")


if __name__ == "__main__":
    main()
