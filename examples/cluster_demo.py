"""Scaling out: two shards, one router, and a failover drill.

Runs the whole cluster topology in-process (the same objects
``repro serve`` / ``repro route`` run behind a port), then demonstrates
the scale-out contract end to end:

* **shard-affine routing** -- the router places each request by
  consistent hash of its batch-group digest, so a concurrent sweep over
  one model still lands on a single shard and micro-batches into one
  shared-demand kernel call, while distinct workloads spread across
  shards;
* **byte-identity through the router** -- every answer matches the
  in-process ``repro.evaluate`` result exactly: routing never changes a
  byte;
* **failover** -- one shard dies mid-demo; its key ranges spill to the
  survivor and the same workload answers identically, without a client
  retry loop in sight;
* **the remote cache tier** -- a shard warmed by earlier traffic answers
  a cold peer's ``--cache-peer`` probe, turning a would-be recompute into
  a cache hop (``served.cached == "remote"``);
* **router /metrics** -- the counters a capacity planner would scrape;
* **kill-a-replica drill** -- with ``replication=2`` the router write-all
  fans every computed result out to both replicas, so killing a shard
  loses *zero* warm cache: the survivor answers the whole warmed workload
  without recomputing a single evaluation.

Run with::

    python examples/cluster_demo.py
"""

from __future__ import annotations

import pathlib
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import suppress

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.api import evaluate  # noqa: E402
from repro.cluster import ShardRouter  # noqa: E402
from repro.experiments.scenarios import many_small_faults_scenario  # noqa: E402
from repro.service import EvaluationServer, ServiceClient, start_in_background  # noqa: E402

DISTINCT = 8
REPLICATIONS = 5_000
SEED = 7


def build_workload():
    """Distinct (model, seed) pairs: each is its own batch group, so the
    ring can spread them; identical requests would all share one shard."""
    return [
        (many_small_faults_scenario(n=40 + 5 * index), SEED + index)
        for index in range(DISTINCT)
    ]


def fire(client: ServiceClient, workload):
    def one(item):
        model, seed = item
        return client.evaluate_detail(
            model, "montecarlo", options={"replications": REPLICATIONS}, seed=seed
        )

    with ThreadPoolExecutor(max_workers=len(workload)) as pool:
        return list(pool.map(one, workload))


def main() -> None:
    workload = build_workload()
    shard_a = EvaluationServer(batch_window_ms=25.0)
    shard_b = EvaluationServer(batch_window_ms=25.0)

    with start_in_background(shard_a) as handle_a:
        handle_b = start_in_background(shard_b)
        router = ShardRouter(
            [f"127.0.0.1:{handle_a.port}", f"127.0.0.1:{handle_b.port}"],
            probe_interval_ms=200.0,
        )
        with start_in_background(router) as front:
            client = ServiceClient(port=front.port)
            print(f"router on port {front.port} over shards "
                  f"{handle_a.port} and {handle_b.port}\n")

            outcomes = fire(client, workload)
            split = (shard_a.registry["evaluations_computed"],
                     shard_b.registry["evaluations_computed"])
            print(f"cold burst: {DISTINCT} distinct payloads, "
                  f"shard split {split[0]}/{split[1]}")

            # Routing never changes a byte: every routed answer matches
            # the in-process API exactly.
            for (result, _), (model, seed) in zip(outcomes, workload):
                direct = evaluate(model, "montecarlo",
                                  seed=seed, replications=REPLICATIONS)
                assert result.metric_dict() == direct.to_dict()["metrics"]
            print("all routed answers byte-identical to repro.evaluate\n")

            # A concurrent sweep shares one batch group -> one shard, one
            # micro-batched kernel call, even through the router.
            sweep_model = many_small_faults_scenario(n=100)
            scales = [0.25, 0.5, 0.75, 1.0]

            def sweep_point(scale):
                return client.evaluate_detail(
                    sweep_model, "montecarlo",
                    options={"replications": REPLICATIONS},
                    seed=SEED, p_scale=scale,
                )

            with ThreadPoolExecutor(max_workers=len(scales)) as pool:
                sweep = list(pool.map(sweep_point, scales))
            group_sizes = {served["group_size"] for _, served in sweep}
            print(f"sweep over {len(scales)} p_scale points: "
                  f"group sizes seen {sorted(group_sizes)} "
                  "(one shard batched the whole group)\n")

            # Failover drill: kill shard B, then offer *fresh* work (new
            # seeds, so the router LRU cannot answer).  Keys the ring owns
            # to the dead shard fail one hop, eject it, and spill to the
            # survivor -- invisibly to the client.
            print("killing shard B ...")
            handle_b.stop()
            fresh = [(model, seed + 1000) for model, seed in workload]
            survived = fire(client, fresh)
            for (result, _), (model, seed) in zip(survived, fresh):
                direct = evaluate(model, "montecarlo",
                                  seed=seed, replications=REPLICATIONS)
                assert result.metric_dict() == direct.to_dict()["metrics"]
            snapshot = router.registry.snapshot()["counters"]
            print(f"fresh workload after the kill: {len(survived)}/{len(fresh)} "
                  "answered byte-identically by the survivor "
                  f"(failovers={snapshot['failovers']}, "
                  f"shard_ejects={snapshot['shard_ejects']})\n")

            metrics = client.metrics()
            print("router metrics:")
            for key in ("requests_total", "routed_requests", "fanout_requests",
                        "router_cache_hits", "failovers", "shard_ejects"):
                print(f"  {key}: {metrics[key]}")

    # The remote cache tier: a shard warmed by earlier traffic answers a
    # cold peer that names it with --cache-peer.
    warm = EvaluationServer(batch_window_ms=25.0)
    with start_in_background(warm) as warm_handle:
        model = many_small_faults_scenario(n=60)
        warm_client = ServiceClient(port=warm_handle.port)
        warm_client.evaluate(model, "montecarlo",
                             options={"replications": REPLICATIONS}, seed=3)

        cold = EvaluationServer(
            batch_window_ms=25.0,
            cache_peers=(f"127.0.0.1:{warm_handle.port}",),
        )
        with start_in_background(cold) as cold_handle:
            cold_client = ServiceClient(port=cold_handle.port)
            _, served = cold_client.evaluate_detail(
                model, "montecarlo",
                options={"replications": REPLICATIONS}, seed=3,
            )
            print(f"\nremote cache tier: cold shard served from peer "
                  f"(cached={served['cached']}), computed locally: "
                  f"{cold.registry['evaluations_computed']}")

    with suppress(RuntimeError):
        handle_b.stop()

    replication_drill()
    print("\ncluster stopped.")


def replication_drill() -> None:
    """Kill a replica under ``replication=2`` and lose no warm cache.

    Every computed result was write-all fanned out to both replicas, so
    after the primary dies the survivor answers the entire warmed
    workload from its cache tier -- byte-identically, and without
    computing a single evaluation again.
    """
    workload = build_workload()
    shards = [EvaluationServer(batch_window_ms=25.0) for _ in range(3)]
    handles = [start_in_background(shard) for shard in shards]
    addresses = [f"127.0.0.1:{handle.port}" for handle in handles]
    router = ShardRouter(addresses, replication=2, lru_size=0,
                         probe_interval_ms=200.0)
    front = start_in_background(router)
    client = ServiceClient(port=front.port)
    try:
        print(f"\nreplication drill: replication=2 over {', '.join(addresses)}")
        fire(client, workload)

        # The fan-out is asynchronous; wait until every result has been
        # replicated to its second shard before pulling the plug.
        want = len(workload)  # distinct * (R - 1)
        deadline = time.monotonic() + 15.0
        while (router.registry["replica_writes"]
               + router.registry["replica_write_failures"]) < want:
            if time.monotonic() > deadline:
                raise RuntimeError("replica fan-out did not finish in time")
            time.sleep(0.05)
        computed_before = sum(s.registry["evaluations_computed"] for s in shards)
        print(f"warmed {len(workload)} payloads, "
              f"replica_writes={router.registry['replica_writes']}")

        # Kill the busiest shard -- it primaries the most keys, so the
        # drill exercises as many read fallbacks as possible.
        victim = max(range(len(shards)),
                     key=lambda i: shards[i].registry["evaluations_computed"])
        print(f"killing {addresses[victim]} "
              f"(computed {shards[victim].registry['evaluations_computed']} "
              "of the warm-up) ...")
        handles[victim].stop()

        survived = fire(client, workload)
        for (result, served), (model, seed) in zip(survived, workload):
            direct = evaluate(model, "montecarlo",
                              seed=seed, replications=REPLICATIONS)
            assert result.metric_dict() == direct.to_dict()["metrics"]
            assert served["cached"] in ("lru", "disk", "remote")
        survivors_computed = sum(
            shards[i].registry["evaluations_computed"]
            for i in range(len(shards)) if i != victim
        )
        recomputed = survivors_computed - (
            computed_before - shards[victim].registry["evaluations_computed"])
        assert recomputed == 0, f"survivors recomputed {recomputed} evaluations"
        print(f"after the kill: {len(survived)}/{len(workload)} warm payloads "
              "answered byte-identically from the surviving replicas, "
              f"0 recomputed (replica_read_fallbacks="
              f"{router.registry['replica_read_fallbacks']})")
    finally:
        client.close()
        with suppress(RuntimeError):
            front.stop()
        for handle in handles:
            with suppress(RuntimeError):
                handle.stop()


if __name__ == "__main__":
    main()
