"""How much do the model's assumptions matter? (Section 6)

The model assumes (a) independent introduction of faults and (b)
non-overlapping failure regions.  This example quantifies the damage when each
assumption is violated:

* correlated mistakes -- a Gaussian-copula development process that preserves
  every marginal p_i but makes mistakes co-occur (or compete);
* overlapping failure regions -- versions whose PFD is the measure of the
  union of the regions present, compared with the non-overlap sum.

Run with::

    python examples/assumption_sensitivity.py
"""

from __future__ import annotations

import numpy as np

from repro.core.fault_model import FaultModel
from repro.demandspace.profiles import GridProfile
from repro.demandspace.regions import BoxRegion
from repro.demandspace.space import DiscreteDemandSpace
from repro.sensitivity.overlap import OverlappingRegionModel
from repro.sensitivity.robustness import robustness_report


def main() -> None:
    model = FaultModel(
        p=np.array([0.15, 0.1, 0.08, 0.05]),
        q=np.array([0.05, 0.1, 0.02, 0.2]),
    )

    print("=== Section 6.1: correlated fault introduction ===")
    report = robustness_report(
        model, correlations=(-0.4, 0.0, 0.4, 0.8), replications=40_000, rng=2001
    )
    header = (
        f"{'corr':>6s}  {'mean2 pred':>11s}  {'mean2 sim':>11s}  "
        f"{'ratio pred':>10s}  {'ratio sim':>10s}"
    )
    print(header)
    for row in report.rows():
        print(
            f"{row['correlation']:6.1f}  {row['mean_system_predicted']:11.4e}  "
            f"{row['mean_system_simulated']:11.4e}  {row['risk_ratio_predicted']:10.4f}  "
            f"{row['risk_ratio_simulated']:10.4f}"
        )
    print("  -> the mean-PFD predictions only depend on the marginals and survive;")
    print("     the fault-count-based risk ratio drifts as correlation grows, which is")
    print("     the paper's warning about trusting eq. (10) under strong correlation.")

    print("\n=== Section 6.2: overlapping failure regions ===")
    space = DiscreteDemandSpace(np.arange(100, dtype=float).reshape(-1, 1))
    profile = GridProfile.uniform(space)
    print(f"{'overlap':>8s}  {'sum mean':>10s}  {'union mean':>11s}  {'pessimism':>10s}")
    for overlap_fraction in (0.0, 0.25, 0.5, 0.75):
        width = 20.0
        shift = width * (1.0 - overlap_fraction)
        overlapping = OverlappingRegionModel(
            probabilities=np.array([0.3, 0.3]),
            regions=[
                BoxRegion(np.array([10.0]), np.array([10.0 + width - 1.0])),
                BoxRegion(np.array([10.0 + shift]), np.array([10.0 + shift + width - 1.0])),
            ],
            profile=profile,
        )
        result = overlapping.simulate(replications=30_000, rng=2001)
        print(
            f"{overlap_fraction:8.2f}  {result.sum_mean_single:10.4f}  "
            f"{result.union_mean_single:11.4f}  {result.single_mean_pessimism:10.3f}"
        )
    print("  -> ignoring overlap only ever OVER-estimates a version's PFD: a pessimistic,")
    print("     therefore safe, simplification -- exactly the paper's Section 6.2 argument.")


if __name__ == "__main__":
    main()
