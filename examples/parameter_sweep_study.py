"""A paper-style parameter-sweep study driven by the declarative study runner.

Reproduces the shape of the paper's Section 5.1 message -- how the gain from
diversity grows as the development process improves (``p_max`` shrinks) --
but across *four* model sizes and *five* assessment methods at once, using
:mod:`repro.studies`:

* the spec in ``specs/pmax_gain_study.json`` sweeps ``p_scale`` (the
  Appendix B process-quality knob, which scales every ``p_i`` and hence
  ``p_max``) log-evenly over a factor of 8, crossed with ``n``;
* each point is evaluated with moments, the guaranteed ``p_max`` bounds, the
  normal approximation, the exact PFD distribution and Monte Carlo;
* results are cached content-addressed, so the warm re-run at the end
  recomputes nothing.

Run with::

    python examples/parameter_sweep_study.py
"""

from __future__ import annotations

import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.studies import StudySpec, run_study  # noqa: E402

SPEC_PATH = pathlib.Path(__file__).resolve().parent / "specs" / "pmax_gain_study.json"


def main() -> None:
    spec = StudySpec.from_file(SPEC_PATH)
    print(f"study: {spec.name} -- {spec.point_count} points")
    print(spec.description)
    print()

    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = f"{tmp}/cache"
        result = run_study(spec, cache_dir=cache_dir, jobs=2)
        print(
            f"cold run: {result.summary['points']} points, "
            f"{result.summary['computed']} evaluations computed"
        )

        # One row per (n, p_scale): merge the per-method records.
        merged: dict[tuple[int, float], dict] = {}
        for record in result.records:
            merged.setdefault((record["n"], record["p_scale"]), {}).update(record)

        n_largest = max(n for n, _ in merged)
        print(f"\ngain from diversity at n={n_largest} (99% confidence bounds):")
        header = (
            f"{'p_scale':>8s} {'p_max':>8s} {'mean ratio':>11s} "
            f"{'bound ratio':>12s} {'guaranteed':>11s} {'exact 99%':>10s} {'mc ratio':>9s}"
        )
        print(header)
        for (n, p_scale), row in sorted(merged.items()):
            if n != n_largest:
                continue
            print(
                f"{p_scale:>8.4f} {row['p_max']:>8.4f} {row['mean_ratio']:>11.5f} "
                f"{row['normal_bound_ratio']:>12.5f} {row['guaranteed_bound_ratio']:>11.5f} "
                f"{row['exact_percentile']:>10.3e} {row['mc_mean_ratio']:>9.5f}"
            )

        # The paper's qualitative claim: a better process (smaller p_max)
        # means a proportionally larger gain from diversity.
        rows = [row for (n, _), row in sorted(merged.items()) if n == n_largest]
        ratios = [row["mean_ratio"] for row in rows]
        assert ratios == sorted(ratios), "mean ratio should grow with p_scale"

        warm = run_study(spec, cache_dir=cache_dir, jobs=2)
        print(
            f"\nwarm re-run: {warm.summary['cached']} evaluations served from cache, "
            f"{warm.summary['computed']} recomputed"
        )
        assert warm.records == result.records


if __name__ == "__main__":
    main()
