"""Streaming result containers for chunked / parallel Monte Carlo simulation.

These mirror the sample-based containers in :mod:`repro.montecarlo.results`
but are backed by the constant-memory accumulators of
:mod:`repro.stats.streaming` instead of full sample arrays, so they scale to
arbitrarily many replications.  Summary statistics (means, standard
deviations, zero-probabilities and the gain ratios built from them) are exact;
CDF, exceedance and percentile queries come from a fixed-bin histogram and are
exact to within one bin width (the atom at PFD = 0 is tracked exactly).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stats.streaming import StreamingHistogram, StreamingMoments

__all__ = ["StreamingSimulationResult", "StreamingPairResult"]


@dataclass(frozen=True)
class StreamingSimulationResult:
    """Streaming summaries for one kind of system (single version or 1-out-of-r).

    Attributes
    ----------
    pfds:
        Streaming moments (mean, variance, extrema, exact zero count) of the
        simulated PFD values.
    pfd_histogram:
        Fixed-bin histogram of the simulated PFD values over
        ``[0, sum(q_i)]``.
    fault_counts:
        Streaming moments of the simulated (common-)fault counts; its zero
        count is the number of fault-free replications.
    replications:
        Number of simulated developments.
    """

    pfds: StreamingMoments
    pfd_histogram: StreamingHistogram
    fault_counts: StreamingMoments
    replications: int

    def mean_pfd(self) -> float:
        """Sample mean of the simulated PFD."""
        return self.pfds.mean()

    def std_pfd(self) -> float:
        """Sample standard deviation of the simulated PFD."""
        return self.pfds.std()

    def prob_any_fault(self) -> float:
        """Fraction of replications containing at least one fault."""
        return 1.0 - self.fault_counts.fraction_zero()

    def prob_pfd_zero(self) -> float:
        """Fraction of replications with PFD exactly zero."""
        return self.pfds.fraction_zero()

    def prob_pfd_exceeds(self, threshold: float) -> float:
        """Fraction of replications whose PFD exceeds ``threshold`` (histogram resolution)."""
        return self.pfd_histogram.exceedance_probability(threshold)

    def pfd_percentile(self, level: float) -> float:
        """Empirical percentile of the simulated PFD (histogram resolution)."""
        return self.pfd_histogram.quantile(level)

    def mean_pfd_confidence_interval(self, confidence: float = 0.95) -> tuple[float, float]:
        """Normal-theory confidence interval for the mean PFD."""
        from scipy import stats as sps

        if not 0.0 < confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {confidence}")
        half_width = sps.norm.ppf(0.5 + confidence / 2.0) * self.pfds.standard_error()
        center = self.mean_pfd()
        return (center - half_width, center + half_width)


@dataclass(frozen=True)
class StreamingPairResult:
    """Joint streaming results for single versions and the 1-out-of-2 system.

    The same simulated developments feed both sides, so the paired ratios have
    the same lower-variance property as
    :class:`repro.montecarlo.results.PairSimulationResult`.
    """

    single: StreamingSimulationResult
    system: StreamingSimulationResult

    def mean_ratio(self) -> float:
        """Simulated ``mu_2 / mu_1``."""
        denominator = self.single.mean_pfd()
        if denominator == 0.0:
            return 1.0
        return self.system.mean_pfd() / denominator

    def std_ratio(self) -> float:
        """Simulated ``sigma_2 / sigma_1``."""
        denominator = self.single.std_pfd()
        if denominator == 0.0:
            return 1.0
        return self.system.std_pfd() / denominator

    def risk_ratio(self) -> float:
        """Simulated ``P(N_2 > 0) / P(N_1 > 0)`` (eq. (10))."""
        denominator = self.single.prob_any_fault()
        if denominator == 0.0:
            return 1.0
        return self.system.prob_any_fault() / denominator

    def bound_ratio(self, k: float) -> float:
        """Simulated ``(mu_2 + k sigma_2) / (mu_1 + k sigma_1)``."""
        denominator = self.single.mean_pfd() + k * self.single.std_pfd()
        if denominator == 0.0:
            return 1.0
        return (self.system.mean_pfd() + k * self.system.std_pfd()) / denominator

    def summary(self) -> dict:
        """Dictionary of the headline simulated quantities."""
        return {
            "replications": self.single.replications,
            "mean_single": self.single.mean_pfd(),
            "mean_system": self.system.mean_pfd(),
            "std_single": self.single.std_pfd(),
            "std_system": self.system.std_pfd(),
            "mean_ratio": self.mean_ratio(),
            "std_ratio": self.std_ratio(),
            "risk_ratio": self.risk_ratio(),
        }
