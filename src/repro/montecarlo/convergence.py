"""Convergence diagnostics for Monte Carlo estimates.

Simulation-based checks of the paper's analytic results need evidence that the
simulation has converged well enough for the comparison to be meaningful.  The
diagnostics here are deliberately simple and assumption-light: running means,
batch-means standard errors, and a relative-precision stopping criterion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["running_mean", "batch_means_standard_error", "ConvergenceDiagnostics"]


def running_mean(samples: np.ndarray) -> np.ndarray:
    """The running (cumulative) mean of a sample sequence."""
    array = np.asarray(samples, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("samples must be a non-empty 1-D array")
    return np.cumsum(array) / np.arange(1, array.size + 1)


def batch_means_standard_error(samples: np.ndarray, batches: int = 20) -> float:
    """Standard error of the mean estimated by the method of batch means.

    The sample sequence is split into ``batches`` contiguous batches; the
    standard error of the overall mean is estimated from the spread of the
    batch means.  More robust than the naive i.i.d. formula when samples are
    generated in correlated blocks.
    """
    array = np.asarray(samples, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("samples must be a non-empty 1-D array")
    if batches < 2:
        raise ValueError(f"batches must be at least 2, got {batches}")
    if array.size < batches:
        raise ValueError(f"need at least {batches} samples, got {array.size}")
    batch_size = array.size // batches
    trimmed = array[: batch_size * batches].reshape(batches, batch_size)
    means = trimmed.mean(axis=1)
    return float(np.std(means, ddof=1) / np.sqrt(batches))


@dataclass(frozen=True)
class ConvergenceDiagnostics:
    """Summary of the convergence of a Monte Carlo mean estimate."""

    mean: float
    standard_error: float
    batch_standard_error: float
    relative_half_width: float
    sample_size: int

    @staticmethod
    def from_samples(samples: np.ndarray, batches: int = 20, z: float = 1.96) -> "ConvergenceDiagnostics":
        """Compute diagnostics from a sample array.

        ``relative_half_width`` is the half-width of the ``z``-level confidence
        interval divided by the absolute mean (infinite when the mean is 0).
        """
        array = np.asarray(samples, dtype=float)
        if array.ndim != 1 or array.size < 2:
            raise ValueError("samples must be a 1-D array with at least two entries")
        mean = float(np.mean(array))
        standard_error = float(np.std(array, ddof=1) / np.sqrt(array.size))
        batch_se = (
            batch_means_standard_error(array, batches) if array.size >= batches else standard_error
        )
        half_width = z * standard_error
        relative = half_width / abs(mean) if mean != 0.0 else float("inf")
        return ConvergenceDiagnostics(
            mean=mean,
            standard_error=standard_error,
            batch_standard_error=batch_se,
            relative_half_width=relative,
            sample_size=int(array.size),
        )

    def is_converged(self, relative_tolerance: float = 0.05) -> bool:
        """True when the relative half-width is below ``relative_tolerance``."""
        return self.relative_half_width <= relative_tolerance
