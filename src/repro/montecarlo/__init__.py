"""Monte Carlo substrate.

Simulation of the fault creation process end to end, used to validate every
analytic result of the core model (and to evaluate the model once the paper's
assumptions -- independence, non-overlap -- are relaxed, where no closed form
exists).
"""

from repro.montecarlo.convergence import ConvergenceDiagnostics, running_mean
from repro.montecarlo.engine import MonteCarloEngine
from repro.montecarlo.results import PairSimulationResult, SimulationResult
from repro.montecarlo.streaming import StreamingPairResult, StreamingSimulationResult
from repro.montecarlo.sweep import SweepPointResult, simulate_scaled_sweep

__all__ = [
    "ConvergenceDiagnostics",
    "MonteCarloEngine",
    "PairSimulationResult",
    "SimulationResult",
    "StreamingPairResult",
    "StreamingSimulationResult",
    "SweepPointResult",
    "simulate_scaled_sweep",
    "running_mean",
]
