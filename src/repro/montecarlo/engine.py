"""Monte Carlo engine for the fault creation process.

The engine repeatedly "develops" versions from a development process (by
default the paper's independent process), records the PFD and fault count of
single versions and of 1-out-of-2 (or 1-out-of-r) systems, and packages the
output for comparison with the analytic results of :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.fault_model import FaultModel
from repro.montecarlo.results import PairSimulationResult, SimulationResult
from repro.stats.empirical import EmpiricalDistribution
from repro.stats.rng import ensure_rng
from repro.versions.generation import DevelopmentProcess, IndependentDevelopmentProcess

__all__ = ["MonteCarloEngine"]


@dataclass(frozen=True)
class MonteCarloEngine:
    """Simulate the fault creation process for a given model.

    Parameters
    ----------
    model:
        The fault-creation model.
    process:
        Development process to sample from; defaults to the paper's
        independent process over ``model``.
    """

    model: FaultModel
    process: DevelopmentProcess = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.process is None:
            object.__setattr__(self, "process", IndependentDevelopmentProcess(self.model))
        elif self.process.model.n != self.model.n:
            raise ValueError("the development process must draw from the engine's fault model")

    # ------------------------------------------------------------------ #
    # Single-system simulations
    # ------------------------------------------------------------------ #
    def simulate_single_versions(
        self, replications: int, rng: np.random.Generator | int | None = None
    ) -> SimulationResult:
        """Develop ``replications`` single versions and record PFD and fault count."""
        generator = ensure_rng(rng)
        matrix = self._sample_matrix(generator, replications)
        pfds = matrix @ self.model.q
        counts = np.sum(matrix, axis=1)
        return SimulationResult(
            pfds=EmpiricalDistribution(pfds),
            fault_counts=EmpiricalDistribution(counts.astype(float)),
            replications=replications,
        )

    def simulate_systems(
        self,
        replications: int,
        versions: int = 2,
        rng: np.random.Generator | int | None = None,
    ) -> SimulationResult:
        """Develop ``replications`` independent 1-out-of-``versions`` systems."""
        if versions < 1:
            raise ValueError(f"versions must be a positive integer, got {versions}")
        generator = ensure_rng(rng)
        common = np.ones((replications, self.model.n), dtype=bool)
        for _ in range(versions):
            common &= self._sample_matrix(generator, replications)
        pfds = common @ self.model.q
        counts = np.sum(common, axis=1)
        return SimulationResult(
            pfds=EmpiricalDistribution(pfds),
            fault_counts=EmpiricalDistribution(counts.astype(float)),
            replications=replications,
        )

    def simulate_paired(
        self, replications: int, rng: np.random.Generator | int | None = None
    ) -> PairSimulationResult:
        """Simulate single versions and 1-out-of-2 systems from the *same* developments.

        Each replication develops two versions; the first plays the role of
        "the single version" and the pair plays the role of the system.  Using
        the same developments for both sides gives paired (lower-variance)
        comparisons of the gain measures.
        """
        generator = ensure_rng(rng)
        first = self._sample_matrix(generator, replications)
        second = self._sample_matrix(generator, replications)
        common = first & second
        single = SimulationResult(
            pfds=EmpiricalDistribution(first @ self.model.q),
            fault_counts=EmpiricalDistribution(np.sum(first, axis=1).astype(float)),
            replications=replications,
        )
        system = SimulationResult(
            pfds=EmpiricalDistribution(common @ self.model.q),
            fault_counts=EmpiricalDistribution(np.sum(common, axis=1).astype(float)),
            replications=replications,
        )
        return PairSimulationResult(single=single, system=system)

    # ------------------------------------------------------------------ #
    # Comparison with analytic predictions
    # ------------------------------------------------------------------ #
    def compare_with_analytic(
        self, replications: int, rng: np.random.Generator | int | None = None
    ) -> dict:
        """Simulate and tabulate simulated-versus-analytic headline quantities.

        Returns a dictionary with, for each quantity (mean and standard
        deviation of the single-version and system PFD, probability of any
        fault / any common fault), the analytic value, the simulated value and
        the simulation standard error where applicable.
        """
        from repro.core.moments import pfd_moments
        from repro.core.no_common_faults import prob_any_common_fault, prob_any_fault

        result = self.simulate_paired(replications, rng)
        single_moments = pfd_moments(self.model, 1)
        system_moments = pfd_moments(self.model, 2)
        return {
            "replications": replications,
            "mean_single": {
                "analytic": single_moments.mean,
                "simulated": result.single.mean_pfd(),
                "standard_error": result.single.pfds.mean_standard_error(),
            },
            "mean_system": {
                "analytic": system_moments.mean,
                "simulated": result.system.mean_pfd(),
                "standard_error": result.system.pfds.mean_standard_error(),
            },
            "std_single": {
                "analytic": single_moments.std,
                "simulated": result.single.std_pfd(),
            },
            "std_system": {
                "analytic": system_moments.std,
                "simulated": result.system.std_pfd(),
            },
            "prob_any_fault": {
                "analytic": prob_any_fault(self.model),
                "simulated": result.single.prob_any_fault(),
            },
            "prob_any_common_fault": {
                "analytic": prob_any_common_fault(self.model),
                "simulated": result.system.prob_any_fault(),
            },
        }

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _sample_matrix(self, rng: np.random.Generator, replications: int) -> np.ndarray:
        if replications < 1:
            raise ValueError(f"replications must be positive, got {replications}")
        return self.process.sample_fault_matrix(rng, replications)
