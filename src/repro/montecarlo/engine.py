"""Monte Carlo engine for the fault creation process.

The engine repeatedly "develops" versions from a development process (by
default the paper's independent process), records the PFD and fault count of
single versions and of 1-out-of-2 (or 1-out-of-r) systems, and packages the
output for comparison with the analytic results of :mod:`repro.core`.

Three execution strategies share one sampling core:

* **in-memory** (default): one fault matrix per sampling call.  Note that
  multi-version simulations (``simulate_paired`` / ``simulate_systems``) now
  draw each version's matrices from a dedicated stream spawned from the
  caller's generator -- a seeded run therefore differs from releases before
  the chunked engine, which drew all versions back to back from one stream
  (``simulate_single_versions`` is unchanged);
* **chunked** (``chunk_size=...``): fault matrices are drawn in chunks so the
  peak memory is ``O(chunk_size * n)`` instead of ``O(replications * n)``.
  Each system's fault matrices come from a dedicated generator spawned from
  the caller's generator, and every chunk continues the same stream, so the
  sequential chunked path is bitwise-identical to the in-memory path for the
  same seed -- chunking is purely a memory knob;
* **parallel** (``jobs=...``): replications are sharded over worker processes
  with :func:`repro.stats.rng.spawn_rngs`.  Shard streams are spawned from
  the caller's generator, so results are reproducible for a fixed
  ``(seed, jobs)`` pair but form a *distinct* random stream from the
  sequential path (statistically equivalent, not bitwise-identical).

The ``simulate_*_streaming`` variants summarise chunks into the
constant-memory accumulators of :mod:`repro.stats.streaming` instead of
retaining every sample, which is the recommended mode for ``10**7`` and more
replications (and what the parallel path uses to keep inter-process traffic
small).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import telemetry
from repro.core.fault_model import FaultModel
from repro.montecarlo.results import PairSimulationResult, SimulationResult
from repro.montecarlo.streaming import StreamingPairResult, StreamingSimulationResult
from repro.stats.empirical import EmpiricalDistribution
from repro.stats.rng import ensure_rng, spawn_rngs
from repro.stats.streaming import StreamingHistogram, StreamingMoments
from repro.versions.generation import (
    DevelopmentProcess,
    IndependentDevelopmentProcess,
    matrix_pfds,
)

__all__ = ["MonteCarloEngine"]

#: Default number of histogram bins for the streaming PFD summaries.
DEFAULT_STREAM_BINS = 4096


@dataclass(frozen=True)
class MonteCarloEngine:
    """Simulate the fault creation process for a given model.

    Parameters
    ----------
    model:
        The fault-creation model.
    process:
        Development process to sample from; defaults to the paper's
        independent process over ``model``.
    chunk_size:
        When set, fault matrices are drawn at most ``chunk_size`` rows at a
        time, bounding peak memory at ``O(chunk_size * n)`` per matrix.  The
        sequential chunked path produces bitwise-identical results to the
        default in-memory path for the same seed.
    jobs:
        When greater than 1, replications are sharded across this many worker
        processes (see the module docstring for the reproducibility
        contract).  Worker shards always run chunked.
    """

    model: FaultModel
    process: Optional[DevelopmentProcess] = None
    chunk_size: Optional[int] = None
    jobs: int = 1

    def __post_init__(self) -> None:
        if self.process is None:
            object.__setattr__(self, "process", IndependentDevelopmentProcess(self.model))
        elif self.process.model.n != self.model.n:
            raise ValueError("the development process must draw from the engine's fault model")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {self.chunk_size}")
        if self.jobs < 1:
            raise ValueError(f"jobs must be a positive integer, got {self.jobs}")

    # ------------------------------------------------------------------ #
    # Single-system simulations
    # ------------------------------------------------------------------ #
    def simulate_single_versions(
        self, replications: int, rng: np.random.Generator | int | None = None
    ) -> SimulationResult:
        """Develop ``replications`` single versions and record PFD and fault count."""
        self._validate_replications(replications)
        generator = ensure_rng(rng)
        pfds, counts = self._run(_single_samples, _merge_samples, replications, generator, 1)
        return SimulationResult(
            pfds=EmpiricalDistribution(pfds),
            fault_counts=EmpiricalDistribution(counts),
            replications=replications,
        )

    def simulate_systems(
        self,
        replications: int,
        versions: int = 2,
        rng: np.random.Generator | int | None = None,
    ) -> SimulationResult:
        """Develop ``replications`` independent 1-out-of-``versions`` systems."""
        if versions < 1:
            raise ValueError(f"versions must be a positive integer, got {versions}")
        self._validate_replications(replications)
        generator = ensure_rng(rng)
        pfds, counts = self._run(_system_samples, _merge_samples, replications, generator, versions)
        return SimulationResult(
            pfds=EmpiricalDistribution(pfds),
            fault_counts=EmpiricalDistribution(counts),
            replications=replications,
        )

    def simulate_paired(
        self, replications: int, rng: np.random.Generator | int | None = None
    ) -> PairSimulationResult:
        """Simulate single versions and 1-out-of-2 systems from the *same* developments.

        Each replication develops two versions; the first plays the role of
        "the single version" and the pair plays the role of the system.  Using
        the same developments for both sides gives paired (lower-variance)
        comparisons of the gain measures.
        """
        self._validate_replications(replications)
        generator = ensure_rng(rng)
        first_pfds, first_counts, common_pfds, common_counts = self._run(
            _paired_samples, _merge_samples, replications, generator, 2
        )
        single = SimulationResult(
            pfds=EmpiricalDistribution(first_pfds),
            fault_counts=EmpiricalDistribution(first_counts),
            replications=replications,
        )
        system = SimulationResult(
            pfds=EmpiricalDistribution(common_pfds),
            fault_counts=EmpiricalDistribution(common_counts),
            replications=replications,
        )
        return PairSimulationResult(single=single, system=system)

    # ------------------------------------------------------------------ #
    # Streaming (constant-memory) simulations
    # ------------------------------------------------------------------ #
    def simulate_single_streaming(
        self,
        replications: int,
        rng: np.random.Generator | int | None = None,
        bins: int = DEFAULT_STREAM_BINS,
    ) -> StreamingSimulationResult:
        """Like :meth:`simulate_single_versions` but summarising into accumulators.

        Memory is ``O(chunk_size * n + bins)`` regardless of ``replications``.
        Moments and zero-probabilities are exact; percentile queries resolve
        to one histogram bin.
        """
        self._validate_replications(replications)
        generator = ensure_rng(rng)
        tally = self._run(
            _single_streaming, _merge_streaming, replications, generator, 1, bins
        )
        return _streaming_result(tally, replications)

    def simulate_systems_streaming(
        self,
        replications: int,
        versions: int = 2,
        rng: np.random.Generator | int | None = None,
        bins: int = DEFAULT_STREAM_BINS,
    ) -> StreamingSimulationResult:
        """Like :meth:`simulate_systems` but summarising into accumulators."""
        if versions < 1:
            raise ValueError(f"versions must be a positive integer, got {versions}")
        self._validate_replications(replications)
        generator = ensure_rng(rng)
        tally = self._run(
            _system_streaming, _merge_streaming, replications, generator, versions, bins
        )
        return _streaming_result(tally, replications)

    def simulate_paired_streaming(
        self,
        replications: int,
        rng: np.random.Generator | int | None = None,
        bins: int = DEFAULT_STREAM_BINS,
    ) -> StreamingPairResult:
        """Like :meth:`simulate_paired` but summarising into accumulators."""
        self._validate_replications(replications)
        generator = ensure_rng(rng)
        single_tally, system_tally = self._run(
            _paired_streaming, _merge_paired_streaming, replications, generator, 2, bins
        )
        return StreamingPairResult(
            single=_streaming_result(single_tally, replications),
            system=_streaming_result(system_tally, replications),
        )

    # ------------------------------------------------------------------ #
    # Shared-demand sweeps (common random numbers)
    # ------------------------------------------------------------------ #
    def simulate_scaled_sweep(
        self,
        replications: int,
        variations,
        versions: int = 2,
        rng: np.random.Generator | int | None = None,
    ):
        """Simulate many ``(p_scale, q_scale)`` sweep points against shared demands.

        One development history is sampled and every sweep point is scored
        against it (common random numbers): faster than per-point simulation
        and lower-variance for cross-point comparisons, but the points are
        *dependent* and the sampled values form a distinct stream from the
        per-point engine paths -- see :mod:`repro.montecarlo.sweep` for the
        exact semantics and reproducibility contract.  ``chunk_size`` and
        ``jobs`` do not apply here (memory is bounded internally and the
        study runner parallelises across sweeps, not within one).

        Only the paper's independent development process supports shared
        demand streams; engines wrapping a correlated process must sweep
        point by point.
        """
        from repro.montecarlo.sweep import simulate_scaled_sweep
        from repro.versions.generation import IndependentDevelopmentProcess

        if type(self.process) is not IndependentDevelopmentProcess:
            raise ValueError(
                "shared-demand sweeps require the independent development process; "
                f"got {type(self.process).__name__} (simulate each point separately)"
            )
        return simulate_scaled_sweep(
            self.model, replications, variations, versions=versions, rng=ensure_rng(rng)
        )

    # ------------------------------------------------------------------ #
    # Comparison with analytic predictions
    # ------------------------------------------------------------------ #
    def compare_with_analytic(
        self, replications: int, rng: np.random.Generator | int | None = None
    ) -> dict:
        """Simulate and tabulate simulated-versus-analytic headline quantities.

        Returns a dictionary with, for each quantity (mean and standard
        deviation of the single-version and system PFD, probability of any
        fault / any common fault), the analytic value, the simulated value and
        the simulation standard error where applicable.
        """
        from repro.core.moments import pfd_moments
        from repro.core.no_common_faults import prob_any_common_fault, prob_any_fault

        result = self.simulate_paired(replications, rng)
        single_moments = pfd_moments(self.model, 1)
        system_moments = pfd_moments(self.model, 2)
        return {
            "replications": replications,
            "mean_single": {
                "analytic": single_moments.mean,
                "simulated": result.single.mean_pfd(),
                "standard_error": result.single.pfds.mean_standard_error(),
            },
            "mean_system": {
                "analytic": system_moments.mean,
                "simulated": result.system.mean_pfd(),
                "standard_error": result.system.pfds.mean_standard_error(),
            },
            "std_single": {
                "analytic": single_moments.std,
                "simulated": result.single.std_pfd(),
            },
            "std_system": {
                "analytic": system_moments.std,
                "simulated": result.system.std_pfd(),
            },
            "prob_any_fault": {
                "analytic": prob_any_fault(self.model),
                "simulated": result.single.prob_any_fault(),
            },
            "prob_any_common_fault": {
                "analytic": prob_any_common_fault(self.model),
                "simulated": result.system.prob_any_fault(),
            },
        }

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate_replications(replications: int) -> None:
        if replications < 1:
            raise ValueError(f"replications must be positive, got {replications}")

    def _run(self, shard_fn, merge_fn, replications, generator, versions, bins=None):
        """Execute ``shard_fn`` sequentially or across worker processes."""
        with telemetry.span(
            "kernel.montecarlo",
            replications=replications,
            versions=versions,
            jobs=self.jobs,
        ):
            if self.jobs == 1 or replications < 2 * self.jobs:
                return shard_fn(
                    self.process, replications, generator, self.chunk_size, versions, bins
                )
            shard_sizes = _shard_sizes(replications, self.jobs)
            shard_rngs = spawn_rngs(generator, len(shard_sizes))
            chunk = self.chunk_size if self.chunk_size is not None else _DEFAULT_PARALLEL_CHUNK
            arguments = [
                (shard_fn, self.process, size, shard_rng, chunk, versions, bins)
                for size, shard_rng in zip(shard_sizes, shard_rngs)
            ]
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=len(arguments)) as pool:
                shards = list(pool.map(_run_shard, arguments))
            return merge_fn(shards)


#: Chunk size used by parallel workers when the engine has no explicit one;
#: bounds each worker's peak memory without affecting throughput noticeably.
_DEFAULT_PARALLEL_CHUNK = 65536


def _shard_sizes(replications: int, jobs: int) -> list[int]:
    """Split ``replications`` into at most ``jobs`` near-equal positive shards."""
    jobs = min(jobs, replications)
    base, remainder = divmod(replications, jobs)
    return [base + (1 if index < remainder else 0) for index in range(jobs)]


def _run_shard(arguments):
    shard_fn, process, size, rng, chunk_size, versions, bins = arguments
    return shard_fn(process, size, rng, chunk_size, versions, bins)


def _spawn_version_rngs(generator: np.random.Generator, versions: int):
    """One independent stream per developed version of a replication.

    Giving each version its own spawned stream (instead of drawing all
    versions from one stream back to back) is what makes chunked multi-version
    simulation bitwise-identical to the in-memory path: every chunk simply
    continues each version's stream where the previous chunk stopped.
    """
    return generator.spawn(versions)


# --------------------------------------------------------------------- #
# Sample-collecting shard kernels
# --------------------------------------------------------------------- #
def _intersection_buffer(process, replications, chunk_size):
    """Reusable buffer for the common-fault matrix of multi-version chunks."""
    rows = replications if chunk_size is None else min(chunk_size, replications)
    return np.empty((rows, process.model.n), dtype=bool)


def _shared_scratch(process, replications, chunk_size):
    """One float work buffer shared by all version streams of a simulation.

    The per-version iterators are advanced in lockstep (draw, then compare
    into a per-version presence buffer), so a single uniforms buffer serves
    every version -- the float working set stays at one chunk no matter how
    many versions are developed per replication.
    """
    rows = replications if chunk_size is None else min(chunk_size, replications)
    return np.empty((rows, process.model.n))


def _intersect(matrices, buffer) -> np.ndarray:
    """All-versions fault intersection, accumulated into ``buffer`` in place."""
    common = buffer[: matrices[0].shape[0]]
    np.logical_and(matrices[0], matrices[1], out=common)
    for matrix in matrices[2:]:
        np.logical_and(common, matrix, out=common)
    return common


def _single_samples(process, replications, generator, chunk_size, versions, bins):
    q = process.model.q
    pfds = np.empty(replications, dtype=float)
    counts = np.empty(replications, dtype=float)
    offset = 0
    for matrix in process.stream_fault_matrices(generator, replications, chunk_size):
        size = matrix.shape[0]
        pfds[offset : offset + size] = matrix_pfds(matrix, q)
        counts[offset : offset + size] = np.sum(matrix, axis=1)
        offset += size
    return (pfds, counts)


def _system_samples(process, replications, generator, chunk_size, versions, bins):
    q = process.model.q
    pfds = np.empty(replications, dtype=float)
    counts = np.empty(replications, dtype=float)
    streams = _spawn_version_rngs(generator, versions)
    scratch = _shared_scratch(process, replications, chunk_size)
    iterators = [
        process.stream_fault_matrices(stream, replications, chunk_size, scratch=scratch)
        for stream in streams
    ]
    buffer = _intersection_buffer(process, replications, chunk_size)
    offset = 0
    for matrices in zip(*iterators):
        common = matrices[0] if len(matrices) == 1 else _intersect(matrices, buffer)
        size = common.shape[0]
        pfds[offset : offset + size] = matrix_pfds(common, q)
        counts[offset : offset + size] = np.sum(common, axis=1)
        offset += size
    return (pfds, counts)


def _paired_samples(process, replications, generator, chunk_size, versions, bins):
    q = process.model.q
    first_pfds = np.empty(replications, dtype=float)
    first_counts = np.empty(replications, dtype=float)
    common_pfds = np.empty(replications, dtype=float)
    common_counts = np.empty(replications, dtype=float)
    first_stream, second_stream = _spawn_version_rngs(generator, 2)
    scratch = _shared_scratch(process, replications, chunk_size)
    buffer = _intersection_buffer(process, replications, chunk_size)
    offset = 0
    for first, second in zip(
        process.stream_fault_matrices(first_stream, replications, chunk_size, scratch=scratch),
        process.stream_fault_matrices(second_stream, replications, chunk_size, scratch=scratch),
    ):
        size = first.shape[0]
        common = _intersect((first, second), buffer)
        first_pfds[offset : offset + size] = matrix_pfds(first, q)
        first_counts[offset : offset + size] = np.sum(first, axis=1)
        common_pfds[offset : offset + size] = matrix_pfds(common, q)
        common_counts[offset : offset + size] = np.sum(common, axis=1)
        offset += size
    return (first_pfds, first_counts, common_pfds, common_counts)


def _merge_samples(shards):
    return tuple(np.concatenate(parts) for parts in zip(*shards))


# --------------------------------------------------------------------- #
# Streaming shard kernels
# --------------------------------------------------------------------- #
def _new_tally(process, bins):
    top = max(process.model.total_impact, np.finfo(float).tiny)
    return (StreamingMoments(), StreamingHistogram(0.0, top, bins), StreamingMoments())


def _tally_update(tally, pfds, counts):
    pfd_moments, histogram, count_moments = tally
    pfd_moments.update(pfds)
    histogram.update(pfds)
    count_moments.update(counts)


def _single_streaming(process, replications, generator, chunk_size, versions, bins):
    q = process.model.q
    tally = _new_tally(process, bins)
    for matrix in process.stream_fault_matrices(generator, replications, chunk_size):
        _tally_update(tally, matrix_pfds(matrix, q), np.sum(matrix, axis=1))
    return tally


def _system_streaming(process, replications, generator, chunk_size, versions, bins):
    q = process.model.q
    tally = _new_tally(process, bins)
    streams = _spawn_version_rngs(generator, versions)
    scratch = _shared_scratch(process, replications, chunk_size)
    iterators = [
        process.stream_fault_matrices(stream, replications, chunk_size, scratch=scratch)
        for stream in streams
    ]
    buffer = _intersection_buffer(process, replications, chunk_size)
    for matrices in zip(*iterators):
        common = matrices[0] if len(matrices) == 1 else _intersect(matrices, buffer)
        _tally_update(tally, matrix_pfds(common, q), np.sum(common, axis=1))
    return tally


def _paired_streaming(process, replications, generator, chunk_size, versions, bins):
    q = process.model.q
    single_tally = _new_tally(process, bins)
    system_tally = _new_tally(process, bins)
    first_stream, second_stream = _spawn_version_rngs(generator, 2)
    scratch = _shared_scratch(process, replications, chunk_size)
    buffer = _intersection_buffer(process, replications, chunk_size)
    for first, second in zip(
        process.stream_fault_matrices(first_stream, replications, chunk_size, scratch=scratch),
        process.stream_fault_matrices(second_stream, replications, chunk_size, scratch=scratch),
    ):
        common = _intersect((first, second), buffer)
        _tally_update(single_tally, matrix_pfds(first, q), np.sum(first, axis=1))
        _tally_update(system_tally, matrix_pfds(common, q), np.sum(common, axis=1))
    return single_tally, system_tally


def _merge_tallies(tallies):
    merged = tallies[0]
    for tally in tallies[1:]:
        for accumulator, other in zip(merged, tally):
            accumulator.merge(other)
    return merged


def _merge_streaming(shards):
    return _merge_tallies(shards)


def _merge_paired_streaming(shards):
    singles = [shard[0] for shard in shards]
    systems = [shard[1] for shard in shards]
    return _merge_tallies(singles), _merge_tallies(systems)


def _streaming_result(tally, replications) -> StreamingSimulationResult:
    pfd_moments, histogram, count_moments = tally
    return StreamingSimulationResult(
        pfds=pfd_moments,
        pfd_histogram=histogram,
        fault_counts=count_moments,
        replications=replications,
    )
