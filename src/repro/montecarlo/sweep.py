"""Shared-demand Monte Carlo sweeps: one sampled world, many sweep points.

A ``p_scale`` sweep asks how the simulated PFD distributions move as every
fault-introduction probability is multiplied by ``k``.  Simulating each sweep
point independently redraws the entire development history per point; this
module instead samples the development process *once* and scores every sweep
point against the same draws -- the common-random-numbers (CRN) device:

* for each version, each potential fault ``i`` and each replication, the
  presence of the fault under scale ``k`` is ``U < k * p_i`` for one shared
  uniform ``U``.  Equivalently, the *threshold scale* ``R = U / p_i`` is
  drawn once and the fault is present at every sweep point with
  ``p_scale > R``.  Larger scales therefore contain smaller ones: the sweep
  points see nested, maximally correlated worlds, which is both faster (one
  sampling pass) and lower-variance for cross-point comparisons (ratios and
  differences between sweep points share their sampling noise);
* a ``q_scale`` only rescales the PFD values, so its points share every
  reduction with their ``p_scale`` siblings.

Sampling is *sparse*: instead of materialising a ``(replications, n)``
uniform matrix per version, the kernel draws only the faults present at the
**envelope scale** (the smallest power of two covering every requested
``p_scale``, at least 1) -- per fault, the presence rows follow a Bernoulli
process sampled through its geometric gaps, and each present entry draws one
threshold scale.  Expected work is ``replications * sum(min(1, envelope *
p_i))`` entries for the first version -- typically tens of times sparser
than the dense matrix -- and later versions are sampled *conditionally* on
the surviving intersection (presence elsewhere cannot reach the system
statistics), which is smaller still.  Because the envelope is a function of
the model and the requested
scales only (not of chunking or process scheduling), a sweep's results are
reproducible from ``(seed, model, versions, replications, scale set)``
alone; the engine's ``chunk_size`` and ``jobs`` knobs do not enter.

Results differ from per-point independent-stream simulation: every point is
an equally valid Monte Carlo estimate (each fault's marginal presence
probability is exactly ``k * p_i``), but the points are dependent by
construction.  Use independent per-point streams (the default engine paths)
when cross-point independence matters; use the sweep kernel when comparing
points or when throughput matters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.core.fault_model import FaultModel
from repro.stats.rng import ensure_rng

__all__ = ["SweepPointResult", "simulate_scaled_sweep"]

#: Cap on ``rows * (grid + 1)`` accumulator cells per slab; bounds the
#: transient memory of the per-row scoring at ~128 MB regardless of the
#: replication count or the number of sweep points.
_SLAB_CELLS = 16_000_000

#: Refuse sweeps whose expected sparse-entry count would exceed this (the
#: entry arrays are materialised); callers fall back to per-point simulation.
MAX_SWEEP_ENTRIES = 80_000_000


@dataclass(frozen=True)
class SweepPointResult:
    """Streamed summary of one sweep point of a shared-demand simulation.

    ``single`` statistics describe the first version, ``system`` the
    1-out-of-``versions`` intersection, from the same developments -- the
    same pairing as :meth:`MonteCarloEngine.simulate_paired_streaming`.
    """

    p_scale: float
    q_scale: float
    versions: int
    replications: int
    mean_single: float
    std_single: float
    mean_system: float
    std_system: float
    prob_any_fault_single: float
    prob_any_fault_system: float
    prob_pfd_zero_single: float
    prob_pfd_zero_system: float

    def mean_ratio(self) -> float:
        """Simulated ``mu_r / mu_1``."""
        return self.mean_system / self.mean_single if self.mean_single else 1.0

    def std_ratio(self) -> float:
        """Simulated ``sigma_r / sigma_1``."""
        return self.std_system / self.std_single if self.std_single else 1.0

    def risk_ratio(self) -> float:
        """Simulated ``P(N_r > 0) / P(N_1 > 0)``."""
        if self.prob_any_fault_single == 0.0:
            return 1.0
        return self.prob_any_fault_system / self.prob_any_fault_single

    def summary(self) -> dict:
        """The paired-summary dictionary (same keys as the streaming engine)."""
        return {
            "replications": self.replications,
            "mean_single": self.mean_single,
            "mean_system": self.mean_system,
            "std_single": self.std_single,
            "std_system": self.std_system,
            "mean_ratio": self.mean_ratio(),
            "std_ratio": self.std_ratio(),
            "risk_ratio": self.risk_ratio(),
        }


def _envelope_scale(p_scales: np.ndarray) -> float:
    """Smallest power-of-two envelope covering every scale, at least 1.

    The sparse sampler draws the world at this scale and thins down; tying
    the envelope to a coarse bracket (rather than the exact sweep maximum)
    means extending a sweep within the same bracket replays the identical
    developments.
    """
    top = float(p_scales.max())
    if top <= 1.0:
        return 1.0
    return float(2.0 ** np.ceil(np.log2(top)))


def _continue_bernoulli_rows(
    rng: np.random.Generator, probability: float, position: int, count: int
) -> np.ndarray:
    """Extend a Bernoulli-process realisation from ``position`` to the end.

    Rare-path helper for faults whose vectorised gap budget fell short (the
    budget covers six standard deviations, so this runs with probability
    ~1e-9 per fault); draws scalar-probability geometric gaps until past
    ``count``.
    """
    collected: list[np.ndarray] = []
    while position < count:
        expected_left = (count - position) * probability
        size = int(expected_left + 6.0 * np.sqrt(expected_left + 1.0)) + 16
        gaps = rng.geometric(probability, size=size)
        positions = position + np.cumsum(gaps)
        take = int(np.searchsorted(positions, count, side="left"))
        if take:
            collected.append(positions[:take])
        if take < size:
            break
        position = int(positions[-1])
    if not collected:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(collected).astype(np.int64, copy=False)


def _sample_version_entries(
    rng: np.random.Generator, model: FaultModel, replications: int, envelope: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One version's sparse development history at the envelope scale.

    Returns ``(rows, faults, thresholds)``: replication index, fault index
    and threshold scale of every fault present at the envelope, ordered by
    fault then row (so ``fault * replications + row`` is sorted).  A fault
    is present at sweep scale ``k`` exactly when its threshold is below
    ``k``; thresholds are uniform on ``(0, cutoff / p_i)`` conditioned on
    presence, reproducing ``U < k * p_i`` marginals for every ``k`` up to
    the envelope.

    Every fault's presence rows follow a Bernoulli(``cutoff``) process
    sampled through its geometric gaps; the gaps of *all* faults are drawn
    in one array-probability call (with a six-sigma per-fault budget and a
    scalar continuation for the ~1e-9 shortfall tail), so the sampling cost
    is a handful of numpy calls regardless of the fault count.
    """
    empty = np.zeros(0, dtype=np.int64)
    active = np.flatnonzero(model.p > 0.0)
    if active.size == 0 or replications == 0:
        return empty, empty, np.zeros(0)
    cutoffs = np.minimum(1.0, envelope * model.p[active])
    partial = cutoffs < 1.0
    rows_parts: list[np.ndarray] = []
    fault_parts: list[np.ndarray] = []
    needs_sort = False
    if np.any(partial):
        partial_faults = active[partial]
        partial_cutoffs = cutoffs[partial]
        expected = replications * partial_cutoffs
        sizes = (expected + 6.0 * np.sqrt(expected + 1.0) + 16.0).astype(np.int64)
        ends = np.cumsum(sizes)
        starts = ends - sizes
        # Geometric gaps by explicit inversion -- gap = 1 + floor(ln U /
        # ln(1-p)) -- from one bulk uniform draw; several times faster than
        # numpy's array-probability geometric sampler and pinned to this
        # formula rather than to the library's internal algorithm choice.
        uniforms = rng.random(int(ends[-1]))
        # Clamp away exact zeros (probability ~1e-300 per draw) so the log
        # stays finite; the clamped gap lands far outside any realistic
        # replication range anyway.
        np.fmax(uniforms, 1e-300, out=uniforms)
        np.log(uniforms, out=uniforms)
        inverse_log = np.repeat(1.0 / np.log1p(-partial_cutoffs), sizes)
        gaps = (uniforms * inverse_log).astype(np.int64) + 1
        cumulative = np.cumsum(gaps)
        offsets = np.concatenate([[0], cumulative[ends[:-1] - 1]])
        positions = cumulative - np.repeat(offsets, sizes) - 1
        keep = positions < replications
        counts = np.add.reduceat(keep.astype(np.int64), starts)
        rows_parts.append(positions[keep].astype(np.int64, copy=False))
        fault_parts.append(np.repeat(partial_faults, counts))
        # A segment that never crossed the end may have missed entries.
        short = np.flatnonzero(positions[ends - 1] < replications)
        for segment in short:
            extra = _continue_bernoulli_rows(
                rng,
                float(partial_cutoffs[segment]),
                int(positions[ends[segment] - 1]),
                replications,
            )
            if extra.size:
                rows_parts.append(extra)
                fault_parts.append(np.full(extra.size, partial_faults[segment], dtype=np.int64))
                needs_sort = True
    full_faults = active[~partial]
    for fault in full_faults:
        rows_parts.append(np.arange(replications, dtype=np.int64))
        fault_parts.append(np.full(replications, fault, dtype=np.int64))
        needs_sort = needs_sort or bool(np.any(partial))
    if not rows_parts:
        return empty, empty, np.zeros(0)
    rows = np.concatenate(rows_parts)
    faults = np.concatenate(fault_parts)
    if needs_sort:
        order = np.argsort(faults * np.int64(replications) + rows, kind="stable")
        rows = rows[order]
        faults = faults[order]
    # One threshold draw for every entry, scaled per fault: uniform on
    # (0, cutoff / p) conditioned on presence at the cutoff.
    ratio = np.zeros(model.n)
    ratio[active] = cutoffs / model.p[active]
    thresholds = rng.random(rows.size) * ratio[faults]
    return rows, faults, thresholds


class _ColumnMoments:
    """Pairwise-stable streaming moments, vectorised over sweep columns."""

    def __init__(self, columns: int) -> None:
        self.count = 0
        self.mean = np.zeros(columns)
        self.m2 = np.zeros(columns)
        self.zeros = np.zeros(columns, dtype=np.int64)

    def update(self, matrix: np.ndarray) -> None:
        """Fold a ``(rows, columns)`` slab of per-replication values."""
        rows = matrix.shape[0]
        if rows == 0:
            return
        batch_mean = matrix.mean(axis=0)
        batch_m2 = ((matrix - batch_mean) ** 2).sum(axis=0)
        self.zeros += (matrix == 0.0).sum(axis=0)
        total = self.count + rows
        delta = batch_mean - self.mean
        self.m2 += batch_m2 + delta * delta * (self.count * rows / total)
        self.mean += delta * (rows / total)
        self.count = total

    def std(self) -> np.ndarray:
        """Columnwise sample standard deviation (ddof=1)."""
        if self.count < 2:
            return np.zeros_like(self.mean)
        return np.sqrt(self.m2 / (self.count - 1))


def _score_entries(
    rows: np.ndarray,
    buckets: np.ndarray,
    weights: np.ndarray,
    replications: int,
    grid_size: int,
    value_moments: _ColumnMoments,
    count_moments: _ColumnMoments,
) -> None:
    """Accumulate per-replication, per-scale values and counts into moments.

    Each entry contributes ``weights`` (and a count of 1) to every sweep
    scale at or above its bucket; cumulative sums over the bucket axis turn
    one weighted and one unweighted bincount per slab into the full
    ``(rows, scales)`` value and count matrices.  Rows are processed in
    slabs so the dense matrices stay bounded, and both statistics share one
    pass (and, in the slab regime, one row sort).
    """
    slab_rows = max(1, _SLAB_CELLS // (grid_size + 1))
    if replications > slab_rows:
        order = np.argsort(rows, kind="stable")
        rows = rows[order]
        buckets = buckets[order]
        weights = weights[order]
    for start in range(0, replications, slab_rows):
        stop = min(start + slab_rows, replications)
        if replications > slab_rows:
            lo = int(np.searchsorted(rows, start, side="left"))
            hi = int(np.searchsorted(rows, stop, side="left"))
            slab_rows_ids, slab_buckets = rows[lo:hi], buckets[lo:hi]
            slab_weights = weights[lo:hi]
        else:
            slab_rows_ids, slab_buckets, slab_weights = rows, buckets, weights
        flat = (slab_rows_ids - start) * (grid_size + 1) + slab_buckets
        cells = (stop - start) * (grid_size + 1)
        weighted = np.bincount(flat, weights=slab_weights, minlength=cells).reshape(
            stop - start, grid_size + 1
        )
        value_moments.update(np.cumsum(weighted[:, :grid_size], axis=1))
        counted = np.bincount(flat, minlength=cells).reshape(stop - start, grid_size + 1)
        count_moments.update(np.cumsum(counted[:, :grid_size], axis=1))


def expected_entry_count(model: FaultModel, replications: int, versions: int, p_scales) -> float:
    """Expected sparse-entry count of a sweep (for memory guards).

    Dominated by the first (unconditionally sampled) version; the
    conditional later versions only shrink the surviving set, so the bound
    does not scale with ``versions``.
    """
    envelope = _envelope_scale(np.atleast_1d(np.asarray(p_scales, dtype=float)))
    return float(replications * np.sum(np.minimum(1.0, envelope * model.p)))


def simulate_scaled_sweep(
    model: FaultModel,
    replications: int,
    variations,
    versions: int = 2,
    rng: np.random.Generator | int | None = None,
) -> list[SweepPointResult]:
    """Simulate every ``(p_scale, q_scale)`` variation against shared demands.

    Parameters
    ----------
    model:
        The base fault model (scales apply on top of it).
    replications:
        Number of simulated developments, shared by every point.
    variations:
        Sequence of ``(p_scale, q_scale)`` pairs or mappings with those keys
        (missing keys default to 1.0).  Every ``p_scale * max(p)`` must stay
        within ``[0, 1]``.
    versions:
        Versions per replication; the system is their 1-out-of-r
        intersection and ``single`` describes the first version.
    rng:
        Generator or integer seed (``None`` = the library default).  Results
        are a deterministic function of the seed, the model, ``versions``,
        ``replications`` and the power-of-two envelope of the ``p_scale``
        set -- chunking and process scheduling never enter.

    Returns one :class:`SweepPointResult` per variation, in order.
    """
    if replications < 1:
        raise ValueError(f"replications must be positive, got {replications}")
    if versions < 1:
        raise ValueError(f"versions must be a positive integer, got {versions}")
    pairs = []
    for variation in variations:
        if isinstance(variation, dict):
            p_scale = float(variation.get("p_scale", 1.0))
            q_scale = float(variation.get("q_scale", 1.0))
        else:
            p_scale, q_scale = (float(part) for part in variation)
        pairs.append((p_scale, q_scale))
    if not pairs:
        return []
    p_scales = np.array([pair[0] for pair in pairs])
    q_scales = np.array([pair[1] for pair in pairs])
    if np.any(~np.isfinite(p_scales)) or np.any(p_scales < 0.0):
        raise ValueError("p_scale values must be finite and non-negative")
    if np.any(~np.isfinite(q_scales)) or np.any(q_scales < 0.0):
        raise ValueError("q_scale values must be finite and non-negative")
    scaled_max = p_scales * model.p_max
    if np.any(scaled_max > 1.0):
        worst = float(p_scales[np.argmax(scaled_max)])
        raise ValueError(
            f"scaling by p_scale={worst} pushes some p_i above 1 "
            f"(max would be {float(scaled_max.max()):.4f})"
        )
    generator = ensure_rng(rng)
    # Coarse kernel span, emitted via record() at the end: the sampled
    # compute dominates from here on and re-indenting the whole kernel
    # under a ``with`` buys nothing.
    kernel_started = time.perf_counter()
    envelope = _envelope_scale(p_scales)
    grid = np.unique(p_scales)
    grid_size = int(grid.size)
    column = {float(scale): index for index, scale in enumerate(grid)}

    # One sparse development history per version, from per-version spawned
    # streams (the engine's convention for multi-version simulation).
    streams = generator.spawn(versions)
    q = model.q
    single_moments = _ColumnMoments(grid_size)
    single_counts = _ColumnMoments(grid_size)
    system_moments = _ColumnMoments(grid_size)
    system_counts = _ColumnMoments(grid_size)

    # Version 0 is sampled unconditionally (it carries the single-version
    # statistics); every further version is sampled *lazily*, only at the
    # (row, fault) entries still surviving the intersection -- presence
    # elsewhere can never reach the system statistics, and conditional
    # Bernoulli(cutoff) presence with a conditional-uniform threshold is
    # distributionally identical to sampling the version in full.
    first_rows, first_faults, first_thresholds = _sample_version_entries(
        streams[0], model, replications, envelope
    )
    # Present at scale k exactly when threshold < k (strictly, matching
    # ``U < k * p``); bucket = number of grid scales <= threshold.
    first_buckets = np.searchsorted(grid, first_thresholds, side="right").astype(np.int64)
    cutoffs = np.minimum(1.0, envelope * model.p)
    common_rows, common_faults, common_buckets = first_rows, first_faults, first_buckets
    for stream in streams[1:]:
        draws = stream.random(common_rows.size)
        present = draws < cutoffs[common_faults]
        common_rows = common_rows[present]
        common_faults = common_faults[present]
        with np.errstate(divide="ignore", invalid="ignore"):
            thresholds = draws[present] / model.p[common_faults]
        buckets = np.searchsorted(grid, thresholds, side="right").astype(np.int64)
        common_buckets = np.maximum(common_buckets[present], buckets)

    _score_entries(
        first_rows,
        first_buckets,
        q[first_faults],
        replications,
        grid_size,
        single_moments,
        single_counts,
    )
    _score_entries(
        common_rows,
        common_buckets,
        q[common_faults],
        replications,
        grid_size,
        system_moments,
        system_counts,
    )

    results = []
    for p_scale, q_scale in pairs:
        t = column[p_scale]
        zero_single = single_moments.zeros[t] / replications
        zero_system = system_moments.zeros[t] / replications
        results.append(
            SweepPointResult(
                p_scale=p_scale,
                q_scale=q_scale,
                versions=versions,
                replications=replications,
                mean_single=float(single_moments.mean[t] * q_scale),
                std_single=float(single_moments.std()[t] * q_scale),
                mean_system=float(system_moments.mean[t] * q_scale),
                std_system=float(system_moments.std()[t] * q_scale),
                prob_any_fault_single=float(1.0 - single_counts.zeros[t] / replications),
                prob_any_fault_system=float(1.0 - system_counts.zeros[t] / replications),
                prob_pfd_zero_single=float(1.0 if q_scale == 0.0 else zero_single),
                prob_pfd_zero_system=float(1.0 if q_scale == 0.0 else zero_system),
            )
        )
    telemetry.record(
        "kernel.mc_sweep",
        time.perf_counter() - kernel_started,
        points=len(pairs),
        replications=replications,
        versions=versions,
    )
    return results
