"""Result containers for Monte Carlo simulation of the fault creation process."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.empirical import EmpiricalDistribution

__all__ = ["SimulationResult", "PairSimulationResult"]


@dataclass(frozen=True)
class SimulationResult:
    """Simulated PFD values for one kind of system (single version or 1-out-of-r).

    Attributes
    ----------
    pfds:
        Empirical distribution of the simulated PFD values.
    fault_counts:
        Empirical distribution of the simulated (common-)fault counts.
    replications:
        Number of simulated developments.
    """

    pfds: EmpiricalDistribution
    fault_counts: EmpiricalDistribution
    replications: int

    def mean_pfd(self) -> float:
        """Sample mean of the simulated PFD."""
        return self.pfds.mean()

    def std_pfd(self) -> float:
        """Sample standard deviation of the simulated PFD."""
        return self.pfds.std()

    def prob_any_fault(self) -> float:
        """Fraction of replications containing at least one fault."""
        return 1.0 - self.fault_counts.prob_zero()

    def prob_pfd_exceeds(self, threshold: float) -> float:
        """Fraction of replications whose PFD exceeds ``threshold``."""
        return self.pfds.exceedance_probability(threshold)

    def pfd_percentile(self, level: float) -> float:
        """Empirical percentile of the simulated PFD."""
        return self.pfds.quantile(level)

    def mean_pfd_confidence_interval(self, confidence: float = 0.95) -> tuple[float, float]:
        """Normal-theory confidence interval for the mean PFD."""
        return self.pfds.mean_confidence_interval(confidence)


@dataclass(frozen=True)
class PairSimulationResult:
    """Joint simulation results for single versions and the 1-out-of-2 system.

    Because both sets of statistics come from the same simulated developments,
    paired comparisons (e.g. the risk ratio of eq. (10)) have lower variance
    than comparing two independent simulations.
    """

    single: SimulationResult
    system: SimulationResult

    def mean_ratio(self) -> float:
        """Simulated ``mu_2 / mu_1``."""
        denominator = self.single.mean_pfd()
        if denominator == 0.0:
            return 1.0
        return self.system.mean_pfd() / denominator

    def std_ratio(self) -> float:
        """Simulated ``sigma_2 / sigma_1``."""
        denominator = self.single.std_pfd()
        if denominator == 0.0:
            return 1.0
        return self.system.std_pfd() / denominator

    def risk_ratio(self) -> float:
        """Simulated ``P(N_2 > 0) / P(N_1 > 0)`` (eq. (10))."""
        denominator = self.single.prob_any_fault()
        if denominator == 0.0:
            return 1.0
        return self.system.prob_any_fault() / denominator

    def bound_ratio(self, k: float) -> float:
        """Simulated ``(mu_2 + k sigma_2) / (mu_1 + k sigma_1)``."""
        denominator = self.single.mean_pfd() + k * self.single.std_pfd()
        if denominator == 0.0:
            return 1.0
        return (self.system.mean_pfd() + k * self.system.std_pfd()) / denominator

    def summary(self) -> dict:
        """Dictionary of the headline simulated quantities."""
        return {
            "replications": self.single.replications,
            "mean_single": self.single.mean_pfd(),
            "mean_system": self.system.mean_pfd(),
            "std_single": self.single.std_pfd(),
            "std_system": self.system.std_pfd(),
            "mean_ratio": self.mean_ratio(),
            "std_ratio": self.std_ratio(),
            "risk_ratio": self.risk_ratio(),
        }
