"""Synthetic Knight-Leveson-style N-version experiment (Section 7 check).

The paper checks its conclusions qualitatively against the Knight-Leveson
experiment: 27 independently developed versions of the same program, whose
observed failure behaviour showed that diversity reduced both the sample mean
of the PFD and -- greatly -- its sample standard deviation.  The original data
set is not available, so this module provides the closest synthetic
equivalent: it instantiates a fault-creation model, develops a configurable
number of versions by simulating the fault creation process, and computes the
same sample statistics over single versions and over all 1-out-of-2 pairs.

This exercises exactly the mechanism the model posits and supports the same
qualitative comparison the paper makes (mean reduced, standard deviation
reduced much more); see DESIGN.md section 2 for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.core.fault_model import FaultModel
from repro.core.moments import pfd_moments
from repro.stats.empirical import EmpiricalDistribution
from repro.stats.rng import ensure_rng
from repro.versions.generation import DevelopmentProcess, IndependentDevelopmentProcess

__all__ = ["SyntheticNVersionExperiment", "NVersionExperimentResult"]

#: Number of versions developed in the original Knight-Leveson experiment.
KNIGHT_LEVESON_VERSION_COUNT = 27


@dataclass(frozen=True)
class NVersionExperimentResult:
    """Sample statistics from one run of the synthetic N-version experiment."""

    version_count: int
    pair_count: int
    single_pfds: EmpiricalDistribution
    pair_pfds: EmpiricalDistribution

    def mean_reduction_factor(self) -> float:
        """Factor by which pairing reduces the sample mean PFD (>= 1 is a gain)."""
        pair_mean = self.pair_pfds.mean()
        if pair_mean == 0.0:
            return float("inf")
        return self.single_pfds.mean() / pair_mean

    def std_reduction_factor(self) -> float:
        """Factor by which pairing reduces the sample standard deviation of the PFD."""
        pair_std = self.pair_pfds.std()
        if pair_std == 0.0:
            return float("inf")
        return self.single_pfds.std() / pair_std

    def diversity_reduced_mean(self) -> bool:
        """The first half of the paper's qualitative claim."""
        return self.pair_pfds.mean() <= self.single_pfds.mean()

    def diversity_reduced_std(self) -> bool:
        """The second half of the paper's qualitative claim."""
        return self.pair_pfds.std() <= self.single_pfds.std()

    def summary(self) -> dict:
        """Headline sample statistics for reporting."""
        return {
            "version_count": self.version_count,
            "pair_count": self.pair_count,
            "single_mean": self.single_pfds.mean(),
            "single_std": self.single_pfds.std(),
            "pair_mean": self.pair_pfds.mean(),
            "pair_std": self.pair_pfds.std(),
            "mean_reduction_factor": self.mean_reduction_factor(),
            "std_reduction_factor": self.std_reduction_factor(),
        }


@dataclass(frozen=True)
class SyntheticNVersionExperiment:
    """A synthetic N-version programming experiment driven by a fault-creation model.

    Parameters
    ----------
    model:
        The fault-creation model describing the development process and the
        problem's potential faults.
    version_count:
        Number of versions to develop (default: the Knight-Leveson 27).
    process:
        Development process; defaults to the paper's independent process.
    """

    model: FaultModel
    version_count: int = KNIGHT_LEVESON_VERSION_COUNT
    process: DevelopmentProcess = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.version_count < 2:
            raise ValueError(f"version_count must be at least 2, got {self.version_count}")
        if self.process is None:
            object.__setattr__(self, "process", IndependentDevelopmentProcess(self.model))

    def run(self, rng: np.random.Generator | int | None = None) -> NVersionExperimentResult:
        """Develop the versions and compute single-version and all-pairs statistics."""
        generator = ensure_rng(rng)
        fault_matrix = self.process.sample_fault_matrix(generator, self.version_count)
        single_pfds = fault_matrix @ self.model.q
        pair_indices = list(combinations(range(self.version_count), 2))
        pair_pfds = np.array(
            [
                float(np.sum(self.model.q[fault_matrix[first] & fault_matrix[second]]))
                for first, second in pair_indices
            ]
        )
        return NVersionExperimentResult(
            version_count=self.version_count,
            pair_count=len(pair_indices),
            single_pfds=EmpiricalDistribution(single_pfds),
            pair_pfds=EmpiricalDistribution(pair_pfds),
        )

    def run_replicated(
        self, replications: int, rng: np.random.Generator | int | None = None
    ) -> list[NVersionExperimentResult]:
        """Run the whole experiment several times with independent random streams.

        Useful for studying how often a 27-version experiment would, by chance,
        *fail* to show the qualitative effects the paper cites.
        """
        if replications < 1:
            raise ValueError(f"replications must be positive, got {replications}")
        generator = ensure_rng(rng)
        return [self.run(stream) for stream in generator.spawn(replications)]

    def expected_statistics(self) -> dict:
        """The model's analytic predictions for the experiment's sample statistics."""
        single = pfd_moments(self.model, 1)
        pair = pfd_moments(self.model, 2)
        return {
            "single_mean": single.mean,
            "single_std": single.std,
            "pair_mean": pair.mean,
            "pair_std": pair.std,
        }
