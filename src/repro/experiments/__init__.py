"""Experiment substrate: synthetic multi-version experiments and canonical scenarios.

* :mod:`~repro.experiments.knight_leveson` -- a synthetic stand-in for the
  Knight-Leveson N-version programming experiment, used for the Section 7
  qualitative check ("diversity reduced not only the sample mean of the PFD of
  the 27 program versions produced, but also -- greatly -- its standard
  deviation");
* :mod:`~repro.experiments.scenarios` -- the parameterised fault models,
  failure-region layouts and profiles shared by the examples, tests and
  benchmark harness.
"""

from repro.experiments.knight_leveson import NVersionExperimentResult, SyntheticNVersionExperiment
from repro.experiments.scenarios import (
    SCENARIOS,
    ScenarioEntry,
    fig2_failure_regions,
    get_scenario,
    high_quality_scenario,
    many_small_faults_scenario,
    protection_system_model,
    protection_system_scenario,
    ProtectionSystemScenario,
    scenario_names,
)

__all__ = [
    "NVersionExperimentResult",
    "ProtectionSystemScenario",
    "SCENARIOS",
    "ScenarioEntry",
    "SyntheticNVersionExperiment",
    "fig2_failure_regions",
    "get_scenario",
    "high_quality_scenario",
    "many_small_faults_scenario",
    "protection_system_model",
    "protection_system_scenario",
    "scenario_names",
]
