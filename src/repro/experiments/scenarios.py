"""Canonical scenarios shared by the examples, tests and benchmark harness.

Three scenarios cover the regimes the paper distinguishes, plus the
failure-region layout of Fig. 2:

* :func:`high_quality_scenario` -- Section 4's regime: few potential faults,
  all with small introduction probability, where the question is the
  probability of *no* common fault;
* :func:`many_small_faults_scenario` -- Section 5's regime: many potential
  faults with small individual impact, where the normal approximation and its
  confidence bounds apply;
* :func:`protection_system_scenario` -- the Fig. 1 dual-channel plant
  protection system with an explicit two-dimensional demand space, operational
  profile and failure-region geometry (used by the architecture simulation and
  the Fig. 2 reproduction);
* :func:`fig2_failure_regions` -- the Fig. 2 layout on its own: a handful of
  simple-shaped regions plus a non-connected array of failure points.
"""

from __future__ import annotations

import functools
import inspect
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.fault_model import FaultModel
from repro.demandspace.profiles import (
    MixtureProfile,
    OperationalProfile,
    ProductProfile,
    TruncatedNormalMarginal,
    UniformMarginal,
)
from repro.demandspace.regions import (
    BallRegion,
    BoxRegion,
    FailureRegion,
    PointSetRegion,
    UnionRegion,
)
from repro.demandspace.space import ContinuousDemandSpace
from repro.stats.rng import ensure_rng

__all__ = [
    "ProtectionSystemScenario",
    "ScenarioEntry",
    "SCENARIOS",
    "fig2_failure_regions",
    "get_scenario",
    "high_quality_scenario",
    "many_small_faults_scenario",
    "protection_system_model",
    "protection_system_scenario",
    "scenario_names",
]


def high_quality_scenario() -> FaultModel:
    """Section 4 regime: very high-quality software with a handful of unlikely faults.

    Five potential faults with introduction probabilities between 0.5% and 5%
    and small failure regions; the expected number of faults per version is
    about 0.12, so versions are usually fault-free.
    """
    return FaultModel(
        p=np.array([0.05, 0.03, 0.02, 0.01, 0.005]),
        q=np.array([1e-4, 5e-5, 2e-4, 1e-5, 5e-4]),
        names=(
            "trip-threshold off by one",
            "unit conversion error",
            "missed sensor-saturation case",
            "race on mode switch",
            "stale-input timeout mishandled",
        ),
    )


def many_small_faults_scenario(
    n: int = 200, rng: int | np.random.Generator | None = 7
) -> FaultModel:
    """Section 5 regime: very many possible faults, each with small probability and impact.

    Fault probabilities are log-uniform in ``[0.002, 0.08]`` and failure-region
    probabilities are a Dirichlet split of a total impact of 0.3, generated
    reproducibly from the given seed.
    """
    generator = ensure_rng(rng)
    return FaultModel.random(
        generator,
        n=n,
        p_range=(0.002, 0.08),
        total_impact=0.3,
        impact_dispersion=0.7,
    )


def fig2_failure_regions(space: ContinuousDemandSpace | None = None) -> list[FailureRegion]:
    """The Fig. 2-style failure-region layout over a two-variable demand space.

    Five regions, mirroring the figure's five numbered shapes and the
    literature's observations quoted alongside it: two compact blobs, one thin
    stripe, one box near a corner, and one non-connected array of isolated
    failure points.
    """
    space = space or ContinuousDemandSpace.unit_square()
    if space.dimension != 2:
        raise ValueError("the Fig. 2 layout needs a two-dimensional demand space")
    low, width = space.lower, space.widths

    def scale(point: tuple[float, float]) -> np.ndarray:
        return low + np.asarray(point) * width

    point_array = np.stack([scale((0.1 + 0.05 * i, 0.85)) for i in range(8)])
    return [
        BallRegion(center=scale((0.25, 0.3)), radius=0.06 * float(width.min())),
        BallRegion(center=scale((0.7, 0.65)), radius=0.09 * float(width.min())),
        BoxRegion(lower=scale((0.45, 0.05)), upper=scale((0.5, 0.95))),
        BoxRegion(lower=scale((0.8, 0.05)), upper=scale((0.95, 0.2))),
        PointSetRegion(points=point_array, tolerance=0.004 * float(width.min())),
    ]


@dataclass(frozen=True)
class ProtectionSystemScenario:
    """A complete Fig. 1 scenario: demand space, profile, regions and fault model."""

    space: ContinuousDemandSpace
    profile: OperationalProfile
    regions: tuple[FailureRegion, ...]
    model: FaultModel

    @property
    def n(self) -> int:
        """Number of potential faults."""
        return self.model.n


def protection_system_scenario(
    rng: int | np.random.Generator | None = 11,
) -> ProtectionSystemScenario:
    """Build the canonical dual-channel plant-protection scenario.

    The demand space has two sensed plant variables (pressure in bar and
    temperature in Celsius).  Demands cluster around two upset classes (a
    pressure excursion and a temperature excursion) modelled as a mixture of
    truncated-normal product profiles.  Six potential faults have failure
    regions of the shapes discussed with Fig. 2; their ``q_i`` are computed by
    Monte Carlo against the profile, so the resulting fault model is consistent
    with the geometry by construction.
    """
    generator = ensure_rng(rng)
    space = ContinuousDemandSpace(
        lower=np.array([40.0, 200.0]),
        upper=np.array([220.0, 520.0]),
        names=("pressure_bar", "temperature_c"),
    )
    pressure_upset = ProductProfile(
        space,
        [
            TruncatedNormalMarginal(mean=170.0, std=18.0, lower=40.0, upper=220.0),
            TruncatedNormalMarginal(mean=330.0, std=40.0, lower=200.0, upper=520.0),
        ],
    )
    temperature_upset = ProductProfile(
        space,
        [
            TruncatedNormalMarginal(mean=120.0, std=25.0, lower=40.0, upper=220.0),
            TruncatedNormalMarginal(mean=450.0, std=28.0, lower=200.0, upper=520.0),
        ],
    )
    background = ProductProfile(
        space,
        [UniformMarginal(40.0, 220.0), UniformMarginal(200.0, 520.0)],
    )
    profile = MixtureProfile(
        components=[pressure_upset, temperature_upset, background],
        weights=[0.55, 0.35, 0.10],
    )
    regions: list[FailureRegion] = [
        # Mis-set high-pressure trip threshold: fails on a band just above the
        # correct set point.
        BoxRegion(lower=np.array([185.0, 200.0]), upper=np.array([197.0, 520.0])),
        # Temperature compensation bug near the upper temperature range.
        BoxRegion(lower=np.array([40.0, 470.0]), upper=np.array([220.0, 492.0])),
        # Sensor-saturation corner case: both variables near their maxima.
        BoxRegion(lower=np.array([205.0, 495.0]), upper=np.array([220.0, 520.0])),
        # Numerical instability blob around a particular operating point.
        BallRegion(center=np.array([150.0, 430.0]), radius=12.0),
        # Mode-switch race: a thin stripe in pressure.
        BoxRegion(lower=np.array([99.0, 200.0]), upper=np.array([101.5, 520.0])),
        # Table-interpolation error: a non-connected array of isolated points.
        UnionRegion(
            [
                PointSetRegion(
                    points=np.array([[60.0 + 15.0 * i, 260.0 + 20.0 * i] for i in range(6)]),
                    tolerance=1.5,
                )
            ]
        ),
    ]
    probabilities = [0.04, 0.03, 0.02, 0.015, 0.01, 0.025]
    names = (
        "mis-set pressure trip",
        "temperature compensation bug",
        "sensor saturation corner case",
        "numerical instability",
        "mode-switch race",
        "interpolation table error",
    )
    model = FaultModel.from_regions(
        probabilities=probabilities,
        regions=regions,
        profile=profile,
        rng=generator,
        sample_size=60_000,
        names=names,
    )
    return ProtectionSystemScenario(
        space=space, profile=profile, regions=tuple(regions), model=model
    )


def protection_system_model(rng: int | np.random.Generator | None = 11) -> FaultModel:
    """The plain :class:`FaultModel` view of :func:`protection_system_scenario`.

    This is the registry-facing entry point: callers that only need the
    ``(p_i, q_i)`` parameters (the CLI, the study runner) get the fault model
    without handling the full geometry bundle.
    """
    return protection_system_scenario(rng).model


# --------------------------------------------------------------------- #
# Scenario registry
# --------------------------------------------------------------------- #
@functools.lru_cache(maxsize=None)
def factory_signature(factory: Callable) -> inspect.Signature:
    """Memoised :func:`inspect.signature` (called per point when planning studies)."""
    return inspect.signature(factory)


@dataclass(frozen=True)
class ScenarioEntry:
    """A named, documented scenario addressable from the CLI and study specs.

    ``factory`` returns the scenario's :class:`FaultModel`; keyword arguments
    it declares (e.g. ``n`` or ``rng``) may be overridden through
    :func:`get_scenario`.
    """

    name: str
    description: str
    factory: Callable[..., FaultModel]

    def parameters(self) -> tuple[str, ...]:
        """Names of the keyword arguments the factory accepts."""
        return tuple(factory_signature(self.factory).parameters)


#: Built-in scenarios, shared by ``repro assess``/``simulate``/``study``,
#: ``repro scenarios``, the benchmark harness and the examples.
SCENARIOS: dict[str, ScenarioEntry] = {
    "high-quality": ScenarioEntry(
        name="high-quality",
        description="Section 4 regime: five unlikely faults, versions usually fault-free",
        factory=high_quality_scenario,
    ),
    "many-small-faults": ScenarioEntry(
        name="many-small-faults",
        description="Section 5 regime: n log-uniform faults with small individual impact",
        factory=many_small_faults_scenario,
    ),
    "protection-system": ScenarioEntry(
        name="protection-system",
        description="Fig. 1 dual-channel plant protection system (fault-model view)",
        factory=protection_system_model,
    ),
}


def scenario_names() -> tuple[str, ...]:
    """Registered scenario names, sorted."""
    return tuple(sorted(SCENARIOS))


def get_scenario(name: str, **overrides) -> FaultModel:
    """Build the named scenario's fault model, applying factory overrides.

    ``overrides`` must be keyword arguments declared by the scenario's
    factory (e.g. ``n=500`` for ``many-small-faults``); anything else raises
    ``ValueError`` naming the accepted parameters, so study specs fail loudly
    on axes the scenario cannot interpret.
    """
    try:
        entry = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {', '.join(scenario_names())}"
        ) from None
    accepted = entry.parameters()
    unknown = sorted(set(overrides) - set(accepted))
    if unknown:
        raise ValueError(
            f"scenario {name!r} does not accept parameter(s) {', '.join(unknown)}; "
            f"accepted: {', '.join(accepted) or '(none)'}"
        )
    return entry.factory(**overrides)
