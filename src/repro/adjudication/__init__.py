"""Adjudication and redundant-architecture substrate (Fig. 1 of the paper).

The paper studies the simplest diverse-redundant configuration: two versions
with perfect adjudication ("simple OR combination of binary outputs, giving a
1-out-of-2 diverse system"), the classic dual-channel plant-protection
arrangement of Fig. 1.  This subpackage provides that adjudicator, its natural
generalisations (1-out-of-N, M-out-of-N majority voting), and an N-version
system simulator that runs developed versions demand-by-demand against an
operational profile.
"""

from repro.adjudication.adjudicators import (
    Adjudicator,
    MOutOfNAdjudicator,
    OneOutOfNAdjudicator,
    UnanimityAdjudicator,
)
from repro.adjudication.architectures import DemandSimulationResult, NVersionSystem

__all__ = [
    "Adjudicator",
    "DemandSimulationResult",
    "MOutOfNAdjudicator",
    "NVersionSystem",
    "OneOutOfNAdjudicator",
    "UnanimityAdjudicator",
]
