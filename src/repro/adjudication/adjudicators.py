"""Adjudicators: how channel outputs are combined into a system output.

All adjudicators here are *perfect* in the paper's sense: the combination
logic itself never fails; only the versions can fail.  An adjudicator maps a
boolean matrix of per-channel failures (rows = demands, columns = channels) to
a boolean vector of system failures.

* :class:`OneOutOfNAdjudicator` -- the protection-system OR: the system
  performs its safety action if *any* channel demands it, so it fails on a
  demand only when *every* channel fails.  With two channels this is the
  paper's 1-out-of-2 configuration.
* :class:`MOutOfNAdjudicator` -- majority-style voting: at least ``m`` correct
  channels are needed, so the system fails when more than ``n - m`` channels
  fail.
* :class:`UnanimityAdjudicator` -- the system fails if *any* channel fails
  (series configuration / AND of failures); included as the pessimistic
  extreme for comparison studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Adjudicator",
    "OneOutOfNAdjudicator",
    "MOutOfNAdjudicator",
    "UnanimityAdjudicator",
]


class Adjudicator:
    """Abstract base class for adjudicators."""

    def system_failures(self, channel_failures: np.ndarray) -> np.ndarray:
        """Map per-channel failures to system failures.

        Parameters
        ----------
        channel_failures:
            Boolean array of shape ``(demands, channels)``.

        Returns
        -------
        Boolean array of length ``demands``.
        """
        raise NotImplementedError

    @staticmethod
    def _validate(channel_failures: np.ndarray) -> np.ndarray:
        array = np.asarray(channel_failures, dtype=bool)
        if array.ndim == 1:
            array = array.reshape(1, -1)
        if array.ndim != 2 or array.shape[1] == 0:
            raise ValueError(
                f"channel_failures must have shape (demands, channels), got {array.shape}"
            )
        return array


@dataclass(frozen=True)
class OneOutOfNAdjudicator(Adjudicator):
    """1-out-of-N: the system fails only when every channel fails (the paper's OR)."""

    def system_failures(self, channel_failures: np.ndarray) -> np.ndarray:
        array = self._validate(channel_failures)
        return np.all(array, axis=1)


@dataclass(frozen=True)
class UnanimityAdjudicator(Adjudicator):
    """N-out-of-N: the system fails as soon as any channel fails (series system)."""

    def system_failures(self, channel_failures: np.ndarray) -> np.ndarray:
        array = self._validate(channel_failures)
        return np.any(array, axis=1)


@dataclass(frozen=True)
class MOutOfNAdjudicator(Adjudicator):
    """M-out-of-N: at least ``required_correct`` channels must be correct.

    The system fails on a demand when strictly fewer than ``required_correct``
    channels respond correctly, i.e. when more than ``channels - required_correct``
    channels fail.  ``MOutOfNAdjudicator(required_correct=2, channels=3)`` is
    the familiar two-out-of-three voter.
    """

    required_correct: int
    channels: int

    def __post_init__(self) -> None:
        if self.channels < 1:
            raise ValueError(f"channels must be positive, got {self.channels}")
        if not 1 <= self.required_correct <= self.channels:
            raise ValueError(
                f"required_correct must be in [1, {self.channels}], got {self.required_correct}"
            )

    def system_failures(self, channel_failures: np.ndarray) -> np.ndarray:
        array = self._validate(channel_failures)
        if array.shape[1] != self.channels:
            raise ValueError(
                f"expected {self.channels} channels, got {array.shape[1]}"
            )
        failing = np.sum(array, axis=1)
        return failing > (self.channels - self.required_correct)
