"""N-version system architectures and demand-by-demand simulation.

:class:`NVersionSystem` combines a set of developed versions, the failure
regions of the potential faults in the demand space, an operational profile
and an adjudicator into an executable model of the Fig. 1 protection system:
demands are drawn from the profile, each channel fails when the demand falls
in a failure region of a fault that channel contains, and the adjudicator
decides whether the system as a whole fails.

Two evaluation routes are provided and should agree:

* **analytic** -- for 1-out-of-N adjudication the system's failure regions are
  the regions of the faults common to all channels, so its PFD is the profile
  measure of their union (equal to the sum of ``q_i`` under the non-overlap
  assumption);
* **simulated** -- demand-by-demand Monte Carlo execution, which works for any
  adjudicator and also when regions overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.adjudication.adjudicators import Adjudicator, OneOutOfNAdjudicator
from repro.demandspace.profiles import OperationalProfile
from repro.demandspace.regions import FailureRegion
from repro.versions.version import DevelopedVersion

__all__ = ["NVersionSystem", "DemandSimulationResult"]


@dataclass(frozen=True)
class DemandSimulationResult:
    """Outcome of a demand-by-demand simulation of an N-version system.

    Attributes
    ----------
    demands_simulated:
        Number of demands drawn from the operational profile.
    channel_failure_counts:
        Number of failed demands per channel.
    system_failure_count:
        Number of demands on which the adjudicated system failed.
    """

    demands_simulated: int
    channel_failure_counts: np.ndarray
    system_failure_count: int

    @property
    def channel_pfd_estimates(self) -> np.ndarray:
        """Per-channel PFD estimates (failures / demands)."""
        return self.channel_failure_counts / self.demands_simulated

    @property
    def system_pfd_estimate(self) -> float:
        """System PFD estimate (failures / demands)."""
        return self.system_failure_count / self.demands_simulated

    @property
    def system_pfd_standard_error(self) -> float:
        """Binomial standard error of the system PFD estimate."""
        estimate = self.system_pfd_estimate
        return float(np.sqrt(max(estimate * (1.0 - estimate), 0.0) / self.demands_simulated))


@dataclass(frozen=True)
class NVersionSystem:
    """An N-version system: developed versions + failure-region geometry + adjudicator.

    Parameters
    ----------
    versions:
        The developed versions, one per channel; all must come from the same
        fault population (same ``n``).
    regions:
        One failure region per potential fault, aligned with the fault model's
        indices.
    profile:
        Operational profile generating demands.
    adjudicator:
        How channel outputs combine; defaults to the paper's 1-out-of-N OR.
    """

    versions: tuple[DevelopedVersion, ...]
    regions: tuple[FailureRegion, ...]
    profile: OperationalProfile
    adjudicator: Adjudicator = OneOutOfNAdjudicator()

    def __init__(
        self,
        versions: Sequence[DevelopedVersion],
        regions: Sequence[FailureRegion],
        profile: OperationalProfile,
        adjudicator: Adjudicator | None = None,
    ):
        version_tuple = tuple(versions)
        if not version_tuple:
            raise ValueError("at least one version is required")
        fault_counts = {version.model.n for version in version_tuple}
        if len(fault_counts) != 1:
            raise ValueError("all versions must come from the same population of potential faults")
        n = fault_counts.pop()
        region_tuple = tuple(regions)
        if len(region_tuple) != n:
            raise ValueError(f"expected {n} failure regions (one per potential fault), got {len(region_tuple)}")
        object.__setattr__(self, "versions", version_tuple)
        object.__setattr__(self, "regions", region_tuple)
        object.__setattr__(self, "profile", profile)
        object.__setattr__(self, "adjudicator", adjudicator or OneOutOfNAdjudicator())

    @property
    def channel_count(self) -> int:
        """Number of channels (versions)."""
        return len(self.versions)

    @property
    def fault_count(self) -> int:
        """Number of potential faults in the population."""
        return self.versions[0].model.n

    # ------------------------------------------------------------------ #
    # Analytic evaluation (1-out-of-N adjudication)
    # ------------------------------------------------------------------ #
    def common_fault_indicator(self) -> np.ndarray:
        """Boolean vector of faults present in *every* channel."""
        indicator = np.ones(self.fault_count, dtype=bool)
        for version in self.versions:
            indicator &= version.fault_present
        return indicator

    def analytic_system_pfd(self) -> float:
        """System PFD under 1-out-of-N adjudication and non-overlapping regions.

        Sum of the ``q_i`` of the faults common to all channels.  Raises when
        the adjudicator is not 1-out-of-N, because the simple common-fault
        argument then no longer applies.
        """
        if not isinstance(self.adjudicator, OneOutOfNAdjudicator):
            raise ValueError(
                "analytic_system_pfd applies only to 1-out-of-N adjudication; "
                "use simulate() for other adjudicators"
            )
        model = self.versions[0].model
        return float(np.sum(model.q[self.common_fault_indicator()]))

    # ------------------------------------------------------------------ #
    # Demand-by-demand simulation
    # ------------------------------------------------------------------ #
    def demand_region_membership(self, demands: np.ndarray) -> np.ndarray:
        """Boolean matrix ``(demands, faults)``: which failure regions each demand hits."""
        membership = np.zeros((demands.shape[0], self.fault_count), dtype=bool)
        for index, region in enumerate(self.regions):
            membership[:, index] = region.contains(demands)
        return membership

    def channel_failures(self, demands: np.ndarray) -> np.ndarray:
        """Boolean matrix ``(demands, channels)`` of per-channel failures."""
        membership = self.demand_region_membership(demands)
        failures = np.zeros((demands.shape[0], self.channel_count), dtype=bool)
        for channel, version in enumerate(self.versions):
            failures[:, channel] = version.fails_on(membership)
        return failures

    def simulate(self, rng: np.random.Generator, demands: int) -> DemandSimulationResult:
        """Run ``demands`` operational demands through the system."""
        if demands < 1:
            raise ValueError(f"demands must be positive, got {demands}")
        demand_points = self.profile.sample(rng, demands)
        failures = self.channel_failures(demand_points)
        system_failures = self.adjudicator.system_failures(failures)
        return DemandSimulationResult(
            demands_simulated=demands,
            channel_failure_counts=np.sum(failures, axis=0),
            system_failure_count=int(np.sum(system_failures)),
        )
