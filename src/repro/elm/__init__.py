"""Eckhardt-Lee and Littlewood-Miller baseline models.

The paper positions the fault-creation model against the two classic
conceptual models of coincident failure in multi-version software, which it
calls the "EL" and "LM" models:

* **Eckhardt & Lee (1985)** -- versions are sampled independently from a
  population; each demand ``x`` has a *difficulty* ``theta(x)``, the
  probability that a randomly developed version fails on ``x``.  The mean PFD
  of a single version is ``E[theta(X)]`` and of an (independent-development)
  two-version system ``E[theta(X)^2] >= (E[theta(X)])^2`` -- the celebrated
  result that independent development does not imply independent failure.
* **Littlewood & Miller (1989)** -- the two channels may be developed by
  *different* methodologies with difficulty functions ``theta_A`` and
  ``theta_B``; the system mean becomes ``E[theta_A(X) theta_B(X)]``, which can
  be *smaller* than the product of the means when the difficulties are
  negatively correlated over the demand space (the formal argument for forced
  diversity).

The fault-creation model refines these by describing *how* the difficulty
function arises from the population of potential faults; the
:mod:`~repro.elm.comparison` module builds that bridge explicitly.
"""

from repro.elm.comparison import difficulty_from_fault_model
from repro.elm.difficulty import DifficultyFunction
from repro.elm.eckhardt_lee import EckhardtLeeModel
from repro.elm.littlewood_miller import LittlewoodMillerModel

__all__ = [
    "DifficultyFunction",
    "EckhardtLeeModel",
    "LittlewoodMillerModel",
    "difficulty_from_fault_model",
]
