"""The Littlewood-Miller model of coincident failures with forced diversity.

Littlewood & Miller (1989) generalise Eckhardt-Lee to channels developed under
*different* methodologies ``A`` and ``B``, each with its own difficulty
function.  The mean PFD of the 1-out-of-2 system is then
``E[theta_A(X) theta_B(X)]``, which can be smaller than
``E[theta_A(X)] E[theta_B(X)]`` when the difficulties are negatively
correlated over the demand space -- the formal argument that forced diversity
can beat even the independence prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.elm.difficulty import DifficultyFunction

__all__ = ["LittlewoodMillerModel"]


@dataclass(frozen=True)
class LittlewoodMillerModel:
    """The LM model: one difficulty function per development methodology."""

    difficulty_a: DifficultyFunction
    difficulty_b: DifficultyFunction

    def __post_init__(self) -> None:
        if self.difficulty_a.size != self.difficulty_b.size:
            raise ValueError("both difficulty functions must cover the same demand space")
        if not np.allclose(
            self.difficulty_a.demand_probabilities, self.difficulty_b.demand_probabilities
        ):
            raise ValueError("both difficulty functions must share the same operational profile")

    def mean_single_version_pfd(self) -> tuple[float, float]:
        """``(E[theta_A(X)], E[theta_B(X)])``."""
        return (
            self.difficulty_a.mean_difficulty(),
            self.difficulty_b.mean_difficulty(),
        )

    def mean_system_pfd(self) -> float:
        """``E[theta_A(X) theta_B(X)]`` -- mean PFD of the 1-out-of-2 system."""
        return float(
            np.dot(
                self.difficulty_a.demand_probabilities,
                self.difficulty_a.difficulties * self.difficulty_b.difficulties,
            )
        )

    def independence_prediction(self) -> float:
        """``E[theta_A(X)] * E[theta_B(X)]``."""
        mean_a, mean_b = self.mean_single_version_pfd()
        return mean_a * mean_b

    def difficulty_covariance(self) -> float:
        """``Cov[theta_A(X), theta_B(X)]``; negative values favour forced diversity."""
        return self.difficulty_a.covariance_with(self.difficulty_b)

    def beats_independence(self) -> bool:
        """True when the system mean PFD is below the independence prediction.

        Happens exactly when the difficulty covariance is negative -- the LM
        argument for forcing the channels to be different.
        """
        return self.mean_system_pfd() < self.independence_prediction()
