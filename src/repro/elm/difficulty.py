"""Difficulty functions over a finite demand space.

The EL/LM models describe the development process through the *difficulty
function* ``theta(x)``: the probability that a randomly developed version
fails on demand ``x``.  Over a finite demand space it is just a vector aligned
with the demand probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DifficultyFunction"]


@dataclass(frozen=True)
class DifficultyFunction:
    """A difficulty function over a finite demand space.

    Parameters
    ----------
    demand_probabilities:
        Operational-profile probability of each demand (non-negative, summing
        to 1).
    difficulties:
        ``theta(x)`` for each demand, each in ``[0, 1]``.
    """

    demand_probabilities: np.ndarray
    difficulties: np.ndarray

    def __post_init__(self) -> None:
        probabilities = np.asarray(self.demand_probabilities, dtype=float)
        difficulties = np.asarray(self.difficulties, dtype=float)
        if probabilities.ndim != 1 or difficulties.ndim != 1:
            raise ValueError("demand_probabilities and difficulties must be 1-D arrays")
        if probabilities.size != difficulties.size:
            raise ValueError("demand_probabilities and difficulties must have the same length")
        if probabilities.size == 0:
            raise ValueError("the demand space must contain at least one demand")
        if np.any(probabilities < 0.0):
            raise ValueError("demand probabilities must be non-negative")
        total = probabilities.sum()
        if not np.isclose(total, 1.0, atol=1e-8):
            raise ValueError(f"demand probabilities must sum to 1, got {total}")
        if np.any((difficulties < 0.0) | (difficulties > 1.0)):
            raise ValueError("difficulties must lie in [0, 1]")
        object.__setattr__(self, "demand_probabilities", probabilities / total)
        object.__setattr__(self, "difficulties", difficulties)

    @property
    def size(self) -> int:
        """Number of demands in the space."""
        return int(self.difficulties.size)

    def mean_difficulty(self) -> float:
        """``E[theta(X)]`` -- the mean PFD of a randomly developed version."""
        return float(np.dot(self.demand_probabilities, self.difficulties))

    def moment(self, order: int) -> float:
        """``E[theta(X)^order]`` over the operational profile."""
        if order < 1:
            raise ValueError(f"order must be a positive integer, got {order}")
        return float(np.dot(self.demand_probabilities, self.difficulties**order))

    def variance_of_difficulty(self) -> float:
        """``Var[theta(X)]`` over the operational profile.

        This is the quantity that drives the EL result: the excess of the
        two-version mean PFD over the independence prediction equals exactly
        this variance.
        """
        mean = self.mean_difficulty()
        return self.moment(2) - mean**2

    def covariance_with(self, other: "DifficultyFunction") -> float:
        """``Cov[theta_self(X), theta_other(X)]`` over a shared operational profile."""
        if other.size != self.size:
            raise ValueError("difficulty functions must be defined over the same demand space")
        if not np.allclose(other.demand_probabilities, self.demand_probabilities):
            raise ValueError("difficulty functions must share the same operational profile")
        product_mean = float(
            np.dot(self.demand_probabilities, self.difficulties * other.difficulties)
        )
        return product_mean - self.mean_difficulty() * other.mean_difficulty()
