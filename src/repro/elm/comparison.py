"""Bridging the fault-creation model and the EL/LM difficulty-function view.

A fault-creation model plus an explicit failure-region geometry induces a
difficulty function over a finite demand space: a randomly developed version
fails on demand ``x`` exactly when at least one fault whose region contains
``x`` is present, so

    ``theta(x) = 1 - prod_{i : x in region_i} (1 - p_i)``.

When every demand is covered by at most one potential fault's region, the EL
view reproduces the fault-creation model's means exactly:
``E[theta(X)] = sum p_i q_i`` and ``E[theta(X)^2] = sum p_i^2 q_i``.  When
regions *overlap*, the two views diverge in opposite directions:

* the single-version sum ``sum p_i q_i`` is *pessimistic* (it double-counts
  demands shared between regions) -- the paper's Section 6.2 point;
* the two-version sum ``sum p_i^2 q_i`` can be *optimistic*, because the two
  channels can fail coincidentally on a shared demand through *different*
  faults, a contribution the common-fault sum does not include, while
  ``E[theta(X)^2]`` counts it exactly.

The comparison utilities below let users quantify both gaps.  This refines the
Section 2.2 remark that the model re-derives the EL/LM conclusions while being
"coarser-grained", and the Section 6.2 discussion of overlapping regions.
"""

from __future__ import annotations

import numpy as np

from repro.core.fault_model import FaultModel
from repro.demandspace.profiles import GridProfile
from repro.demandspace.regions import FailureRegion
from repro.elm.difficulty import DifficultyFunction
from repro.elm.eckhardt_lee import EckhardtLeeModel

__all__ = ["difficulty_from_fault_model", "compare_fault_model_with_el"]


def difficulty_from_fault_model(
    model: FaultModel, regions: list[FailureRegion], profile: GridProfile
) -> DifficultyFunction:
    """The difficulty function induced by a fault-creation model over a finite profile.

    Parameters
    ----------
    model:
        Fault-creation model supplying the ``p_i``.
    regions:
        One failure region per potential fault (aligned with the model).
    profile:
        A finite :class:`~repro.demandspace.profiles.GridProfile`; the
        difficulty is computed per grid demand.
    """
    if len(regions) != model.n:
        raise ValueError(f"expected {model.n} regions, got {len(regions)}")
    demands = profile.space.points
    survival = np.ones(demands.shape[0], dtype=float)
    for index, region in enumerate(regions):
        membership = region.contains(demands)
        survival[membership] *= 1.0 - model.p[index]
    return DifficultyFunction(
        demand_probabilities=profile.probabilities,
        difficulties=1.0 - survival,
    )


def compare_fault_model_with_el(
    model: FaultModel, regions: list[FailureRegion], profile: GridProfile
) -> dict:
    """Tabulate the fault-creation model's means against the induced EL model's.

    Returns a dictionary with the single-version and two-version mean PFD under
    both views plus the independence prediction.  Both pairs of means agree
    exactly when the failure regions are pairwise disjoint; with overlapping
    regions the single-version sum is pessimistic while the two-version sum can
    be optimistic (see module docstring).
    """
    from repro.core.moments import single_version_mean, two_version_mean

    difficulty = difficulty_from_fault_model(model, regions, profile)
    el_model = EckhardtLeeModel(difficulty)
    return {
        "fault_model_mean_single": single_version_mean(model),
        "fault_model_mean_system": two_version_mean(model),
        "el_mean_single": el_model.mean_single_version_pfd(),
        "el_mean_system": el_model.mean_system_pfd(),
        "independence_prediction": el_model.independence_prediction(),
        "el_excess_over_independence": el_model.excess_over_independence(),
    }
