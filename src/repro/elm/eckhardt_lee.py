"""The Eckhardt-Lee model of coincident failures.

Eckhardt & Lee (1985): versions are independent draws from a population of
programs; the *difficulty* ``theta(x)`` is the probability that a random
version fails on demand ``x``.  Conditional on the demand, version failures
are independent, so for an r-version, 1-out-of-r system the mean PFD is
``E[theta(X)^r]``.  Jensen's inequality then gives the paper's headline
re-derivation: ``E[theta(X)^2] >= (E[theta(X)])^2`` -- on average a
two-version system is *worse* than the "independent failures" prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.elm.difficulty import DifficultyFunction

__all__ = ["EckhardtLeeModel"]


@dataclass(frozen=True)
class EckhardtLeeModel:
    """The EL model: one difficulty function shared by all development teams."""

    difficulty: DifficultyFunction

    def mean_single_version_pfd(self) -> float:
        """``E[theta(X)]``."""
        return self.difficulty.mean_difficulty()

    def mean_system_pfd(self, versions: int = 2) -> float:
        """``E[theta(X)^versions]`` -- mean PFD of a 1-out-of-``versions`` system."""
        return self.difficulty.moment(versions)

    def independence_prediction(self, versions: int = 2) -> float:
        """``(E[theta(X)])^versions`` -- the (generally optimistic) independence claim."""
        return self.mean_single_version_pfd() ** versions

    def excess_over_independence(self, versions: int = 2) -> float:
        """``E[theta^r] - (E[theta])^r``; for ``r = 2`` this equals ``Var[theta(X)]``.

        Non-negative by Jensen's inequality: the difficulty variation over the
        demand space is exactly what makes independent development fall short
        of independent failure.
        """
        return self.mean_system_pfd(versions) - self.independence_prediction(versions)

    def mean_gain(self, versions: int = 2) -> float:
        """Ratio of the system mean PFD to the single-version mean PFD."""
        single = self.mean_single_version_pfd()
        if single == 0.0:
            return 1.0
        return self.mean_system_pfd(versions) / single
