"""Asyncio keep-alive HTTP/1.1 client connections to one backend shard.

The router-side mirror of :class:`repro.service.client.ServiceClient`'s
per-thread keep-alive: each shard gets a small pool of persistent
connections multiplexed across concurrent router requests, so a hop costs a
round trip, not a TCP handshake.  A pooled connection the shard closed
between uses is detected on reuse (EOF where the status line should be) and
replaced transparently, counted in ``stats["reconnects"]``.  The idle pool
is bounded (``max_idle``): a concurrency burst -- a batch fan-out plus
replica writes landing together -- opens extra connections, but only
``max_idle`` of them park afterwards; the rest close on release
(``stats["connections_trimmed"]``), so a long-lived router's descriptor
count tracks steady-state concurrency, not its historical peak.

Transport failures raise ``ConnectionError``/``OSError``/``TimeoutError``
-- the router's signal to eject the shard and spill its keys; HTTP-level
failures (any parsed status) are returned, not raised, because they are the
shard *answering*.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import urlsplit

__all__ = ["ShardTransport", "TransportResponse"]


@dataclass
class TransportResponse:
    """One parsed shard response."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self):
        try:
            return json.loads(self.body) if self.body else None
        except json.JSONDecodeError:
            return None


def split_base_url(base: str) -> tuple[str, int]:
    """``host, port`` from a shard spelling (``host:port`` or ``http://...``)."""
    parts = urlsplit(base if "//" in base else f"http://{base}")
    if not parts.hostname:
        raise ValueError(f"shard URL {base!r} has no host")
    return parts.hostname, parts.port or 80


class ShardTransport:
    """A keep-alive connection pool to one shard."""

    def __init__(self, base: str, timeout: float = 120.0, max_idle: int = 8) -> None:
        if max_idle < 1:
            raise ValueError(f"max_idle must be >= 1, got {max_idle}")
        self.base = base
        self.host, self.port = split_base_url(base)
        self.timeout = timeout
        self.max_idle = max_idle
        self._idle: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        self._closed = False
        self.stats = {"connections_opened": 0, "reconnects": 0, "connections_trimmed": 0}

    async def _connect(self) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self.stats["connections_opened"] += 1
        return reader, writer

    @staticmethod
    def _close_pair(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
        except Exception:  # noqa: BLE001 - already torn down
            pass

    def _render(self, verb: str, path: str, body: bytes, headers: dict) -> bytes:
        lines = [
            f"{verb} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            f"Content-Length: {len(body)}",
        ]
        if body:
            lines.append("Content-Type: application/json")
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        head = "\r\n".join(lines) + "\r\n\r\n"
        return head.encode("latin-1") + body

    async def request(
        self,
        verb: str,
        path: str,
        body: bytes = b"",
        headers: dict | None = None,
        timeout: float | None = None,
    ) -> TransportResponse:
        """One round trip; raises ``OSError``-family on transport failure."""
        budget = self.timeout if timeout is None else timeout
        return await asyncio.wait_for(
            self._request_inner(verb, path, body, headers or {}), budget
        )

    async def _request_inner(
        self, verb: str, path: str, body: bytes, headers: dict
    ) -> TransportResponse:
        payload = self._render(verb, path, body, headers)
        reused = bool(self._idle)
        reader, writer = self._idle.pop() if reused else await self._connect()
        try:
            writer.write(payload)
            await writer.drain()
            status_line = await reader.readline()
        except (ConnectionError, OSError):
            self._close_pair(writer)
            if not reused:
                raise
            status_line = b""
        if not status_line:
            # EOF where the status line should be: the shard closed this
            # kept-alive connection between uses.  Retry once on a fresh
            # connection; a fresh connection going straight to EOF is the
            # shard actually being down, and raises.
            self._close_pair(writer)
            if not reused:
                raise ConnectionError(f"shard {self.base} closed the connection")
            self.stats["reconnects"] += 1
            reader, writer = await self._connect()
            writer.write(payload)
            await writer.drain()
            status_line = await reader.readline()
            if not status_line:
                self._close_pair(writer)
                raise ConnectionError(f"shard {self.base} closed the connection")
        try:
            response = await self._read_response(reader, status_line)
        except (ConnectionError, OSError, asyncio.IncompleteReadError) as error:
            self._close_pair(writer)
            raise ConnectionError(
                f"shard {self.base} died mid-response: {error}"
            ) from error
        if self._closed or response.headers.get("connection", "").lower() == "close":
            self._close_pair(writer)
        elif len(self._idle) >= self.max_idle:
            self.stats["connections_trimmed"] += 1
            self._close_pair(writer)
        else:
            self._idle.append((reader, writer))
        return response

    @staticmethod
    async def _read_response(
        reader: asyncio.StreamReader, status_line: bytes
    ) -> TransportResponse:
        parts = status_line.decode("latin-1").strip().split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length > 0 else b""
        return TransportResponse(status=status, headers=headers, body=body)

    async def aclose(self) -> None:
        """Close every pooled connection; in-flight exchanges finish and drop."""
        self._closed = True
        while self._idle:
            _, writer = self._idle.pop()
            self._close_pair(writer)
