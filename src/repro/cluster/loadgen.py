"""Deterministic open-loop load generator for the service and cluster tiers.

Drives a live endpoint (a single ``repro serve`` shard or a ``repro route``
router -- the wire protocol is identical) with a reproducible traffic
pattern and reports throughput and latency percentiles from the telemetry
histograms.

Three phases, matching how the cluster is exercised in practice:

* **cold** -- every distinct payload once; on a router this spreads across
  shards by batch-group digest, so it measures scale-out compute throughput;
* **warm** -- the same payloads again; every answer must come from a cache
  tier (router LRU, shard LRU/disk, or a peer via the remote tier), which
  the benchmark gate checks by diffing ``evaluations_computed``;
* **duplicates** -- a small payload subset repeated many times and issued
  concurrently, stressing request coalescing and the duplicate-race path.

**Open-loop** means arrivals follow a fixed schedule (``rate`` requests per
second) regardless of completions, and each latency is measured from the
request's *scheduled* arrival, not its actual send -- a slow server shows
up as growing latency instead of silently throttling the generator
(no coordinated omission).

Everything is derived from one integer seed via :class:`random.Random`:
same seed, same models, same schedule, same duplicate subset.

:func:`run_soak` is the **chaos-soak harness** behind
``repro loadgen --soak-seconds``: it self-hosts a replicated cluster
(R-way router over N in-process shards that peer each other's caches),
warms every payload, then runs minutes-long open-loop load while killing
and restarting a shard mid-run.  Every response must be byte-identical to
the direct in-process result or a *typed* failure; the report carries
per-phase (pre-kill / degraded / recovered) latency-degradation ratios,
per-phase recompute counts (with ``--replication 2`` the degraded phase
must recompute **nothing** -- the write-all fan-out already warmed the
surviving replica), and whether the readmitted shard resumed its exact
pre-kill placement.

The soak also speaks the observability plane's vocabulary: every phase is
evaluated against the stock SLOs (:data:`~repro.telemetry.slo.
DEFAULT_OBJECTIVES`) into error-budget/burn-rate rows, ``slo_max_burn``
turns those into a pass/fail gate ("the degraded phase may burn budget at
most X times faster than sustainable"), and the report carries the
router's federated fleet snapshot cross-checked against the per-target
scrapes it was merged from.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Mapping, Sequence

from repro.service.client import ServiceClient, ServiceError
from repro.telemetry.metrics import MetricsRegistry, histogram_summary

__all__ = ["LoadGenerator", "build_workload", "run_loadgen", "run_soak"]

#: ``served["cached"]`` values the service/router emit, plus ``None``
#: (freshly computed); anything new still gets counted, under its own name.
_KNOWN_TIERS = ("computed", "lru", "disk", "remote", "router")


def build_workload(
    seed: int,
    distinct: int = 16,
    *,
    n_faults: int = 40,
    replications: int = 2_000,
    method: str = "montecarlo",
) -> list[dict]:
    """``distinct`` evaluation payloads, reproducible from ``seed``.

    Each payload gets its own model (a fresh ``many-small-faults`` draw) and
    its own evaluation seed, so every payload lands in its own batch group
    -- the shard-parallel regime a router spreads across the ring.  Options
    are small on purpose: the generator measures serving behaviour, not
    kernel throughput.
    """
    from repro.experiments.scenarios import many_small_faults_scenario

    if distinct < 1:
        raise ValueError("build_workload needs distinct >= 1")
    rng = random.Random(seed)
    payloads = []
    for index in range(distinct):
        model_rng = rng.randrange(2**31)
        payloads.append(
            {
                "model": many_small_faults_scenario(n=n_faults, rng=model_rng),
                "method": method,
                "options": {"replications": replications},
                "seed": rng.randrange(2**31),
                "p_scale": round(rng.uniform(0.25, 1.0), 6),
            }
        )
    return payloads


def duplicate_schedule(
    seed: int, payloads: Sequence[Mapping[str, Any]], factor: int = 4
) -> list[Mapping[str, Any]]:
    """The duplicate-heavy phase: a quarter of the payloads, ``factor`` times
    each, in a deterministic shuffle (derived from ``seed``, offset so it
    never mirrors the workload draw)."""
    rng = random.Random(f"{seed}:duplicates")
    subset = list(payloads[: max(1, len(payloads) // 4)])
    schedule = [item for item in subset for _ in range(max(1, factor))]
    rng.shuffle(schedule)
    return schedule


class LoadGenerator:
    """Open-loop traffic against one endpoint, phase by phase.

    The generator owns a :class:`~repro.telemetry.metrics.MetricsRegistry`;
    each phase records into its own ``loadgen_<phase>_seconds`` histogram,
    and the phase report derives p50/p95/p99 from that snapshot via
    :func:`~repro.telemetry.metrics.histogram_summary`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8760,
        *,
        rate: float = 50.0,
        workers: int = 8,
        timeout: float = 120.0,
        registry: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive (requests per second)")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.rate = float(rate)
        self.workers = int(workers)
        self.registry = registry if registry is not None else MetricsRegistry()
        self._clock = clock
        self.client = ServiceClient(
            host=host, port=port, timeout=timeout, retries=0
        )

    def _one(self, item: Mapping[str, Any]) -> tuple[float, dict | None, int | None]:
        """Issue one request; returns ``(done_at, served, error_status)``."""
        try:
            _, served = self.client.evaluate_detail(
                item["model"],
                item["method"],
                options=item.get("options"),
                seed=item.get("seed"),
                p_scale=item.get("p_scale", 1.0),
                q_scale=item.get("q_scale", 1.0),
            )
        except ServiceError as error:
            return self._clock(), None, error.status
        return self._clock(), served, None

    def run_phase(self, name: str, schedule: Sequence[Mapping[str, Any]]) -> dict:
        """Run one phase over ``schedule`` and return its report."""
        if not schedule:
            raise ValueError(f"phase {name!r} has an empty schedule")
        histogram = self.registry.histogram(f"loadgen_{name}_seconds")
        served_counts = {tier: 0 for tier in _KNOWN_TIERS}
        errors = 0
        statuses: dict[int, int] = {}
        outcomes: list[tuple[float, float, dict | None, int | None]] = []
        start = self._clock()
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            pending = []
            for index, item in enumerate(schedule):
                target = start + index / self.rate
                delay = target - self._clock()
                if delay > 0:
                    time.sleep(delay)
                pending.append((target, pool.submit(self._one, item)))
            for target, future in pending:
                done_at, served, status = future.result()
                outcomes.append((target, done_at, served, status))
        finished = max(done for _, done, _, _ in outcomes)
        for target, done_at, served, status in outcomes:
            self.registry.observe(histogram.name, max(0.0, done_at - target))
            if status is not None:
                errors += 1
                statuses[status] = statuses.get(status, 0) + 1
                continue
            tier = (served or {}).get("cached") or "computed"
            served_counts[tier] = served_counts.get(tier, 0) + 1
        elapsed = max(finished - start, 1e-9)
        summary = histogram_summary(histogram.snapshot())
        report = {
            "phase": name,
            "requests": len(schedule),
            "errors": errors,
            "offered_rate_rps": round(self.rate, 1),
            "seconds": round(elapsed, 4),
            "throughput_rps": round(len(schedule) / elapsed, 1),
            "latency_ms": {
                key: None if summary[key] is None else round(summary[key] * 1e3, 2)
                for key in ("p50", "p95", "p99", "max")
            },
            "served": served_counts,
        }
        if statuses:
            report["error_statuses"] = {str(code): count for code, count in sorted(statuses.items())}
        return report

    def close(self) -> None:
        self.client.close()


def run_loadgen(
    host: str = "127.0.0.1",
    port: int = 8760,
    *,
    seed: int = 0,
    distinct: int = 16,
    duplicate_factor: int = 4,
    rate: float = 50.0,
    workers: int = 8,
    replications: int = 2_000,
    n_faults: int = 40,
    phases: Sequence[str] = ("cold", "warm", "duplicates"),
) -> dict:
    """The standard cold/warm/duplicate-heavy run against one endpoint.

    Returns a JSON-safe record: one report per phase plus the workload
    parameters, so two runs with the same seed are comparable line by line.
    """
    payloads = build_workload(
        seed, distinct, n_faults=n_faults, replications=replications
    )
    schedules = {
        "cold": list(payloads),
        "warm": list(payloads),
        "duplicates": duplicate_schedule(seed, payloads, duplicate_factor),
    }
    unknown = [phase for phase in phases if phase not in schedules]
    if unknown:
        raise ValueError(f"unknown phases {unknown}; choose from {sorted(schedules)}")
    generator = LoadGenerator(host, port, rate=rate, workers=workers)
    try:
        reports = [generator.run_phase(phase, schedules[phase]) for phase in phases]
    finally:
        generator.close()
    return {
        "seed": seed,
        "distinct": distinct,
        "duplicate_factor": duplicate_factor,
        "rate_rps": rate,
        "workers": workers,
        "replications": replications,
        "n_faults": n_faults,
        "phases": reports,
    }


# --------------------------------------------------------------------- #
# The chaos-soak harness
# --------------------------------------------------------------------- #
def _free_ports(count: int) -> list[int]:
    """``count`` distinct free TCP ports, reserved together then released.

    Shards must know each other's addresses (``cache_peers``) *before* any
    of them binds, so ephemeral ``port=0`` binding cannot be used; holding
    all sockets open until every port is drawn keeps them distinct.
    """
    import socket

    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket()
            sock.bind(("127.0.0.1", 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


def _strip_elapsed(record: Mapping[str, Any]) -> dict:
    return {key: value for key, value in record.items() if key != "elapsed_seconds"}


def run_soak(
    *,
    seed: int = 0,
    distinct: int = 12,
    shards: int = 3,
    replication: int = 2,
    rate: float = 40.0,
    workers: int = 8,
    soak_seconds: float = 30.0,
    kill_shard_at: float | None = None,
    restart_shard_at: float | None = None,
    replications: int = 2_000,
    n_faults: int = 40,
    probe_interval_ms: float = 100.0,
    router_lru_size: int = 0,
    timeout: float = 30.0,
    slo_max_burn: float | None = None,
) -> dict:
    """Open-loop soak over a self-hosted replicated cluster with a mid-run kill.

    Builds ``shards`` in-process :class:`EvaluationServer` instances (each
    peering the others' ``/v1/cache`` surface) behind one
    :class:`ShardRouter` with ``replication``-way placement, computes every
    payload's expected result directly in-process, warms the cluster (one
    cold pass, then waiting for the write-all fan-out to land), and drives
    ``rate`` req/s for ``soak_seconds``.  At ``kill_shard_at`` seconds the
    busiest shard (most primary keys -- deterministic) is killed; at
    ``restart_shard_at`` it restarts on the same port and rejoins via the
    router's probe loop.

    The router's LRU defaults *off* (``router_lru_size=0``): the soak
    measures what the shard tier serves under failure, which a router-side
    cache would mask.

    Every response is checked byte-identical to the expected record; any
    failure must be a typed :class:`ServiceError`.  Returns a JSON-safe
    report with per-phase latency/served/recompute tables, degradation
    ratios against the pre-kill phase, the placement-snapback verdict,
    per-phase SLO rows (gated by ``slo_max_burn`` when given), and the
    router's fleet-federation cross-check.
    """
    from contextlib import suppress

    from repro.api import evaluate
    from repro.cluster.router import ShardRouter
    from repro.core.fault_model import FaultModel
    from repro.service.protocol import parse_evaluate_payload
    from repro.service.server import EvaluationServer, start_in_background

    if soak_seconds <= 0.0:
        raise ValueError(f"soak_seconds must be positive, got {soak_seconds}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if not 1 <= replication <= shards:
        raise ValueError(
            f"replication must be in 1..{shards} (the shard count), got {replication}"
        )
    if kill_shard_at is None and restart_shard_at is not None:
        raise ValueError("restart_shard_at needs kill_shard_at")
    if kill_shard_at is not None and not 0.0 < kill_shard_at < soak_seconds:
        raise ValueError(
            f"kill_shard_at must fall inside the soak (0..{soak_seconds:g}), "
            f"got {kill_shard_at:g}"
        )
    if restart_shard_at is not None and not kill_shard_at < restart_shard_at < soak_seconds:
        raise ValueError(
            f"restart_shard_at must fall between the kill and the end "
            f"({kill_shard_at:g}..{soak_seconds:g}), got {restart_shard_at:g}"
        )

    payloads = build_workload(
        seed, distinct, n_faults=n_faults, replications=replications
    )
    # Ground truth straight through the in-process API: what every routed
    # response must match byte for byte.
    expected: list[dict] = []
    keys: list[str] = []
    for item in payloads:
        model = item["model"]
        if isinstance(model, Mapping):
            model = FaultModel.from_dict(model)
        scaled = model.rescaled(item.get("p_scale", 1.0), item.get("q_scale", 1.0))
        result = evaluate(
            scaled, item["method"], seed=item.get("seed"), **item.get("options", {})
        )
        expected.append(_strip_elapsed(result.to_dict()))
        keys.append(
            parse_evaluate_payload({**item, "model": model.to_dict()}).group_key()
        )

    ports = _free_ports(shards)
    addresses = [f"127.0.0.1:{port}" for port in ports]

    def make_shard(index: int) -> "EvaluationServer":
        return EvaluationServer(
            batch_window_ms=1.0,
            cache_peers=tuple(
                address for peer, address in enumerate(addresses) if peer != index
            ),
        )

    servers = [make_shard(index) for index in range(shards)]
    handles = [
        start_in_background(server, port=port)
        for server, port in zip(servers, ports)
    ]
    router = ShardRouter(
        addresses,
        replication=replication,
        probe_interval_ms=probe_interval_ms,
        lru_size=router_lru_size,
        retries=2,
        timeout=timeout,
    )
    front = start_in_background(router)

    primaries = {index: router.ring.candidates(key)[0] for index, key in enumerate(keys)}
    owned = {address: sum(1 for owner in primaries.values() if owner == address)
             for address in addresses}
    # Deterministic victim: the shard owning the most keys (ties break on
    # ring-order address), so the kill always hits live placement.
    victim = max(addresses, key=lambda address: (owned[address], address))
    victim_index = addresses.index(victim)
    pre_kill_sets = {
        index: router.placement.replica_set(key) for index, key in enumerate(keys)
    }

    clock = time.perf_counter
    registry = MetricsRegistry()
    events: dict[str, Any] = {}
    chaos_errors: list[str] = []
    client = ServiceClient(port=front.port, timeout=timeout, retries=2)

    def one(index: int):
        item = payloads[index]
        try:
            result, served = client.evaluate_detail(
                item["model"],
                item["method"],
                options=item.get("options"),
                seed=item.get("seed"),
                p_scale=item.get("p_scale", 1.0),
                q_scale=item.get("q_scale", 1.0),
            )
        except ServiceError as error:
            return clock(), None, (error.status, error.code), True
        except Exception as error:  # noqa: BLE001 - an UNtyped failure: reported
            return clock(), None, (None, type(error).__name__), False
        matched = _strip_elapsed(result.to_dict()) == expected[index]
        return clock(), served, None, matched

    def router_counters() -> dict:
        return dict(router.registry.snapshot()["counters"])

    try:
        # ---- cold pass: warm every tier, then wait for the fan-out ---- #
        cold_mismatches = 0
        for index in range(len(payloads)):
            _, served, error, matched = one(index)
            if error is not None or not matched:
                cold_mismatches += 1
        expected_writes = len(payloads) * (replication - 1)
        deadline = clock() + 15.0
        while replication > 1 and clock() < deadline:
            counters = router_counters()
            if counters["replica_writes"] + counters["replica_write_failures"] >= expected_writes:
                break
            time.sleep(0.02)
        warm_writes = router_counters()["replica_writes"]

        # ---- the chaos timeline runs beside the open loop ------------- #
        start = clock()

        def chaos() -> None:
            try:
                if kill_shard_at is None:
                    return
                pause = start + kill_shard_at - clock()
                if pause > 0:
                    time.sleep(pause)
                handles[victim_index].stop()
                events["killed_at"] = round(clock() - start, 3)
                if restart_shard_at is None:
                    return
                pause = start + restart_shard_at - clock()
                if pause > 0:
                    time.sleep(pause)
                servers[victim_index] = make_shard(victim_index)
                handles[victim_index] = start_in_background(
                    servers[victim_index], port=ports[victim_index]
                )
                events["restarted_at"] = round(clock() - start, 3)
            except Exception as error:  # noqa: BLE001 - surfaced in the report
                chaos_errors.append(f"{type(error).__name__}: {error}")

        chaos_thread = threading.Thread(target=chaos, daemon=True)

        # ---- the open loop: scheduled arrivals, phase by offset ------- #
        total = max(1, int(round(rate * soak_seconds)))
        order: list[int] = []
        rng = random.Random(f"{seed}:soak")
        while len(order) < total:
            cycle = list(range(len(payloads)))
            rng.shuffle(cycle)
            order.extend(cycle)
        order = order[:total]

        def phase_of(offset: float) -> str:
            if kill_shard_at is None:
                return "steady"
            if offset < kill_shard_at:
                return "pre_kill"
            if restart_shard_at is None or offset < restart_shard_at:
                return "degraded"
            return "recovered"

        outcomes: list[tuple[float, float, dict | None, tuple | None, bool]] = []
        chaos_thread.start()
        with ThreadPoolExecutor(max_workers=workers) as pool:
            pending = []
            for position, payload_index in enumerate(order):
                target = start + position / rate
                delay = target - clock()
                if delay > 0:
                    time.sleep(delay)
                pending.append((target - start, pool.submit(one, payload_index)))
            for offset, future in pending:
                done_at, served, error, matched = future.result()
                outcomes.append((offset, done_at - start, served, error, matched))
        chaos_thread.join(timeout=30.0)

        # ---- per-phase aggregation ------------------------------------ #
        phase_names = (
            ("steady",)
            if kill_shard_at is None
            else ("pre_kill", "degraded", "recovered")
            if restart_shard_at is not None
            else ("pre_kill", "degraded")
        )
        tallies = {
            name: {
                "requests": 0,
                "errors": 0,
                "untyped_failures": 0,
                "byte_mismatches": 0,
                "recomputed": 0,
                "served": {tier: 0 for tier in _KNOWN_TIERS},
                "error_statuses": {},
            }
            for name in phase_names
        }
        for offset, latency, served, error, matched in outcomes:
            tally = tallies[phase_of(offset)]
            tally["requests"] += 1
            registry.observe(
                registry.histogram(f"soak_{phase_of(offset)}_seconds").name,
                max(0.0, latency - offset),
            )
            if error is not None:
                tally["errors"] += 1
                status, code = error
                if not matched:  # matched doubles as "typed" for failures
                    tally["untyped_failures"] += 1
                label = str(status) if status is not None else str(code)
                tally["error_statuses"][label] = tally["error_statuses"].get(label, 0) + 1
                continue
            if not matched:
                tally["byte_mismatches"] += 1
            tier = (served or {}).get("cached") or "computed"
            tally["served"][tier] = tally["served"].get(tier, 0) + 1
            if tier == "computed":
                tally["recomputed"] += 1

        phase_reports = []
        latency_by_phase: dict[str, dict] = {}
        for name in phase_names:
            summary = histogram_summary(
                registry.histogram(f"soak_{name}_seconds").snapshot()
            )
            latency = {
                key: None if summary[key] is None else round(summary[key] * 1e3, 2)
                for key in ("p50", "p95", "p99", "max")
            }
            latency_by_phase[name] = latency
            report = {"phase": name, "latency_ms": latency, **tallies[name]}
            if not report["error_statuses"]:
                del report["error_statuses"]
            phase_reports.append(report)

        baseline = latency_by_phase.get("pre_kill") or latency_by_phase.get("steady")
        degradation = {}
        for name in phase_names:
            if name in ("pre_kill", "steady"):
                continue
            ratios = {}
            for quantile in ("p50", "p99"):
                reference = (baseline or {}).get(quantile)
                observed = latency_by_phase[name].get(quantile)
                ratios[quantile] = (
                    round(observed / reference, 3)
                    if observed is not None and reference
                    else None
                )
            degradation[f"{name}_vs_baseline"] = ratios

        # ---- per-phase SLOs: the declarative form of the old gates ---- #
        from repro.telemetry.slo import DEFAULT_OBJECTIVES, evaluate_objectives, gate

        if kill_shard_at is None:
            phase_durations = {"steady": soak_seconds}
        else:
            phase_durations = {"pre_kill": kill_shard_at}
            if restart_shard_at is not None:
                phase_durations["degraded"] = restart_shard_at - kill_shard_at
                phase_durations["recovered"] = soak_seconds - restart_shard_at
            else:
                phase_durations["degraded"] = soak_seconds - kill_shard_at
        slo_phases = {}
        for name in phase_names:
            tally = tallies[name]
            # Each phase becomes a snapshot in the fleet schema: its error
            # counters plus its latency histogram under the objectives'
            # standard names, so evaluate_objectives needs no special case.
            phase_snapshot = {
                "counters": {
                    "requests_total": tally["requests"],
                    "errors_total": tally["errors"],
                },
                "histograms": {
                    "request_seconds": registry.histogram(
                        f"soak_{name}_seconds"
                    ).snapshot()
                },
            }
            slo_phases[name] = evaluate_objectives(
                DEFAULT_OBJECTIVES,
                phase_snapshot,
                window_seconds=phase_durations[name],
            )
        slo_section: dict[str, Any] = {"phases": slo_phases}
        if slo_max_burn is not None:
            slo_section["gate"] = gate(
                (row for rows in slo_phases.values() for row in rows),
                max_burn_rate=slo_max_burn,
            )
        # The router's own windowed view (fed by its probe-beat fleet
        # snapshots), next to the loadgen-side phase rows.
        slo_section["router_report"] = router.slo.report()

        # ---- fleet federation cross-check ----------------------------- #
        # The rollup the router serves must equal the merge of the
        # per-target scrapes it was built from: summing the per-target
        # counter columns of the fleet document reproduces the flat rollup
        # exactly (fixed bucket bounds make histogram merges exact too; the
        # integration tests cover those -- the soak spot-checks counters).
        fleet_section = None
        if router.federation is not None:
            fleet_document = router.federation.document(
                router._local_snapshot(), self_role="router"
            )
            fleet_targets = fleet_document.get("targets") or {}
            checked = {}
            for counter in ("requests_total", "errors_total", "spans_dropped"):
                rollup = fleet_document.get(counter, 0)
                summed = sum(
                    (entry.get("counters") or {}).get(counter, 0)
                    for entry in fleet_targets.values()
                )
                checked[counter] = {"rollup": rollup, "summed": summed}
            fleet_section = {
                "targets": sorted(fleet_targets),
                "rollup_matches_targets": all(
                    column["rollup"] == column["summed"] for column in checked.values()
                ),
                "counters": checked,
            }

        # ---- placement snapback: the victim owns its keys again ------- #
        placement_restored = None
        if restart_shard_at is not None and not chaos_errors:
            deadline = clock() + max(5.0, probe_interval_ms / 1000.0 * 50.0)
            while clock() < deadline:
                if victim not in router.health.excluded():
                    break
                time.sleep(probe_interval_ms / 1000.0 / 2.0)
            readmitted = victim not in router.health.excluded()
            post_kill_sets = {
                index: router.placement.replica_set(key)
                for index, key in enumerate(keys)
            }
            placement_restored = readmitted and post_kill_sets == pre_kill_sets
            if placement_restored:
                # One request for a victim-owned key must reach the victim
                # again -- placement on paper and placement in traffic agree.
                victim_keys = [i for i, owner in primaries.items() if owner == victim]
                if victim_keys:
                    before = servers[victim_index].registry["requests_total"]
                    _, served, error, matched = one(victim_keys[0])
                    after = servers[victim_index].registry["requests_total"]
                    placement_restored = (
                        error is None and matched and after > before
                    )

        counters = router_counters()
        record = {
            "seed": seed,
            "distinct": distinct,
            "shards": shards,
            "replication": replication,
            "rate_rps": rate,
            "workers": workers,
            "soak_seconds": soak_seconds,
            "kill_shard_at": kill_shard_at,
            "restart_shard_at": restart_shard_at,
            "replications": replications,
            "n_faults": n_faults,
            "victim": victim,
            "victim_primary_keys": owned[victim],
            "events": {**events, "chaos_errors": chaos_errors},
            "cold_mismatches": cold_mismatches,
            "replica_writes_after_warm": warm_writes,
            "phases": phase_reports,
            "latency_degradation": degradation,
            "slo": slo_section,
            "fleet": fleet_section,
            "placement_restored": placement_restored,
            "router": {
                name: counters[name]
                for name in (
                    "replica_writes",
                    "replica_write_failures",
                    "replica_read_fallbacks",
                    "failovers",
                    "shard_ejects",
                    "shard_readmits",
                    "health_merges",
                    "no_healthy_shards",
                )
            },
        }
        totals = {
            "requests": sum(t["requests"] for t in tallies.values()),
            "errors": sum(t["errors"] for t in tallies.values()),
            "untyped_failures": sum(t["untyped_failures"] for t in tallies.values()),
            "byte_mismatches": sum(t["byte_mismatches"] for t in tallies.values()),
            "recomputed_after_kill": sum(
                tallies[name]["recomputed"]
                for name in phase_names
                if name in ("degraded", "recovered")
            ),
            "degraded_recomputed": tallies.get("degraded", {}).get("recomputed", 0),
        }
        record["totals"] = totals
        return record
    finally:
        client.close()
        front.stop()
        for handle in handles:
            with suppress(RuntimeError):
                handle.stop()
