"""Deterministic open-loop load generator for the service and cluster tiers.

Drives a live endpoint (a single ``repro serve`` shard or a ``repro route``
router -- the wire protocol is identical) with a reproducible traffic
pattern and reports throughput and latency percentiles from the telemetry
histograms.

Three phases, matching how the cluster is exercised in practice:

* **cold** -- every distinct payload once; on a router this spreads across
  shards by batch-group digest, so it measures scale-out compute throughput;
* **warm** -- the same payloads again; every answer must come from a cache
  tier (router LRU, shard LRU/disk, or a peer via the remote tier), which
  the benchmark gate checks by diffing ``evaluations_computed``;
* **duplicates** -- a small payload subset repeated many times and issued
  concurrently, stressing request coalescing and the duplicate-race path.

**Open-loop** means arrivals follow a fixed schedule (``rate`` requests per
second) regardless of completions, and each latency is measured from the
request's *scheduled* arrival, not its actual send -- a slow server shows
up as growing latency instead of silently throttling the generator
(no coordinated omission).

Everything is derived from one integer seed via :class:`random.Random`:
same seed, same models, same schedule, same duplicate subset.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Mapping, Sequence

from repro.service.client import ServiceClient, ServiceError
from repro.telemetry.metrics import MetricsRegistry, histogram_summary

__all__ = ["LoadGenerator", "build_workload", "run_loadgen"]

#: ``served["cached"]`` values the service/router emit, plus ``None``
#: (freshly computed); anything new still gets counted, under its own name.
_KNOWN_TIERS = ("computed", "lru", "disk", "remote", "router")


def build_workload(
    seed: int,
    distinct: int = 16,
    *,
    n_faults: int = 40,
    replications: int = 2_000,
    method: str = "montecarlo",
) -> list[dict]:
    """``distinct`` evaluation payloads, reproducible from ``seed``.

    Each payload gets its own model (a fresh ``many-small-faults`` draw) and
    its own evaluation seed, so every payload lands in its own batch group
    -- the shard-parallel regime a router spreads across the ring.  Options
    are small on purpose: the generator measures serving behaviour, not
    kernel throughput.
    """
    from repro.experiments.scenarios import many_small_faults_scenario

    if distinct < 1:
        raise ValueError("build_workload needs distinct >= 1")
    rng = random.Random(seed)
    payloads = []
    for index in range(distinct):
        model_rng = rng.randrange(2**31)
        payloads.append(
            {
                "model": many_small_faults_scenario(n=n_faults, rng=model_rng),
                "method": method,
                "options": {"replications": replications},
                "seed": rng.randrange(2**31),
                "p_scale": round(rng.uniform(0.25, 1.0), 6),
            }
        )
    return payloads


def duplicate_schedule(
    seed: int, payloads: Sequence[Mapping[str, Any]], factor: int = 4
) -> list[Mapping[str, Any]]:
    """The duplicate-heavy phase: a quarter of the payloads, ``factor`` times
    each, in a deterministic shuffle (derived from ``seed``, offset so it
    never mirrors the workload draw)."""
    rng = random.Random(f"{seed}:duplicates")
    subset = list(payloads[: max(1, len(payloads) // 4)])
    schedule = [item for item in subset for _ in range(max(1, factor))]
    rng.shuffle(schedule)
    return schedule


class LoadGenerator:
    """Open-loop traffic against one endpoint, phase by phase.

    The generator owns a :class:`~repro.telemetry.metrics.MetricsRegistry`;
    each phase records into its own ``loadgen_<phase>_seconds`` histogram,
    and the phase report derives p50/p95/p99 from that snapshot via
    :func:`~repro.telemetry.metrics.histogram_summary`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8760,
        *,
        rate: float = 50.0,
        workers: int = 8,
        timeout: float = 120.0,
        registry: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive (requests per second)")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.rate = float(rate)
        self.workers = int(workers)
        self.registry = registry if registry is not None else MetricsRegistry()
        self._clock = clock
        self.client = ServiceClient(
            host=host, port=port, timeout=timeout, retries=0
        )

    def _one(self, item: Mapping[str, Any]) -> tuple[float, dict | None, int | None]:
        """Issue one request; returns ``(done_at, served, error_status)``."""
        try:
            _, served = self.client.evaluate_detail(
                item["model"],
                item["method"],
                options=item.get("options"),
                seed=item.get("seed"),
                p_scale=item.get("p_scale", 1.0),
                q_scale=item.get("q_scale", 1.0),
            )
        except ServiceError as error:
            return self._clock(), None, error.status
        return self._clock(), served, None

    def run_phase(self, name: str, schedule: Sequence[Mapping[str, Any]]) -> dict:
        """Run one phase over ``schedule`` and return its report."""
        if not schedule:
            raise ValueError(f"phase {name!r} has an empty schedule")
        histogram = self.registry.histogram(f"loadgen_{name}_seconds")
        served_counts = {tier: 0 for tier in _KNOWN_TIERS}
        errors = 0
        statuses: dict[int, int] = {}
        outcomes: list[tuple[float, float, dict | None, int | None]] = []
        start = self._clock()
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            pending = []
            for index, item in enumerate(schedule):
                target = start + index / self.rate
                delay = target - self._clock()
                if delay > 0:
                    time.sleep(delay)
                pending.append((target, pool.submit(self._one, item)))
            for target, future in pending:
                done_at, served, status = future.result()
                outcomes.append((target, done_at, served, status))
        finished = max(done for _, done, _, _ in outcomes)
        for target, done_at, served, status in outcomes:
            self.registry.observe(histogram.name, max(0.0, done_at - target))
            if status is not None:
                errors += 1
                statuses[status] = statuses.get(status, 0) + 1
                continue
            tier = (served or {}).get("cached") or "computed"
            served_counts[tier] = served_counts.get(tier, 0) + 1
        elapsed = max(finished - start, 1e-9)
        summary = histogram_summary(histogram.snapshot())
        report = {
            "phase": name,
            "requests": len(schedule),
            "errors": errors,
            "offered_rate_rps": round(self.rate, 1),
            "seconds": round(elapsed, 4),
            "throughput_rps": round(len(schedule) / elapsed, 1),
            "latency_ms": {
                key: None if summary[key] is None else round(summary[key] * 1e3, 2)
                for key in ("p50", "p95", "p99", "max")
            },
            "served": served_counts,
        }
        if statuses:
            report["error_statuses"] = {str(code): count for code, count in sorted(statuses.items())}
        return report

    def close(self) -> None:
        self.client.close()


def run_loadgen(
    host: str = "127.0.0.1",
    port: int = 8760,
    *,
    seed: int = 0,
    distinct: int = 16,
    duplicate_factor: int = 4,
    rate: float = 50.0,
    workers: int = 8,
    replications: int = 2_000,
    n_faults: int = 40,
    phases: Sequence[str] = ("cold", "warm", "duplicates"),
) -> dict:
    """The standard cold/warm/duplicate-heavy run against one endpoint.

    Returns a JSON-safe record: one report per phase plus the workload
    parameters, so two runs with the same seed are comparable line by line.
    """
    payloads = build_workload(
        seed, distinct, n_faults=n_faults, replications=replications
    )
    schedules = {
        "cold": list(payloads),
        "warm": list(payloads),
        "duplicates": duplicate_schedule(seed, payloads, duplicate_factor),
    }
    unknown = [phase for phase in phases if phase not in schedules]
    if unknown:
        raise ValueError(f"unknown phases {unknown}; choose from {sorted(schedules)}")
    generator = LoadGenerator(host, port, rate=rate, workers=workers)
    try:
        reports = [generator.run_phase(phase, schedules[phase]) for phase in phases]
    finally:
        generator.close()
    return {
        "seed": seed,
        "distinct": distinct,
        "duplicate_factor": duplicate_factor,
        "rate_rps": rate,
        "workers": workers,
        "replications": replications,
        "n_faults": n_faults,
        "phases": reports,
    }
