"""Shard health state: ejection, cooldowns and readmission.

The router never mutates its hash ring; it tracks *exclusions* here and
passes them to ring lookups, so a shard's key range spills to its clockwise
neighbour while it is out and snaps back exactly on readmission.

Two ejection flavours, matching how shards fail:

* **until-probe** (``cooldown=None``): the shard refused or dropped a
  connection -- it stays excluded until a ``/healthz`` probe succeeds and
  the router calls :meth:`readmit`;
* **cooldown** (``cooldown=seconds``): the shard answered 429/503
  (saturated or draining) -- it is excluded for the given window (the
  server's ``Retry-After`` when sent) and readmits itself when the window
  lapses, no probe required.  Saturation is expected to clear on its own;
  a probe would read a healthy ``/healthz`` immediately anyway.

The clock is injectable so rebalance tests can eject, advance time and
observe readmission deterministically.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Sequence

__all__ = ["ShardHealth"]


class ShardHealth:
    """Exclusion bookkeeping for a fixed shard set (single event loop)."""

    def __init__(
        self, shards: Sequence[str], clock: Callable[[], float] = time.monotonic
    ) -> None:
        self.shards = tuple(str(shard) for shard in shards)
        self._clock = clock
        #: shard -> moment its exclusion lapses (math.inf = until readmit()).
        self._ejected_until: dict[str, float] = {}
        self.ejections = 0
        self.readmissions = 0

    def eject(self, shard: str, cooldown: float | None = None) -> None:
        """Exclude ``shard``: until :meth:`readmit` (``None``) or for ``cooldown`` s."""
        if shard not in self.shards:
            raise ValueError(f"unknown shard {shard!r}")
        until = math.inf if cooldown is None else self._clock() + cooldown
        # An until-probe ejection must not be shortened by a later cooldown
        # ejection racing in: keep the furthest deadline.
        previous = self._ejected_until.get(shard, -math.inf)
        if until > previous:
            self._ejected_until[shard] = until
        if previous < self._clock():
            self.ejections += 1

    def readmit(self, shard: str) -> bool:
        """Clear ``shard``'s exclusion (a probe succeeded); True if it was out."""
        was_out = self.is_excluded(shard)
        self._ejected_until.pop(shard, None)
        if was_out:
            self.readmissions += 1
        return was_out

    def is_excluded(self, shard: str) -> bool:
        return self._ejected_until.get(shard, -math.inf) > self._clock()

    def excluded(self) -> frozenset[str]:
        """The currently excluded shards; lapsed cooldowns readmit lazily."""
        now = self._clock()
        lapsed = [
            shard for shard, until in self._ejected_until.items() if until <= now
        ]
        for shard in lapsed:
            self._ejected_until.pop(shard, None)
            self.readmissions += 1
        return frozenset(self._ejected_until)

    def needs_probe(self) -> list[str]:
        """Shards ejected until-probe: only a live ``/healthz`` readmits them."""
        return [
            shard
            for shard, until in self._ejected_until.items()
            if math.isinf(until)
        ]

    def snapshot(self) -> dict:
        """Per-shard state for the router's ``/healthz`` body."""
        excluded = self.excluded()
        return {
            shard: {"healthy": shard not in excluded, "ejected": shard in excluded}
            for shard in self.shards
        }
