"""Shard health state: ejection, cooldowns, readmission -- and sharing it.

The router never mutates its hash ring; it tracks *exclusions* here and
passes them to ring lookups, so a shard's key range spills to its clockwise
neighbour while it is out and snaps back exactly on readmission.

Two ejection flavours, matching how shards fail:

* **until-probe** (``cooldown=None``): the shard refused or dropped a
  connection -- it stays excluded until a ``/healthz`` probe succeeds and
  the router calls :meth:`readmit`;
* **cooldown** (``cooldown=seconds``): the shard answered 429/503
  (saturated or draining) -- it is excluded for the given window (the
  server's ``Retry-After`` when sent) and readmits itself when the window
  lapses, no probe required.  Saturation is expected to clear on its own;
  a probe would read a healthy ``/healthz`` immediately anyway.

:class:`HealthView` is *shareable*: every local state change is stamped
with the clock, :meth:`HealthView.export` serialises the eject/readmit
table (the router's ``GET /v1/health/peers`` body) and
:meth:`HealthView.merge` folds in a peer router's export with
last-writer-wins on the stamp -- whichever router observed a shard most
recently decides its state, so N stateless routers behind one ring agree
on ejections within one probe interval.  The default clock is ``time.time``
(stamps must be comparable *across* router processes; cooldown windows are
exported as remaining seconds and re-anchored on the receiving clock, so
modest clock skew only shifts a cooldown, never corrupts it).

The clock is injectable so rebalance and merge tests can eject, advance
time and observe convergence deterministically.  ``ShardHealth`` remains as
a compatibility alias.

:class:`ProbeSchedule` staggers ``/healthz`` probes: each shard gets a
deterministic offset within the probe interval (derived from its name's
SHA-256, nothing random), so a router -- and every router and restart,
since the offset is a pure function of the shard name and interval --
spreads its probes across the interval instead of stampeding all shards
at once.
"""

from __future__ import annotations

import hashlib
import math
import time
from typing import Callable, Mapping, Sequence

__all__ = ["HealthView", "ProbeSchedule", "ShardHealth", "probe_offset"]


class HealthView:
    """Exclusion bookkeeping for a fixed shard set (single event loop)."""

    def __init__(
        self, shards: Sequence[str], clock: Callable[[], float] = time.time
    ) -> None:
        self.shards = tuple(str(shard) for shard in shards)
        self._clock = clock
        #: shard -> moment its exclusion lapses (math.inf = until readmit()).
        self._ejected_until: dict[str, float] = {}
        #: shard -> stamp of the last local observation or adopted peer
        #: entry; the last-writer-wins key for :meth:`merge`.
        self._updated: dict[str, float] = {}
        self.ejections = 0
        self.readmissions = 0

    def eject(self, shard: str, cooldown: float | None = None) -> None:
        """Exclude ``shard``: until :meth:`readmit` (``None``) or for ``cooldown`` s."""
        if shard not in self.shards:
            raise ValueError(f"unknown shard {shard!r}")
        until = math.inf if cooldown is None else self._clock() + cooldown
        # An until-probe ejection must not be shortened by a later cooldown
        # ejection racing in: keep the furthest deadline.
        previous = self._ejected_until.get(shard, -math.inf)
        if until > previous:
            self._ejected_until[shard] = until
        if previous < self._clock():
            self.ejections += 1
        self._updated[shard] = self._clock()

    def readmit(self, shard: str) -> bool:
        """Clear ``shard``'s exclusion (a probe succeeded); True if it was out."""
        was_out = self.is_excluded(shard)
        self._ejected_until.pop(shard, None)
        if was_out:
            self.readmissions += 1
        self._updated[shard] = self._clock()
        return was_out

    def touch(self, shard: str) -> None:
        """Stamp ``shard`` as observed now, state unchanged.

        The router calls this when a probe confirms what the view already
        believed (a healthy shard read healthy): the observation carries no
        transition, but its *recency* is what last-writer-wins merging
        trades on.
        """
        self._updated[shard] = self._clock()

    def is_excluded(self, shard: str) -> bool:
        return self._ejected_until.get(shard, -math.inf) > self._clock()

    def excluded(self) -> frozenset[str]:
        """The currently excluded shards; lapsed cooldowns readmit lazily."""
        now = self._clock()
        lapsed = [
            shard for shard, until in self._ejected_until.items() if until <= now
        ]
        for shard in lapsed:
            self._ejected_until.pop(shard, None)
            self.readmissions += 1
            self._updated[shard] = now
        return frozenset(self._ejected_until)

    def needs_probe(self) -> list[str]:
        """Shards ejected until-probe: only a live ``/healthz`` readmits them."""
        return [
            shard
            for shard, until in self._ejected_until.items()
            if math.isinf(until)
        ]

    # ----------------------------------------------------------------- #
    # The shared view: serialise and merge
    # ----------------------------------------------------------------- #
    def export(self) -> dict:
        """The eject/readmit table, JSON-safe: the ``/v1/health/peers`` body.

        Cooldown deadlines travel as *remaining* seconds -- the receiver
        re-anchors them on its own clock -- and ``math.inf`` (until-probe)
        travels as the ``until_probe`` flag, so the wire format has no
        non-finite floats.
        """
        now = self._clock()
        view: dict[str, dict] = {}
        for shard in self.shards:
            until = self._ejected_until.get(shard)
            ejected = until is not None and until > now
            entry: dict = {
                "ejected": ejected,
                "updated": self._updated.get(shard, 0.0),
            }
            if ejected:
                entry["until_probe"] = math.isinf(until)
                entry["cooldown_remaining"] = (
                    None if math.isinf(until) else max(0.0, until - now)
                )
            view[shard] = entry
        return view

    def merge(self, view: Mapping[str, Mapping]) -> int:
        """Fold a peer's :meth:`export` in, last-writer-wins on the stamp.

        Returns the number of *state-changing* adoptions (a newer peer stamp
        whose healthy/ejected verdict differed from the local one) -- the
        router's ``health_merges`` increment.  Newer stamps with the same
        verdict are adopted silently (they keep a three-router chain's
        recency honest); unknown shards and malformed entries are ignored,
        so merging a foreign or empty view is a no-op.
        """
        adopted = 0
        for shard, entry in view.items():
            if shard not in self.shards or not isinstance(entry, Mapping):
                continue
            updated = entry.get("updated")
            if not isinstance(updated, (int, float)) or isinstance(updated, bool):
                continue
            if updated <= self._updated.get(shard, 0.0):
                continue
            was_excluded = self.is_excluded(shard)
            ejected = bool(entry.get("ejected"))
            if ejected:
                if entry.get("until_probe"):
                    self._ejected_until[shard] = math.inf
                else:
                    remaining = entry.get("cooldown_remaining")
                    if not isinstance(remaining, (int, float)) or remaining < 0.0:
                        remaining = 0.0
                    self._ejected_until[shard] = self._clock() + float(remaining)
            else:
                self._ejected_until.pop(shard, None)
            self._updated[shard] = float(updated)
            if self.is_excluded(shard) != was_excluded:
                adopted += 1
        return adopted

    def snapshot(self) -> dict:
        """Per-shard state for the router's ``/healthz`` body."""
        excluded = self.excluded()
        return {
            shard: {"healthy": shard not in excluded, "ejected": shard in excluded}
            for shard in self.shards
        }

    def ages(self) -> dict[str, float | None]:
        """Seconds since each shard was last observed; ``None`` when never.

        The staleness column of fleet views: a shard whose age keeps
        growing past the probe interval is one the prober cannot reach
        (dashboards show it next to the last scrape age, which tracks the
        metrics path rather than the health path).
        """
        now = self._clock()
        return {
            shard: (
                round(now - self._updated[shard], 6)
                if shard in self._updated
                else None
            )
            for shard in self.shards
        }


#: Compatibility alias: PR-8 code and tests constructed ``ShardHealth``.
ShardHealth = HealthView


def probe_offset(shard: str, interval: float) -> float:
    """``shard``'s deterministic probe stagger in ``[0, interval)``.

    A pure function of the shard name and the interval (SHA-256, no
    process state), so every router -- and every restart of one -- places a
    given shard's probe at the same phase, while distinct shards spread
    uniformly across the interval.
    """
    numerator = int.from_bytes(
        hashlib.sha256(f"probe:{shard}".encode("utf-8")).digest()[:8], "big"
    )
    return (numerator / 2.0**64) * interval


class ProbeSchedule:
    """When each shard's next ``/healthz`` probe is due.

    Each shard fires every ``interval`` seconds at its :func:`probe_offset`
    phase.  :meth:`due` returns (and reschedules) the shards whose deadline
    has passed; a schedule that fell behind -- the event loop stalled --
    skips the missed beats instead of bursting to catch up.
    """

    def __init__(
        self,
        shards: Sequence[str],
        interval: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval <= 0.0:
            raise ValueError(f"probe interval must be positive, got {interval}")
        self.interval = float(interval)
        self._clock = clock
        now = clock()
        self._next = {
            str(shard): now + probe_offset(str(shard), self.interval)
            for shard in shards
        }

    def due(self) -> list[str]:
        """Shards whose probe deadline has passed, rescheduled one interval out."""
        now = self._clock()
        ready = sorted(
            (deadline, shard)
            for shard, deadline in self._next.items()
            if deadline <= now
        )
        for deadline, shard in ready:
            following = deadline + self.interval
            if following <= now:  # fell behind: resume phase-shifted, no burst
                following = now + self.interval
            self._next[shard] = following
        return [shard for _, shard in ready]

    def seconds_until_next(self) -> float:
        """How long until the earliest deadline (0.0 when one already passed)."""
        return max(0.0, min(self._next.values()) - self._clock())
