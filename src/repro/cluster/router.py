"""The shard router behind ``repro route``: one address over many shards.

Terminates the exact service protocol (:mod:`repro.service.http` framing,
same endpoints, same error bodies) and forwards each request to a backend
``repro serve`` shard:

* ``POST /v1/evaluate`` routes by consistent hash of the request's
  **batch-group digest** (:meth:`ServiceRequest.group_key`), so all
  groupmates of a batch land on the same shard and its micro-batcher still
  coalesces them into one kernel call.  The original body bytes are
  forwarded untouched -- the router parses only to validate and route --
  so shard-side digests, and therefore cache keys and results, are
  byte-identical to a direct call;
* ``POST /v1/evaluate/batch`` fans out per-shard: elements are grouped by
  their own route key, each sub-batch ships with its elements' original
  positions as ``stream_indices`` (keeping every ``(seed, index)`` random
  stream, and so every byte of every result, identical to the unsplit
  call), and responses reassemble in request order;
* a router-side **read-through LRU** answers repeat ``/v1/evaluate``
  traffic without a hop (``served.cached == "router"``; ``lru_size=0``
  disables it -- soak harnesses do, so cache behaviour under failure is
  the *shards'* behaviour, not the router's);
* **R-way replication** (``--replication R``): each key's home set is the
  first R shards of the ring's candidate walk
  (:class:`~repro.cluster.ring.ReplicatedPlacement`).  Writes are
  **write-all** -- a freshly computed result is asynchronously ``PUT`` to
  the other replicas' ``/v1/cache/<digest>`` surface (``replica_writes``,
  failpoint ``router.replica_write``) -- and reads are **read-any**: the
  forward walk's fallback shard is exactly the next replica, which already
  holds the warm entry, so a shard death loses no warm cache
  (``replica_read_fallbacks`` counts requests a non-primary answered);
* a **shared health view**: the eject/readmit table is served over
  ``GET /v1/health/peers`` and, when peer routers are configured
  (``--peer-router``), fetched and merged last-writer-wins once per probe
  interval (``health_merges``), so N stateless routers behind one ring
  agree on ejections within one probe interval.

Failover: an unreachable shard is ejected until a ``/healthz`` probe
succeeds; a saturated one (429/503) is ejected for the server's
``Retry-After`` (or one probe interval) and readmits itself.  Probes are
staggered per shard (:class:`~repro.cluster.health.ProbeSchedule`, failpoint
``health.probe``) so routers don't hit every shard in lockstep.  Ejected
shards' key ranges spill to the next ring candidate; when every candidate
is out, the last upstream 429/503 propagates -- ``Retry-After`` included --
so the client's typed-retry machinery keeps working through the router.
Per-hop retries reuse :class:`repro.service.client.BackoffPolicy`, and
``x-repro-trace-id`` propagates end to end.

The router is also the fleet's **observability plane**:

* **metrics federation** (``federate=True``): each successful ``/healthz``
  probe is followed by a ``/metrics?format=prom`` scrape, parsed back into
  snapshot form and folded into a :class:`MetricsFederation`; peer routers
  are scraped on the merge cadence.  ``GET /metrics?scope=fleet`` serves
  the exact roll-up (JSON or Prometheus text) -- the merged view a single
  registry would have held, plus a per-target table;
* a **trace collector** behind ``POST /v1/traces``: shards and their pool
  workers ship span batches here (:mod:`repro.telemetry.collector`), so
  one routed request's router->shard->worker tree lands in one place;
* an **SLO engine** fed a fleet snapshot once per probe interval, serving
  error-budget and burn-rate reports at ``GET /v1/slo``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import sys
import time
from typing import Any, Sequence

from repro import faults, telemetry
from repro.cluster.health import HealthView, ProbeSchedule
from repro.cluster.ring import (
    ConsistentHashRing,
    ReplicatedPlacement,
    parse_shard_specs,
)
from repro.cluster.transport import ShardTransport
from repro.grouping import evaluation_payload, group_digest
from repro.service.cache import ResponseCache
from repro.service.client import BackoffPolicy, _parse_retry_after
from repro.service.http import read_request, write_response
from repro.service.protocol import (
    parse_batch_payload,
    parse_evaluate_payload,
)
from repro.telemetry.collector import TraceCollector
from repro.telemetry.federation import MetricsFederation
from repro.telemetry.metrics import (
    MetricsRegistry,
    histogram_summary,
    parse_prometheus,
    render_prometheus,
)
from repro.telemetry.slo import DEFAULT_OBJECTIVES, SLOEngine

__all__ = ["ShardRouter"]

_COUNTER_NAMES = (
    "requests_total",
    "errors_total",
    "routed_requests",
    "fanout_requests",
    "fanout_subrequests",
    "router_cache_hits",
    "failovers",
    "shard_ejects",
    "shard_readmits",
    "hop_retries",
    "no_healthy_shards",
    "replica_writes",
    "replica_write_failures",
    "replica_read_fallbacks",
    "health_merges",
    "fleet_scrapes",
    "fleet_scrape_failures",
    "trace_batches_received",
    "trace_events_received",
    "trace_events_rejected",
)


class ShardRouter:
    """Route service traffic across ``repro serve`` shards.

    Parameters
    ----------
    shards:
        Backend base URLs (``host:port`` or ``http://host:port``), one per
        ``repro serve`` instance, optionally weighted as
        ``host:port@WEIGHT``.  At least one; names must be unique.
    replicas:
        Virtual nodes per weight-1.0 shard on the hash ring.
    replication:
        Replica-set size R: each key's computed results fan out to its
        first R candidate shards, reads fall through the same order.
        1 (the default) is PR-8 behaviour -- no fan-out.
    probe_interval_ms:
        How often each shard is probed via ``/healthz`` (also the
        saturation cooldown when a shard sends no ``Retry-After``, and the
        peer-view merge cadence).
    lru_size:
        Router-side read-through cache capacity (entries); 0 disables the
        router cache entirely.
    retries:
        Full ring walks to attempt per request beyond the first, with
        :class:`BackoffPolicy` delays between walks.
    timeout:
        Per-hop budget in seconds for forwarded requests.
    peer_routers:
        Other routers' base URLs; their ``GET /v1/health/peers`` views are
        merged (last-writer-wins) once per probe interval.
    federate:
        Scrape shard (and peer-router) metrics on the probe schedule and
        serve ``/metrics?scope=fleet``.  Off, the fleet scope answers 400
        and probing is exactly PR-8 behaviour (the overhead benchmark's
        baseline).
    collector:
        The :class:`TraceCollector` behind ``POST /v1/traces``; a bounded
        in-memory one is created when omitted (pass one with a ``path`` to
        persist shipped spans to a JSONL file).
    slo_objectives:
        Objectives for the ``/v1/slo`` report; defaults to
        :data:`repro.telemetry.slo.DEFAULT_OBJECTIVES`.
    """

    def __init__(
        self,
        shards: Sequence[str],
        *,
        replicas: int = 64,
        replication: int = 1,
        probe_interval_ms: float = 500.0,
        lru_size: int = 1024,
        retries: int = 2,
        timeout: float = 120.0,
        backoff: BackoffPolicy | None = None,
        peer_routers: Sequence[str] = (),
        federate: bool = True,
        collector: TraceCollector | None = None,
        slo_objectives=None,
    ) -> None:
        if probe_interval_ms <= 0.0:
            raise ValueError(f"probe_interval_ms must be positive, got {probe_interval_ms}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if lru_size < 0:
            raise ValueError(f"lru_size must be >= 0 (0 disables), got {lru_size}")
        names, weights = parse_shard_specs(shards)
        self.ring = ConsistentHashRing(names, replicas=replicas, weights=weights)
        self.placement = ReplicatedPlacement(self.ring, replication)
        self.health = HealthView(self.ring.shards)
        self.transports = {
            shard: ShardTransport(shard, timeout=timeout) for shard in self.ring.shards
        }
        self.peer_routers = tuple(str(peer) for peer in peer_routers)
        self.peer_transports = {
            peer: ShardTransport(peer, timeout=timeout) for peer in self.peer_routers
        }
        self.probe_interval = probe_interval_ms / 1000.0
        self.probe_timeout = min(2.0, max(0.25, self.probe_interval * 4.0))
        self.retries = retries
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.cache = ResponseCache(max_entries=lru_size) if lru_size > 0 else None
        self.registry = MetricsRegistry()
        self.registry.register_counters(_COUNTER_NAMES)
        self.registry.histogram("request_seconds")
        self.registry.histogram("hop_seconds")
        self.metrics = self.registry
        self.federation = MetricsFederation() if federate else None
        self.collector = collector if collector is not None else TraceCollector()
        self.slo = SLOEngine(slo_objectives or DEFAULT_OBJECTIVES)
        self._started = time.time()
        self._probe_task: asyncio.Task | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._replica_tasks: set[asyncio.Task] = set()

    # ----------------------------------------------------------------- #
    # Health probing
    # ----------------------------------------------------------------- #
    async def _probe_shard(self, shard: str) -> None:
        """Probe one shard: readmit it if recovered, eject it if newly dead.

        Cooldown (saturation) ejections are deliberately *not* cut short by
        a healthy probe -- ``/healthz`` bypasses admission control, so a
        saturated shard reads healthy while still rejecting work.  The
        ``health.probe`` failpoint fires before the wire call; an injected
        error reads as a failed probe, so chaos runs can blind the prober.
        """
        awaiting_probe = shard in self.health.needs_probe()
        try:
            faults.hit("health.probe")
            response = await self.transports[shard].request(
                "GET", "/healthz", timeout=self.probe_timeout
            )
            alive = response.status == 200
        except (ConnectionError, OSError, asyncio.TimeoutError, faults.FaultInjected):
            alive = False
        if alive and awaiting_probe:
            if self.health.readmit(shard):
                self.registry.inc("shard_readmits")
        elif not alive and not self.health.is_excluded(shard):
            self.health.eject(shard)
            self.registry.inc("shard_ejects")
        elif alive:
            # No transition, but a fresh observation: recency is what the
            # peer-view merge's last-writer-wins trades on.
            self.health.touch(shard)
        if alive and self.federation is not None:
            await self._scrape_target(shard, self.transports[shard], role="shard")

    async def _scrape_target(
        self, target: str, transport: ShardTransport, *, role: str
    ) -> None:
        """Scrape one target's ``/metrics?format=prom`` into the federation.

        A failed scrape leaves the previous (stale) entry in place --
        scrapes are snapshots of monotonic state, so old is merely old --
        and counts ``fleet_scrape_failures``; it never affects health.
        """
        try:
            response = await transport.request(
                "GET", "/metrics?format=prom", timeout=self.probe_timeout
            )
            if response.status != 200:
                raise ValueError(f"scrape returned {response.status}")
            snapshot = parse_prometheus(response.body.decode("utf-8"))
        except (ConnectionError, OSError, asyncio.TimeoutError, ValueError, UnicodeDecodeError):
            self.registry.inc("fleet_scrape_failures")
            return
        self.federation.update(target, snapshot, role=role)
        self.registry.inc("fleet_scrapes")

    async def _scrape_peers(self) -> None:
        for peer, transport in self.peer_transports.items():
            await self._scrape_target(peer, transport, role="router")

    async def _probe_once(self) -> None:
        """One full pass over every shard, then the peer views (tests, CI)."""
        for shard in self.ring.shards:
            await self._probe_shard(shard)
        await self._merge_peer_views()
        if self.federation is not None:
            await self._scrape_peers()
        self.slo.observe(self._fleet_snapshot())

    async def _merge_peer_views(self) -> None:
        """Fold each peer router's ``/v1/health/peers`` export into ours.

        An unreachable peer is skipped, not ejected -- peers are not
        shards, and our own probes still converge the view within one
        interval; the merge only *accelerates* agreement.
        """
        for peer, transport in self.peer_transports.items():
            try:
                response = await transport.request(
                    "GET", "/v1/health/peers", timeout=self.probe_timeout
                )
            except (ConnectionError, OSError, asyncio.TimeoutError):
                continue
            data = response.json()
            if response.status != 200 or not isinstance(data, dict):
                continue
            view = data.get("view")
            if isinstance(view, dict):
                adopted = self.health.merge(view)
                if adopted:
                    self.registry.inc("health_merges", adopted)

    async def _probe_loop(self) -> None:
        schedule = ProbeSchedule(self.ring.shards, self.probe_interval)
        # One "beat" per probe interval for the cluster-wide chores: peer
        # view merges, peer-router scrapes, and the SLO engine's sample.
        next_beat = time.monotonic() + self.probe_interval
        while True:
            delay = min(
                schedule.seconds_until_next(),
                max(0.0, next_beat - time.monotonic()),
            )
            await asyncio.sleep(delay)
            try:
                for shard in schedule.due():
                    await self._probe_shard(shard)
                if time.monotonic() >= next_beat:
                    if self.peer_transports:
                        await self._merge_peer_views()
                        if self.federation is not None:
                            await self._scrape_peers()
                    self.slo.observe(self._fleet_snapshot())
                    next_beat = time.monotonic() + self.probe_interval
            except asyncio.CancelledError:
                raise
            except Exception as error:  # noqa: BLE001 - probing must not die
                print(f"router probe pass failed: {error}", file=sys.stderr, flush=True)

    # ----------------------------------------------------------------- #
    # Forwarding with failover
    # ----------------------------------------------------------------- #
    async def _forward(
        self, key: str, verb: str, path: str, body: bytes
    ) -> tuple[int, Any, dict, str | None]:
        """Send one request to ``key``'s shard, spilling across the ring.

        Returns ``(status, parsed_json, response_headers, shard)`` where
        ``shard`` is the one that answered (``None`` when none did).
        Non-retryable shard responses (400s, 500s) propagate as-is -- the
        shard answered; the router adds nothing.  429/503 eject the shard
        for its ``Retry-After`` (or one probe interval) and spill to the
        next candidate; connection failures eject until a probe succeeds.
        The spill order *is* the replica order, so under replication the
        first fallback already holds the key's warm entries
        (``replica_read_fallbacks`` counts answers from a non-primary).
        When every candidate is out, the ring walk repeats up to
        ``retries`` times with backoff, then the last upstream 429/503 (or
        a router 503 ``no_healthy_shards``) comes back.
        """
        trace_id = telemetry.current_trace_id()
        headers = {"x-repro-trace-id": trace_id} if trace_id else {}
        # The enclosing router.request span becomes the shard-side root's
        # parent, so the stitched trace is one tree, not two forests.
        parent_span = telemetry.current_span_id()
        if parent_span:
            headers["x-repro-parent-span"] = parent_span
        last_retryable: tuple[int, Any, dict] | None = None
        attempt = 0
        candidates = self.ring.candidates(key)
        primary = candidates[0]
        while True:
            excluded = set(self.health.excluded())
            for shard in candidates:
                if shard in excluded:
                    continue
                hop_from = time.perf_counter()
                try:
                    response = await self.transports[shard].request(
                        verb, path, body, headers
                    )
                except (ConnectionError, OSError, asyncio.TimeoutError):
                    # The shard is unreachable: out until a probe sees it
                    # alive, its key range spills to the next candidate.
                    self.health.eject(shard)
                    self.registry.inc("shard_ejects")
                    self.registry.inc("failovers")
                    excluded.add(shard)
                    continue
                finally:
                    self.registry.observe(
                        "hop_seconds", time.perf_counter() - hop_from
                    )
                if response.status in (429, 503):
                    retry_after = _parse_retry_after(
                        response.headers.get("retry-after")
                    )
                    cooldown = (
                        retry_after if retry_after is not None else self.probe_interval
                    )
                    self.health.eject(shard, cooldown)
                    self.registry.inc("shard_ejects")
                    self.registry.inc("failovers")
                    excluded.add(shard)
                    last_retryable = (
                        response.status,
                        response.json(),
                        response.headers,
                    )
                    continue
                data = response.json()
                if data is None and response.body:
                    # Garbage where JSON should be: treat like a dead shard.
                    self.health.eject(shard)
                    self.registry.inc("shard_ejects")
                    self.registry.inc("failovers")
                    excluded.add(shard)
                    continue
                if shard != primary:
                    self.registry.inc("replica_read_fallbacks")
                return response.status, data, response.headers, shard
            if attempt >= self.retries:
                break
            self.registry.inc("hop_retries")
            retry_after = None
            if last_retryable is not None:
                retry_after = _parse_retry_after(last_retryable[2].get("retry-after"))
            await asyncio.sleep(self.backoff.delay(attempt, retry_after))
            attempt += 1
        if last_retryable is not None:
            status, data, response_headers = last_retryable
            if not isinstance(data, dict):
                data = {
                    "error": "every shard is saturated or draining",
                    "code": "saturated",
                }
            return status, data, response_headers, None
        self.registry.inc("no_healthy_shards")
        return (
            503,
            {"error": "no healthy shards for this key", "code": "no_healthy_shards"},
            {"retry-after": "1"},
            None,
        )

    @staticmethod
    def _retry_extra(status: int, response_headers: dict) -> dict:
        """``Retry-After`` propagated to the client for retryable statuses."""
        if status not in (429, 503):
            return {}
        value = response_headers.get("retry-after")
        return {"Retry-After": value if value else "1"}

    # ----------------------------------------------------------------- #
    # Write-all replication fan-out
    # ----------------------------------------------------------------- #
    def _spawn_replica_writes(
        self, key: str, digest: str, payload: dict, record: dict, source: str
    ) -> None:
        """Asynchronously push a freshly computed result to the other replicas.

        The entry is study-shaped -- digest, canonical payload, metrics --
        so the receiving shard's ``PUT /v1/cache/<digest>`` fills its LRU
        (``record_from_entry`` rebuilds the wire record from the payload),
        not just its disk tier.  The computing shard already holds the
        entry; known-ejected replicas are skipped (a probe readmits them
        before they could answer reads anyway).  Fire-and-forget: replica
        writes never add latency to the response that triggered them.
        """
        targets = [
            shard
            for shard in self.placement.replica_set(key)
            if shard != source and not self.health.is_excluded(shard)
        ]
        if not targets:
            return
        entry = json.dumps(
            {"digest": digest, "payload": payload, "metrics": record.get("metrics", {})}
        ).encode("utf-8")
        task = asyncio.get_running_loop().create_task(
            self._write_replicas(digest, entry, targets)
        )
        self._replica_tasks.add(task)
        task.add_done_callback(self._replica_tasks.discard)

    async def _write_replicas(
        self, digest: str, entry: bytes, targets: Sequence[str]
    ) -> None:
        for shard in targets:
            try:
                faults.hit("router.replica_write")
                response = await self.transports[shard].request(
                    "PUT",
                    f"/v1/cache/{digest}",
                    entry,
                    timeout=min(10.0, self.transports[shard].timeout),
                )
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - best-effort: reads still failover
                self.registry.inc("replica_write_failures")
                continue
            if response.status == 200:
                self.registry.inc("replica_writes")
            else:
                self.registry.inc("replica_write_failures")

    # ----------------------------------------------------------------- #
    # Endpoints
    # ----------------------------------------------------------------- #
    async def _route_evaluate(self, body: bytes) -> tuple[int, dict, dict]:
        try:
            payload = json.loads(body or b"null")
        except json.JSONDecodeError as error:
            return (
                400,
                {"error": f"request body is not valid JSON: {error}", "code": "bad_request"},
                {},
            )
        try:
            request = parse_evaluate_payload(payload)
        except ValueError as error:
            # Invalid requests die here with the shard's exact error text;
            # nothing malformed crosses a hop.
            return 400, {"error": str(error), "code": "bad_request"}, {}
        digest = request.digest()
        record = self.cache.get_local(digest) if self.cache is not None else None
        if record is not None:
            self.registry.inc("router_cache_hits")
            return (
                200,
                {
                    "result": record,
                    "served": {"cached": "router", "batched": False, "group_size": 0},
                },
                {},
            )
        self.registry.inc("routed_requests")
        # Forward the ORIGINAL bytes: the shard re-derives the same digest
        # from the same payload, so caching and results are exactly those of
        # a direct call.
        key = request.group_key()
        status, data, response_headers, shard = await self._forward(
            key, "POST", "/v1/evaluate", bytes(body)
        )
        if status == 200 and isinstance(data, dict) and isinstance(data.get("result"), dict):
            if self.cache is not None:
                self.cache.put_local(digest, data["result"])
            served = data.get("served")
            # Write-all: only *freshly computed* results fan out -- a cache
            # tier answering means every surviving replica was already
            # warmed when the entry was first computed.
            computed = isinstance(served, dict) and served.get("cached") is None
            if computed and shard is not None and self.placement.replication > 1:
                self._spawn_replica_writes(
                    key, digest, request.payload(), data["result"], source=shard
                )
        if not isinstance(data, dict):
            data = {"error": "shard returned an empty response", "code": "bad_gateway"}
            status = 502
        return status, data, self._retry_extra(status, response_headers)

    def _batch_route_key(self, model_data: dict, method: str, options: dict) -> str:
        """The ring key of one batch element: its batch-group identity.

        Entropy is left out (batch streams derive from positions, which
        must not affect placement), transforms are neutral -- elements of
        one method+options family stay together, distinct families spread.
        """
        return group_digest(
            evaluation_payload({"model": model_data}, {}, method, options, None)
        )

    async def _route_batch(self, body: bytes) -> tuple[int, dict, dict]:
        try:
            payload = json.loads(body or b"null")
        except json.JSONDecodeError as error:
            return (
                400,
                {"error": f"request body is not valid JSON: {error}", "code": "bad_request"},
                {},
            )
        try:
            model_data, requests, seed, stream_indices = parse_batch_payload(payload)
        except ValueError as error:
            return 400, {"error": str(error), "code": "bad_request"}, {}
        self.registry.inc("fanout_requests")
        positions = (
            stream_indices
            if stream_indices is not None
            else list(range(len(requests)))
        )
        # Group element positions by their owner shard's *key* (not the
        # shard itself: _forward re-resolves owners per sub-batch, so a
        # mid-flight ejection spills the whole sub-batch consistently).
        groups: dict[str, list[int]] = {}
        keys = [
            self._batch_route_key(model_data, method, options)
            for method, options in requests
        ]
        owner_keys: dict[str, str] = {}
        for index, key in enumerate(keys):
            owner = self.ring.candidates(key)[0]
            owner_keys.setdefault(owner, key)
            groups.setdefault(owner, []).append(index)
        timeout_ms = payload.get("timeout_ms")

        async def send(owner: str, members: list[int]) -> tuple[int, Any, dict, str | None]:
            sub: dict[str, Any] = {
                "model": model_data,
                "requests": [
                    {"method": requests[i][0], **requests[i][1]} for i in members
                ],
                "seed": seed,
                "stream_indices": [positions[i] for i in members],
            }
            if timeout_ms is not None:
                sub["timeout_ms"] = timeout_ms
            self.registry.inc("fanout_subrequests")
            return await self._forward(
                owner_keys[owner],
                "POST",
                "/v1/evaluate/batch",
                json.dumps(sub).encode("utf-8"),
            )
        members_by_owner = list(groups.items())
        outcomes = await asyncio.gather(
            *(send(owner, members) for owner, members in members_by_owner)
        )
        records: list[Any] = [None] * len(requests)
        for (owner, members), (status, data, response_headers, _shard) in zip(
            members_by_owner, outcomes
        ):
            if status != 200 or not isinstance(data, dict) or "results" not in data:
                # One failed sub-batch fails the whole request, typed: a
                # partial batch response would be a new protocol.
                if not isinstance(data, dict):
                    data = {
                        "error": "shard returned an empty response",
                        "code": "bad_gateway",
                    }
                    status = 502
                return status, data, self._retry_extra(status, response_headers)
            for index, record in zip(members, data["results"]):
                records[index] = record
        return (
            200,
            {
                "results": records,
                "served": {
                    "cached": None,
                    "requests": len(requests),
                    "shards": len(members_by_owner),
                },
            },
            {},
        )

    def _local_snapshot(self) -> dict:
        """Refresh the operational gauges and cut one registry snapshot."""
        self.registry.set_gauge("uptime_seconds", round(time.time() - self._started, 3))
        self.registry.set_gauge("shards", len(self.ring.shards))
        self.registry.set_gauge(
            "healthy_shards", len(self.ring.shards) - len(self.health.excluded())
        )
        self.registry.set_gauge("replication", self.placement.replication)
        self.registry.set_gauge(
            "lru_entries", len(self.cache) if self.cache is not None else 0
        )
        telemetry.set_process_gauges(self.registry)
        return self.registry.snapshot()

    def _fleet_snapshot(self) -> dict:
        """The roll-up the SLO engine and fleet endpoints evaluate."""
        local = self._local_snapshot()
        if self.federation is None:
            return local
        return self.federation.fleet_snapshot(local)

    def _serve_metrics(self) -> dict:
        snapshot = self._local_snapshot()
        body: dict[str, Any] = {**snapshot["counters"], **snapshot["gauges"]}
        body["histograms"] = {
            name: histogram_summary(data)
            for name, data in snapshot["histograms"].items()
        }
        return body

    def _serve_metrics_prometheus(self) -> str:
        return render_prometheus(self._local_snapshot())

    def _serve_metrics_fleet(self) -> dict:
        document = self.federation.document(self._local_snapshot())
        health = self.health.snapshot()
        ages = self.health.ages()
        for target, entry in document["targets"].items():
            if target in health:
                entry["healthy"] = health[target]["healthy"]
                entry["observed_age_seconds"] = ages.get(target)
        return document

    def _serve_metrics_fleet_prometheus(self) -> str:
        return self.federation.prometheus(self._local_snapshot())

    def _serve_slo(self) -> dict:
        """The ``/v1/slo`` body; samples on demand so the report is fresh."""
        self.slo.observe(self._fleet_snapshot())
        return {"role": "router", **self.slo.report()}

    def _serve_health(self) -> dict:
        ages = self.health.ages()
        shards = self.health.snapshot()
        for shard, entry in shards.items():
            entry["observed_age_seconds"] = ages.get(shard)
        return {
            "status": "ok",
            "role": "router",
            "uptime_seconds": round(time.time() - self._started, 3),
            "replication": self.placement.replication,
            "shards": shards,
        }

    def _serve_health_peers(self) -> dict:
        """The shared health view (``GET /v1/health/peers``).

        Peer routers merge the ``view`` table last-writer-wins; the same
        envelope shape is served by shards (with an empty view), so the
        surface is uniform across roles.
        """
        return {
            "role": "router",
            "updated": round(time.time(), 6),
            "view": self.health.export(),
        }

    async def _route(
        self, verb: str, path: str, body: bytes, query: str = ""
    ) -> tuple[int, dict | str, dict]:
        try:
            if path == "/healthz" and verb == "GET":
                return 200, self._serve_health(), {}
            if path == "/v1/health/peers" and verb == "GET":
                return 200, self._serve_health_peers(), {}
            if path == "/metrics" and verb == "GET":
                from urllib.parse import parse_qs

                params = parse_qs(query)
                wanted = params.get("format", ["json"])[-1]
                scope = params.get("scope", ["local"])[-1]
                if wanted not in ("json", "prom"):
                    return (
                        400,
                        {
                            "error": f"unknown metrics format {wanted!r}; use 'json' or 'prom'",
                            "code": "bad_request",
                        },
                        {},
                    )
                if scope not in ("local", "fleet"):
                    return (
                        400,
                        {
                            "error": f"unknown metrics scope {scope!r}; use 'local' or 'fleet'",
                            "code": "bad_request",
                        },
                        {},
                    )
                if scope == "fleet":
                    if self.federation is None:
                        return (
                            400,
                            {
                                "error": "metrics federation is disabled on this router",
                                "code": "federation_disabled",
                            },
                            {},
                        )
                    if wanted == "prom":
                        return 200, self._serve_metrics_fleet_prometheus(), {}
                    return 200, self._serve_metrics_fleet(), {}
                if wanted == "prom":
                    return 200, self._serve_metrics_prometheus(), {}
                return 200, self._serve_metrics(), {}
            if path == "/v1/traces" and verb == "POST":
                try:
                    payload = json.loads(body or b"null")
                except json.JSONDecodeError as error:
                    return (
                        400,
                        {
                            "error": f"trace payload is not valid JSON: {error}",
                            "code": "bad_request",
                        },
                        {},
                    )
                try:
                    accepted, rejected = self.collector.ingest(payload)
                except ValueError as error:
                    return 400, {"error": str(error), "code": "bad_request"}, {}
                self.registry.inc("trace_batches_received")
                self.registry.inc("trace_events_received", accepted)
                if rejected:
                    self.registry.inc("trace_events_rejected", rejected)
                return 200, {"accepted": accepted, "rejected": rejected}, {}
            if path == "/v1/slo" and verb == "GET":
                return 200, self._serve_slo(), {}
            if path == "/v1/methods" and verb == "GET":
                status, data, response_headers, _shard = await self._forward(
                    "/v1/methods", "GET", "/v1/methods", b""
                )
                if not isinstance(data, dict):
                    data = {"error": "shard returned an empty response", "code": "bad_gateway"}
                    status = 502
                return status, data, self._retry_extra(status, response_headers)
            if path == "/v1/evaluate" and verb == "POST":
                return await self._route_evaluate(body)
            if path == "/v1/evaluate/batch" and verb == "POST":
                return await self._route_batch(body)
            known = {
                "/healthz",
                "/metrics",
                "/v1/methods",
                "/v1/evaluate",
                "/v1/evaluate/batch",
                "/v1/health/peers",
                "/v1/traces",
                "/v1/slo",
            }
            if path in known:
                return (
                    405,
                    {"error": f"wrong verb {verb} for {path}", "code": "method_not_allowed"},
                    {},
                )
            return 404, {"error": f"unknown path {path!r}", "code": "not_found"}, {}
        except Exception as error:  # noqa: BLE001 - the router must not die
            return (
                500,
                {
                    "error": f"routing failed: {type(error).__name__}: {error}",
                    "code": "routing_failed",
                },
                {},
            )

    # ----------------------------------------------------------------- #
    # HTTP front (same framing as the shard server)
    # ----------------------------------------------------------------- #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                request = await read_request(reader)
                if request is None:
                    break
                if request.error is not None:
                    status, message = request.error
                    await write_response(writer, status, {"error": message}, True)
                    break
                self.registry.inc("requests_total")
                headers = request.headers or {}
                trace_id = headers.get("x-repro-trace-id") or telemetry.new_trace_id()
                trace_token = telemetry.set_trace_id(trace_id)
                handled_from = time.perf_counter()
                try:
                    with telemetry.span(
                        "router.request",
                        trace_id=trace_id,
                        path=request.path,
                        verb=request.verb,
                    ) as request_span:
                        status, payload, extra_headers = await self._route(
                            request.verb, request.path, request.body, request.query
                        )
                        request_span.set(status=status)
                finally:
                    trace_token.var.reset(trace_token)
                self.registry.observe(
                    "request_seconds",
                    time.perf_counter() - handled_from,
                    trace_id=trace_id,
                )
                if status >= 400:
                    self.registry.inc("errors_total")
                    if isinstance(payload, dict) and "error" in payload:
                        payload.setdefault("trace_id", trace_id)
                extra_headers = {**(extra_headers or {}), "x-repro-trace-id": trace_id}
                await write_response(
                    writer, status, payload, request.close, extra_headers
                )
                if request.close:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-request
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # ----------------------------------------------------------------- #
    # Lifecycle (duck-compatible with service.server.start_in_background)
    # ----------------------------------------------------------------- #
    async def start(self, host: str = "127.0.0.1", port: int = 8100) -> asyncio.AbstractServer:
        """Bind, start the probe loop and begin accepting connections."""
        self._started = time.time()
        self._probe_task = asyncio.get_running_loop().create_task(self._probe_loop())
        return await asyncio.start_server(self._handle_connection, host=host, port=port)

    async def serve_forever(self, host: str = "127.0.0.1", port: int = 8100) -> None:
        """Run until cancelled (the ``repro route`` main loop)."""
        server = await self.start(host, port)
        addr = server.sockets[0].getsockname()
        print(
            f"repro shard router listening on http://{addr[0]}:{addr[1]} "
            f"({len(self.ring.shards)} shard(s))",
            flush=True,
        )
        try:
            async with server:
                await server.serve_forever()
        finally:
            await self.aclose()

    async def aclose(self) -> None:
        """Stop probing, close client and pooled shard connections."""
        if self._probe_task is not None:
            self._probe_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._probe_task
            self._probe_task = None
        # In-flight replica writes are best-effort by contract: cancel them
        # rather than hold shutdown on a dead replica's timeout.
        for task in list(self._replica_tasks):
            task.cancel()
        if self._replica_tasks:
            await asyncio.gather(*self._replica_tasks, return_exceptions=True)
            self._replica_tasks.clear()
        # Close kept-alive client connections so parked handler tasks end
        # via EOF, not cancellation (same shutdown contract as the server).
        for writer in list(self._connections):
            writer.close()
        deadline = asyncio.get_running_loop().time() + 1.0
        while self._connections and asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.01)
        for transport in self.transports.values():
            await transport.aclose()
        for transport in self.peer_transports.values():
            await transport.aclose()
        self.collector.close()
