"""The cluster layer: scale the evaluation service past one process.

A dependency-free scale-out tier over :mod:`repro.service`:

* :mod:`~repro.cluster.ring` -- consistent hashing with virtual nodes:
  batch-group digests map to shards, groupmates stay together, ejection
  spills a key range to the next shard without rehashing anything else;
* :mod:`~repro.cluster.health` -- ejection/readmission state: dead shards
  stay out until a ``/healthz`` probe succeeds, saturated ones (429/503)
  sit out a ``Retry-After``-sized cooldown; the view serialises over
  ``GET /v1/health/peers`` and merges peer routers' views last-writer-wins,
  and :class:`~repro.cluster.health.ProbeSchedule` staggers probes per
  shard deterministically;
* :mod:`~repro.cluster.transport` -- keep-alive asyncio connections to
  each shard, reconnect-on-stale;
* :mod:`~repro.cluster.router` -- :class:`ShardRouter` behind
  ``repro route``: terminates the service protocol, routes ``/v1/evaluate``
  by batch-group digest, fans ``/v1/evaluate/batch`` out per shard with
  order-preserving reassembly, carries a read-through LRU, replicates
  computed results write-all/read-any across each key's R-shard replica
  set (:class:`~repro.cluster.ring.ReplicatedPlacement`), and propagates
  ``x-repro-trace-id`` and ``Retry-After`` end to end;
* :mod:`~repro.cluster.loadgen` -- the deterministic open-loop load
  generator behind ``repro loadgen`` and the cluster benchmark gate.

Shards share a cache tier among themselves (``repro serve --cache-peer``):
on a local LRU + disk miss a shard asks its peers' ``GET /v1/cache/<digest>``
surface, so a shard warmed by studies or earlier traffic answers for a cold
one (see :mod:`repro.service.cache`).

The router embeds exactly like the server::

    from repro.cluster import ShardRouter
    from repro.service.server import start_in_background

    handle = start_in_background(ShardRouter(["127.0.0.1:8001", "127.0.0.1:8002"]))
"""

from repro.cluster.health import HealthView, ProbeSchedule, ShardHealth
from repro.cluster.ring import ConsistentHashRing, ReplicatedPlacement
from repro.cluster.router import ShardRouter
from repro.cluster.transport import ShardTransport

__all__ = [
    "ConsistentHashRing",
    "HealthView",
    "ProbeSchedule",
    "ReplicatedPlacement",
    "ShardHealth",
    "ShardRouter",
    "ShardTransport",
]
