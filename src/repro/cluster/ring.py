"""The consistent-hash ring that assigns batch groups to shards.

Each shard contributes ``replicas`` virtual nodes -- SHA-256 points derived
from ``"{shard}#{i}"`` -- interleaved around a 64-bit ring, so load spreads
evenly even with two or three shards and adding a shard moves only ~1/N of
the key space.  Keys are the service's batch-group digests
(:func:`repro.grouping.group_digest`): every groupmate of a batch hashes to
the same key, lands on the same shard, and still coalesces in that shard's
micro-batcher.

Failover is a property of *lookup*, not of ring mutation: the ring always
holds every configured shard, and :meth:`ConsistentHashRing.owner` takes an
exclusion set -- an ejected shard's key range spills to the next distinct
shard clockwise, and readmission restores the original assignment exactly
(no rehash, no key churn for unaffected shards).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable, Sequence

__all__ = ["ConsistentHashRing"]


def _point(label: str) -> int:
    """A 64-bit ring position from a label's SHA-256."""
    return int.from_bytes(hashlib.sha256(label.encode("utf-8")).digest()[:8], "big")


class ConsistentHashRing:
    """Virtual-node consistent hashing over a fixed shard set."""

    def __init__(self, shards: Sequence[str], replicas: int = 64) -> None:
        names = [str(shard) for shard in shards]
        if not names:
            raise ValueError("a hash ring needs at least one shard")
        if len(set(names)) != len(names):
            raise ValueError(f"shard names must be unique, got {names}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.shards = tuple(names)
        self.replicas = replicas
        points = sorted(
            (_point(f"{shard}#{index}"), shard)
            for shard in names
            for index in range(replicas)
        )
        self._points = points
        self._positions = [position for position, _ in points]

    def candidates(self, key: str) -> list[str]:
        """Every shard, in ring order starting at ``key``'s position.

        The first element is the key's owner; each subsequent element is the
        next *distinct* shard clockwise -- the spill order when owners are
        ejected.  Deterministic for a given ring and key.
        """
        start = bisect_right(self._positions, _point(key)) % len(self._points)
        seen: list[str] = []
        for offset in range(len(self._points)):
            shard = self._points[(start + offset) % len(self._points)][1]
            if shard not in seen:
                seen.append(shard)
                if len(seen) == len(self.shards):
                    break
        return seen

    def owner(self, key: str, excluded: Iterable[str] = ()) -> str | None:
        """The shard owning ``key``, skipping ``excluded``; ``None`` if all are."""
        skip = set(excluded)
        for shard in self.candidates(key):
            if shard not in skip:
                return shard
        return None
