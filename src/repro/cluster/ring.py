"""The consistent-hash ring that assigns batch groups to shards.

Each shard contributes virtual nodes -- SHA-256 points derived from
``"{shard}#{i}"`` -- interleaved around a 64-bit ring, so load spreads
evenly even with two or three shards and adding a shard moves only ~1/N of
the key space.  Keys are the service's batch-group digests
(:func:`repro.grouping.group_digest`): every groupmate of a batch hashes to
the same key, lands on the same shard, and still coalesces in that shard's
micro-batcher.

Heterogeneous shards get **weights**: a shard with weight ``w`` contributes
``round(replicas * w)`` virtual nodes (at least one), so a box with twice
the cores can own twice the key space.  The CLI spelling is
``--shard HOST:PORT@WEIGHT`` (:func:`parse_shard_specs`).  Weight 1.0 --
the default -- contributes exactly ``replicas`` nodes with exactly the
seed-era labels, so an unweighted ring is byte-identical to every ring
built before weights existed (pinned in ``tests/test_digest_stability.py``).

Failover is a property of *lookup*, not of ring mutation: the ring always
holds every configured shard, and :meth:`ConsistentHashRing.owner` takes an
exclusion set -- an ejected shard's key range spills to the next distinct
shard clockwise, and readmission restores the original assignment exactly
(no rehash, no key churn for unaffected shards).
:class:`ReplicatedPlacement` builds on the same walk: a key's replica set
is the first R distinct shards of :meth:`ConsistentHashRing.candidates`,
so ejecting a shard *outside* a key's replica set never moves that key,
and ejecting a member falls through to the next candidate -- the read-any/
write-all placement the router uses.
"""

from __future__ import annotations

import hashlib
import math
from bisect import bisect_right
from typing import Iterable, Mapping, Sequence

__all__ = ["ConsistentHashRing", "ReplicatedPlacement", "parse_shard_specs"]


def _point(label: str) -> int:
    """A 64-bit ring position from a label's SHA-256."""
    return int.from_bytes(hashlib.sha256(label.encode("utf-8")).digest()[:8], "big")


def parse_shard_specs(
    specs: Sequence[str],
) -> tuple[list[str], dict[str, float] | None]:
    """Split ``HOST:PORT@WEIGHT`` spellings into names and a weight table.

    Returns ``(names, weights)`` where ``weights`` is ``None`` when no spec
    carried a weight -- the unweighted ring constructor path, kept distinct
    so equal-weight rings stay byte-identical to pre-weight rings.  A spec
    without ``@`` gets weight 1.0 when any other spec is weighted.
    """
    names: list[str] = []
    weights: dict[str, float] = {}
    weighted = False
    for spec in specs:
        name, separator, raw = str(spec).rpartition("@")
        if not separator:
            names.append(str(spec))
            weights[str(spec)] = 1.0
            continue
        try:
            weight = float(raw)
        except ValueError:
            raise ValueError(
                f"shard spec {spec!r}: weight {raw!r} is not a number"
            ) from None
        if not math.isfinite(weight) or weight <= 0.0:
            raise ValueError(
                f"shard spec {spec!r}: weight must be a positive finite number"
            )
        if not name:
            raise ValueError(f"shard spec {spec!r} has no host")
        names.append(name)
        weights[name] = weight
        weighted = True
    return names, (weights if weighted else None)


class ConsistentHashRing:
    """Virtual-node consistent hashing over a fixed shard set."""

    def __init__(
        self,
        shards: Sequence[str],
        replicas: int = 64,
        weights: Mapping[str, float] | Sequence[float] | None = None,
    ) -> None:
        names = [str(shard) for shard in shards]
        if not names:
            raise ValueError("a hash ring needs at least one shard")
        if len(set(names)) != len(names):
            raise ValueError(f"shard names must be unique, got {names}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.shards = tuple(names)
        self.replicas = replicas
        self.weights = self._resolve_weights(names, weights)
        points = sorted(
            (_point(f"{shard}#{index}"), shard)
            for shard in names
            for index in range(self.node_count(shard))
        )
        self._points = points
        self._positions = [position for position, _ in points]

    @staticmethod
    def _resolve_weights(
        names: Sequence[str], weights: Mapping[str, float] | Sequence[float] | None
    ) -> dict[str, float]:
        if weights is None:
            return {name: 1.0 for name in names}
        if isinstance(weights, Mapping):
            unknown = set(weights) - set(names)
            if unknown:
                raise ValueError(f"weights name unknown shards: {sorted(unknown)}")
            table = {name: float(weights.get(name, 1.0)) for name in names}
        else:
            values = list(weights)
            if len(values) != len(names):
                raise ValueError(
                    f"got {len(values)} weights for {len(names)} shards"
                )
            table = {name: float(value) for name, value in zip(names, values)}
        for name, weight in table.items():
            if not math.isfinite(weight) or weight <= 0.0:
                raise ValueError(
                    f"shard {name!r}: weight must be a positive finite number, got {weight}"
                )
        return table

    def node_count(self, shard: str) -> int:
        """Virtual nodes ``shard`` contributes: ``round(replicas * weight)``, >= 1.

        Weight 1.0 is exactly ``replicas`` nodes with the seed-era labels
        ``"{shard}#{0..replicas-1}"`` -- the byte-identity contract for
        unweighted and equal-weight rings.
        """
        return max(1, round(self.replicas * self.weights[shard]))

    def candidates(self, key: str) -> list[str]:
        """Every shard, in ring order starting at ``key``'s position.

        The first element is the key's owner; each subsequent element is the
        next *distinct* shard clockwise -- the spill order when owners are
        ejected, and the replica order under :class:`ReplicatedPlacement`.
        Deterministic for a given ring and key.
        """
        start = bisect_right(self._positions, _point(key)) % len(self._points)
        seen: list[str] = []
        for offset in range(len(self._points)):
            shard = self._points[(start + offset) % len(self._points)][1]
            if shard not in seen:
                seen.append(shard)
                if len(seen) == len(self.shards):
                    break
        return seen

    def owner(self, key: str, excluded: Iterable[str] = ()) -> str | None:
        """The shard owning ``key``, skipping ``excluded``; ``None`` if all are."""
        skip = set(excluded)
        for shard in self.candidates(key):
            if shard not in skip:
                return shard
        return None


class ReplicatedPlacement:
    """R-way placement over the ring's candidate walk.

    A key's **home set** is the first ``replication`` distinct shards of
    :meth:`ConsistentHashRing.candidates` -- a pure function of the ring, so
    it never changes while the shard set stands.  Lookups take the same
    exclusion set the ring does: an ejected member is skipped and the next
    candidate takes its slot (read-any failover), an ejected non-member
    changes nothing (the stability property the hypothesis suite pins), and
    readmission snaps the set back exactly.
    """

    def __init__(self, ring: ConsistentHashRing, replication: int = 1) -> None:
        if not 1 <= replication <= len(ring.shards):
            raise ValueError(
                f"replication must be in 1..{len(ring.shards)} "
                f"(the shard count), got {replication}"
            )
        self.ring = ring
        self.replication = replication

    def replica_set(self, key: str, excluded: Iterable[str] = ()) -> list[str]:
        """The first R healthy shards for ``key``, in candidate order.

        Shorter than R when exclusions leave fewer healthy shards; empty
        when every shard is excluded.
        """
        skip = set(excluded)
        members: list[str] = []
        for shard in self.ring.candidates(key):
            if shard in skip:
                continue
            members.append(shard)
            if len(members) == self.replication:
                break
        return members

    def primary(self, key: str, excluded: Iterable[str] = ()) -> str | None:
        """The first healthy replica -- where reads land first."""
        members = self.replica_set(key, excluded)
        return members[0] if members else None
