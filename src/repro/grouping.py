"""Shared evaluation identity and batch grouping.

Two subsystems dispatch families of related evaluations through the batched
kernels: the study runner (:mod:`repro.studies.runner`) groups cache-miss
sweep points, and the evaluation service (:mod:`repro.service`) groups
concurrently in-flight requests.  Both need the same two notions, extracted
here so they cannot drift:

* the **canonical evaluation payload** -- the JSON object whose SHA-256
  digest (:func:`repro.cache.payload_digest`) is an evaluation's identity:
  base model content, resolved model-level parameters, the method with its
  canonical resolved options, and the seed entropy (``None`` for
  deterministic methods).  Equal payloads mean byte-equal cache keys no
  matter which surface produced them;
* the **batch group** of a payload -- the payload with the batchable model
  transforms (``p_scale``, ``q_scale``) replaced by their neutral defaults.
  Evaluations that differ only in those transforms share a group and can be
  dispatched as *one* batched-kernel call (one stacked convolution, one
  shared demand stream); everything else -- base model, other parameters,
  options, seed -- stays in the group key, so group identity is as
  content-addressed as the evaluation digests themselves.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.cache import CACHE_FORMAT_VERSION, payload_digest

__all__ = [
    "MODEL_TRANSFORM_DEFAULTS",
    "MODEL_TRANSFORM_PARAMS",
    "evaluation_payload",
    "group_digest",
    "group_payload",
]

#: Parameters applied to the resolved model rather than to its construction,
#: with the neutral default each is equivalent to when absent.  These are the
#: *batchable axes*: evaluations differing only here can share one batched
#: kernel call (see :func:`repro.api.evaluate.evaluate_sweep`).
MODEL_TRANSFORM_DEFAULTS = {"p_scale": 1.0, "q_scale": 1.0}
MODEL_TRANSFORM_PARAMS = tuple(MODEL_TRANSFORM_DEFAULTS)


def evaluation_payload(
    base: Mapping[str, Any],
    params: Mapping[str, Any],
    method: str,
    resolved_options: Mapping[str, Any],
    entropy,
) -> dict:
    """The canonical content payload of one evaluation.

    Parameters
    ----------
    base:
        The base model description: ``{"scenario": name}`` or ``{"model":
        FaultModel.to_dict()}``.
    params:
        Model-level parameters with every default materialised (scenario
        factory arguments plus the ``p_scale`` / ``q_scale`` transforms) --
        a value spelled out explicitly must hash the same as the implicit
        default, so callers fold defaults in before building the payload.
    method:
        Registered method name.
    resolved_options:
        The registry's canonical resolved options (every default filled in).
    entropy:
        The seed identity for stochastic methods, ``None`` for deterministic
        ones -- deterministic entries thereby survive seed changes.  Studies
        pass the study seed (an integer); the service passes the request's
        seed entropy (a list), so a study entry computed from a
        digest-derived stream can never shadow a service entry computed from
        the seed directly.
    """
    return {
        "cache": CACHE_FORMAT_VERSION,
        "base": dict(base),
        "params": {**MODEL_TRANSFORM_DEFAULTS, **dict(params)},
        "method": {"name": method, **dict(resolved_options)},
        "entropy": entropy,
    }


def group_payload(payload: Mapping[str, Any]) -> dict:
    """``payload`` with the batchable transforms replaced by their neutral values."""
    params = dict(payload["params"])
    params.update(MODEL_TRANSFORM_DEFAULTS)
    return {**dict(payload), "params": params}


def group_digest(payload: Mapping[str, Any]) -> str:
    """Content digest of a payload's *batch group*.

    Evaluations that differ only in the batchable model transforms share a
    group digest; everything else in the payload stays in the key.
    """
    return payload_digest(group_payload(payload))
