"""Pre-release testing as a concrete process-improvement mechanism.

A *testing campaign* executes ``t`` test demands, drawn from the operational
profile, against each developed version before release.  Under the
fault-creation model a fault ``i`` present in the version is detected by at
least one test demand with probability ``1 - (1 - e_i q_i)^t``, where ``e_i``
is the campaign's per-demand *detection effectiveness* for that fault
(1 means every demand hitting the region exposes the fault and the failure is
recognised; lower values model imperfect oracles or regions only partially
covered by the test profile).  Detected faults are removed, so the
probability that fault ``i`` survives into the released version becomes::

    p_i' = p_i * (1 - e_i q_i)^t        (imperfect repair can be modelled too)

This is exactly the kind of *non-proportional* improvement the paper's
Section 4.2.1 / Appendix A warns about: testing preferentially removes faults
with large failure regions, so as testing effort grows the released versions
become dominated by small, hard-to-find faults -- reliability improves, but
the gain from diversity may first grow and then shrink (or vice versa),
rather than improving monotonically.  Reference [13] of the paper reports the
analogous observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.fault_model import FaultModel
from repro.core.moments import r_version_mean
from repro.core.no_common_faults import risk_ratio
from repro.core.normal_approximation import bound_gain_ratio

__all__ = ["TestingCampaign", "TestingTrajectory"]


@dataclass(frozen=True)
class TestingCampaign:
    """A pre-release testing campaign applied independently to every version.

    Parameters
    ----------
    model:
        The fault-creation model describing the versions *before* testing.
    effectiveness:
        Per-fault, per-demand detection effectiveness ``e_i`` in ``[0, 1]``.
        A scalar applies the same effectiveness to every fault; the default 1.0
        means any test demand falling in a failure region reveals the fault.
    repair_probability:
        Probability that a detected fault is actually (and correctly) removed.
        The default 1.0 is perfect repair; lower values model partial fixes,
        one of the ingredients of the paper's notion of a "mistake of the
        whole development process".
    """

    model: FaultModel
    effectiveness: np.ndarray | float = 1.0
    repair_probability: float = 1.0

    def __post_init__(self) -> None:
        effectiveness = np.asarray(self.effectiveness, dtype=float)
        if effectiveness.ndim == 0:
            effectiveness = np.full(self.model.n, float(effectiveness))
        if effectiveness.shape != (self.model.n,):
            raise ValueError(
                f"effectiveness must be a scalar or a vector of length {self.model.n}, "
                f"got shape {effectiveness.shape}"
            )
        if np.any((effectiveness < 0.0) | (effectiveness > 1.0)):
            raise ValueError("effectiveness values must lie in [0, 1]")
        if not 0.0 <= self.repair_probability <= 1.0:
            raise ValueError(
                f"repair_probability must be in [0, 1], got {self.repair_probability}"
            )
        object.__setattr__(self, "effectiveness", effectiveness)

    # ------------------------------------------------------------------ #
    # The transformation of the fault model
    # ------------------------------------------------------------------ #
    def detection_probability(self, test_demands: int) -> np.ndarray:
        """Probability that each fault, if present, is detected by the campaign."""
        if test_demands < 0:
            raise ValueError(f"test_demands must be non-negative, got {test_demands}")
        per_demand_miss = 1.0 - self.effectiveness * self.model.q
        return 1.0 - per_demand_miss**test_demands

    def survival_probability(self, test_demands: int) -> np.ndarray:
        """Probability that each fault, if present, survives testing (and repair)."""
        detected_and_fixed = self.detection_probability(test_demands) * self.repair_probability
        return 1.0 - detected_and_fixed

    def released_model(self, test_demands: int) -> FaultModel:
        """The fault-creation model of the *released* versions after testing.

        Every ``p_i`` is multiplied by the fault's survival probability; the
        failure regions themselves (the ``q_i``) are unchanged, because testing
        removes faults rather than shrinking their regions.
        """
        released_p = self.model.p * self.survival_probability(test_demands)
        return FaultModel(
            p=released_p, q=self.model.q.copy(), names=self.model.names, strict=self.model.strict
        )

    # ------------------------------------------------------------------ #
    # Trajectories of reliability and diversity gain versus testing effort
    # ------------------------------------------------------------------ #
    def trajectory(self, test_demand_schedule: Sequence[int], k_factor: float = 2.33) -> "TestingTrajectory":
        """Evaluate reliability and gain measures over a schedule of testing efforts.

        Parameters
        ----------
        test_demand_schedule:
            Increasing sequence of testing efforts (numbers of test demands).
        k_factor:
            ``k`` used for the Section 5 bound-ratio gain measure.
        """
        schedule = [int(value) for value in test_demand_schedule]
        if not schedule:
            raise ValueError("test_demand_schedule must not be empty")
        if any(value < 0 for value in schedule):
            raise ValueError("testing efforts must be non-negative")
        single_means, pair_means, risk_ratios, bound_ratios = [], [], [], []
        for effort in schedule:
            released = self.released_model(effort)
            single_means.append(r_version_mean(released, 1))
            pair_means.append(r_version_mean(released, 2))
            risk_ratios.append(risk_ratio(released))
            bound_ratios.append(bound_gain_ratio(released, k_factor))
        return TestingTrajectory(
            test_demands=np.asarray(schedule, dtype=int),
            single_version_means=np.asarray(single_means),
            system_means=np.asarray(pair_means),
            risk_ratios=np.asarray(risk_ratios),
            bound_ratios=np.asarray(bound_ratios),
        )


@dataclass(frozen=True)
class TestingTrajectory:
    """Reliability and diversity-gain measures as functions of testing effort."""

    test_demands: np.ndarray
    single_version_means: np.ndarray
    system_means: np.ndarray
    risk_ratios: np.ndarray
    bound_ratios: np.ndarray

    def reliability_always_improves(self, atol: float = 1e-15) -> bool:
        """True when more testing never increases the single-version mean PFD."""
        return bool(np.all(np.diff(self.single_version_means) <= atol))

    def gain_is_monotone(self, atol: float = 1e-12) -> bool:
        """True when the eq. (10) gain never decreases as testing effort grows.

        The interesting (and, per Appendix A / reference [13], common) case is
        ``False``: testing improves reliability while the relative advantage of
        the 1-out-of-2 configuration eventually shrinks.
        """
        return bool(np.all(np.diff(self.risk_ratios) <= atol))

    def rows(self) -> list[dict]:
        """One summary dictionary per testing effort, for tabular reporting."""
        return [
            {
                "test_demands": int(self.test_demands[index]),
                "single_mean_pfd": float(self.single_version_means[index]),
                "system_mean_pfd": float(self.system_means[index]),
                "risk_ratio": float(self.risk_ratios[index]),
                "bound_ratio": float(self.bound_ratios[index]),
            }
            for index in range(self.test_demands.size)
        ]
