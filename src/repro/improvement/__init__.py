"""Process-improvement mechanisms acting on the fault model.

Section 4.2 of the paper studies process improvement abstractly, as changes to
the ``p_i`` parameters; Section 4.2.3 notes that "a similar observation on the
effect of fault removal on the reliability gain given by fault tolerance has
been reported in [13]" (Djambazov & Popov, ISSRE'95: the effects of testing on
the reliability of single-version and 1-out-of-2 software).  This subpackage
provides a concrete mechanism of that kind:

* :mod:`~repro.improvement.testing` -- a pre-release testing campaign that
  detects faults with a probability depending on their failure-region size
  ``q_i`` (faults that fail often are found first), removing detected faults
  and thereby transforming the model's ``p_i``.  Because the transformation is
  *not* proportional, it realises exactly the situation of Appendix A where a
  process improvement can reduce the gain from diversity.
"""

from repro.improvement.testing import TestingCampaign, TestingTrajectory

__all__ = ["TestingCampaign", "TestingTrajectory"]
