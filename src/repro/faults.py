"""Deterministic fault injection: named failpoints for tests and chaos runs.

Production code is sprinkled with cheap, named *failpoints*::

    from repro import faults
    faults.hit("worker.evaluate")

A failpoint does nothing until armed.  Tests (and the CI chaos job) arm them
through the API or the ``REPRO_FAULTS`` environment variable::

    faults.inject("worker.evaluate", error=RuntimeError("boom"), every=3)
    # or, from outside the process:
    REPRO_FAULTS="worker.evaluate:error=RuntimeError,message=boom,every=3"

and from then on every third ``hit("worker.evaluate")`` raises.  Injection is
**deterministic** -- a per-process hit counter, no randomness -- so a chaos
scenario replays exactly, and **off by default**: with nothing armed,
:func:`hit` is one truthiness check on an empty dict.

Arming through :func:`inject` also exports the configuration to
``os.environ`` (disable with ``export_env=False``), so worker *processes*
spawned afterwards -- the service's ``--workers`` pool, the study runner's
job pool -- arm the same failpoints when they import this module.  Each
process counts its own hits; that is what makes crash-restart scenarios
deterministic (a freshly rebuilt worker starts counting from zero).

Directives (API keyword / env spelling):

=====================  ========================================================
``error=`` / `error=`  exception *class* (or builtin exception name) to raise
``message=``           exception message (default names the failpoint)
``every=N``            fire on every Nth hit (default 1: every hit)
``times=M``            stop firing after M fires (default: unlimited)
``crash`` / `crash`    ``os._exit(70)`` instead of raising -- simulates a
                       worker-process crash (``BrokenProcessPool`` upstream)
=====================  ========================================================

Failpoints in the tree (grep for ``faults.hit`` to refresh this list):

========================  =====================================================
``worker.evaluate``       one evaluation inside a service/pool worker
``worker.group``          one coalesced batch group inside a worker
``worker.crash``          worker-process entry (arm with ``crash`` to kill it)
``studies.point``         one study point in the runner
``router.replica_write``  one write-all cache ``PUT`` to a replica shard --
                          firing it models a replica missing a warm entry
``health.probe``          one router ``/healthz`` probe -- firing it blinds
                          the prober (the probe reads as failed)
========================  =====================================================
"""

from __future__ import annotations

import builtins
import os
import threading
from dataclasses import dataclass, field

__all__ = ["FaultInjected", "active", "clear", "hit", "inject"]

#: Environment variable holding the cross-process failpoint configuration.
ENV_VAR = "REPRO_FAULTS"

#: ``os._exit`` status for ``crash`` failpoints (EX_SOFTWARE; distinctive in
#: worker-crash logs).
CRASH_EXIT_CODE = 70


class FaultInjected(RuntimeError):
    """The default error a fired failpoint raises (no ``error=`` given)."""


@dataclass
class _FailPoint:
    """One armed failpoint and its per-process firing state."""

    name: str
    error: type[BaseException] = FaultInjected
    message: str | None = None
    every: int = 1
    times: int | None = None
    crash: bool = False
    hits: int = field(default=0, compare=False)
    fired: int = field(default=0, compare=False)

    def should_fire(self) -> bool:
        """Count one hit; decide deterministically whether this one fires."""
        self.hits += 1
        if self.times is not None and self.fired >= self.times:
            return False
        if self.hits % self.every != 0:
            return False
        self.fired += 1
        return True

    def raise_now(self) -> None:
        if self.crash:
            os._exit(CRASH_EXIT_CODE)
        raise self.error(self.message or f"failpoint {self.name!r} fired")

    def spec(self) -> str:
        """The env-var spelling of this failpoint (round-trips via parsing)."""
        directives = []
        if self.crash:
            directives.append("crash")
        else:
            directives.append(f"error={self.error.__name__}")
            if self.message is not None:
                directives.append(f"message={self.message}")
        if self.every != 1:
            directives.append(f"every={self.every}")
        if self.times is not None:
            directives.append(f"times={self.times}")
        return f"{self.name}:{','.join(directives)}"


_registry: dict[str, _FailPoint] = {}
_lock = threading.Lock()


def hit(name: str) -> None:
    """Pass through a failpoint; raises (or crashes) when it is armed and due.

    The disabled-path cost is one empty-dict truthiness check, so call sites
    can stay armed in hot paths.
    """
    if not _registry:
        return
    with _lock:
        point = _registry.get(name)
        if point is None or not point.should_fire():
            return
    point.raise_now()


def inject(
    name: str,
    *,
    error: type[BaseException] | BaseException | str | None = None,
    message: str | None = None,
    every: int = 1,
    times: int | None = None,
    crash: bool = False,
    export_env: bool = True,
) -> None:
    """Arm the failpoint ``name``; replaces any previous arming of it.

    ``error`` accepts an exception class, an instance (its type and message
    are taken) or a builtin exception name.  ``export_env=True`` (default)
    mirrors the whole registry into ``REPRO_FAULTS`` so worker processes
    spawned from now on arm themselves identically.
    """
    if every < 1:
        raise ValueError(f"every must be a positive integer, got {every}")
    if times is not None and times < 1:
        raise ValueError(f"times must be a positive integer or None, got {times}")
    if isinstance(error, BaseException):
        message = message if message is not None else (str(error) or None)
        error = type(error)
    elif isinstance(error, str):
        error = _resolve_error(error)
    elif error is None:
        error = FaultInjected
    elif not (isinstance(error, type) and issubclass(error, BaseException)):
        raise ValueError(f"error must be an exception class, instance or name, got {error!r}")
    with _lock:
        _registry[name] = _FailPoint(
            name=name, error=error, message=message, every=every, times=times, crash=crash
        )
        if export_env:
            _export_locked()


def clear(name: str | None = None) -> None:
    """Disarm one failpoint (or all of them) and update the exported env var."""
    with _lock:
        if name is None:
            _registry.clear()
        else:
            _registry.pop(name, None)
        _export_locked()


def active() -> dict[str, str]:
    """The armed failpoints as ``{name: spec}`` (introspection and tests)."""
    with _lock:
        return {name: point.spec() for name, point in _registry.items()}


def _export_locked() -> None:
    if _registry:
        os.environ[ENV_VAR] = ";".join(point.spec() for point in _registry.values())
    else:
        os.environ.pop(ENV_VAR, None)


def _resolve_error(name: str) -> type[BaseException]:
    candidate = getattr(builtins, name, None)
    if isinstance(candidate, type) and issubclass(candidate, BaseException):
        return candidate
    if name == FaultInjected.__name__:
        return FaultInjected
    raise ValueError(f"unknown exception name {name!r} in failpoint spec")


def _parse_spec(configuration: str) -> dict[str, _FailPoint]:
    """Parse a ``REPRO_FAULTS`` value; raises ``ValueError`` on bad specs."""
    points: dict[str, _FailPoint] = {}
    for entry in configuration.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        name, separator, rest = entry.partition(":")
        name = name.strip()
        if not name or not separator:
            raise ValueError(
                f"bad failpoint entry {entry!r}; expected 'name:directive,...'"
            )
        point = _FailPoint(name=name)
        for directive in rest.split(","):
            directive = directive.strip()
            if not directive:
                continue
            key, has_value, value = directive.partition("=")
            if key == "crash" and not has_value:
                point.crash = True
            elif key == "error" and has_value:
                point.error = _resolve_error(value)
            elif key == "message" and has_value:
                point.message = value
            elif key == "every" and has_value:
                point.every = _parse_positive(value, "every")
            elif key == "times" and has_value:
                point.times = _parse_positive(value, "times")
            else:
                raise ValueError(
                    f"unknown failpoint directive {directive!r} in {entry!r}"
                )
        points[name] = point
    return points


def _parse_positive(value: str, what: str) -> int:
    try:
        parsed = int(value)
    except ValueError as error:
        raise ValueError(f"failpoint {what}= expects an integer, got {value!r}") from error
    if parsed < 1:
        raise ValueError(f"failpoint {what}= must be positive, got {parsed}")
    return parsed


def _load_env() -> None:
    """Arm failpoints from ``REPRO_FAULTS`` (worker-process startup path)."""
    configuration = os.environ.get(ENV_VAR)
    if not configuration:
        return
    # A malformed spec must fail loudly: silently running *without* the
    # requested faults would make a chaos run vacuously green.
    _registry.update(_parse_spec(configuration))


_load_env()
