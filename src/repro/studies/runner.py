"""Parallel, cache-aware execution of a study.

The runner turns a :class:`~repro.studies.spec.StudySpec` into a
:class:`~repro.studies.results.StudyResult`:

1. expand the spec into points (:mod:`repro.studies.grid`) and validate every
   axis parameter against the base and methods up front;
2. compute each point's content-addressed digest and probe the cache --
   hits are served without any computation;
3. evaluate the misses, sequentially or across worker processes, each point
   with its own reproducible random stream;
4. store fresh metric records in the cache and assemble the tidy result
   table in canonical point order.

Two properties make re-runs incremental:

* **content-keyed caching** -- a point's cache key covers only what its
  evaluation depends on: the base model content, the axis values *its
  method consumes*, the normalised method options, the study seed (for
  stochastic methods only) and the cache format version.  An axis that only
  feeds other methods (e.g. a ``confidence`` sweep in a study that also
  runs ``moments``) does not perturb the keys of the methods that ignore
  it, and a seed change leaves deterministic methods' entries valid;
* **content-keyed seeding** -- every point's random stream is a child of the
  study's single :class:`numpy.random.SeedSequence` root keyed by the
  point's digest rather than its position in the expansion, so adding or
  removing a sweep value never shifts any other point's stream.

Together: editing one axis recomputes exactly the new points, and a warm
re-run recomputes nothing and reproduces the table byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.api.registry import default_registry
from repro.studies.cache import CACHE_FORMAT_VERSION, ResultCache, payload_digest
from repro.studies.grid import StudyPoint, expand_points
from repro.studies.methods import canonical_model_params, evaluate_study_point, split_point_params
from repro.studies.results import StudyResult
from repro.studies.spec import StudySpec

__all__ = ["PlannedPoint", "plan_study", "point_seed_entropy", "run_study"]


@dataclass(frozen=True)
class PlannedPoint:
    """One expanded, validated point with its cache identity."""

    point: StudyPoint
    consumed_params: tuple[tuple[str, Any], ...]
    payload: dict
    digest: str


def point_seed_entropy(spec: StudySpec, digest: str) -> tuple[int, int]:
    """Entropy for the point's ``SeedSequence``: (study seed, content key)."""
    return (spec.seed, int(digest[:16], 16))


def plan_study(spec: StudySpec) -> list[PlannedPoint]:
    """Expand and validate the study; return the planned points in order.

    Raises ``ValueError`` on the first axis parameter no layer consumes, so a
    bad spec fails before any evaluation starts.
    """
    registry = default_registry()
    option_names = {
        method.name: set(registry.get(method.name).option_names) for method in spec.methods
    }
    other_options = {
        method.name: frozenset(
            set().union(*option_names.values()) - option_names[method.name]
        )
        for method in spec.methods
    }
    planned: list[PlannedPoint] = []
    for point in expand_points(spec):
        factory_kwargs, transforms, overrides, ignored = split_point_params(
            spec.base, point.param_dict(), point.method, other_options[point.method.name]
        )
        consumed = tuple(item for item in point.params if item[0] not in ignored)
        payload = {
            "cache": CACHE_FORMAT_VERSION,
            "base": dict(spec.base),
            # Every default is materialised -- scenario-factory defaults into
            # "params", the registry's canonical resolved options (statically
            # configured options plus any axis overrides, mirroring the
            # evaluation's merge) into "method" -- so the key covers
            # everything the evaluation depends on and a value spelled out
            # explicitly hashes the same as the implicit default.
            "params": canonical_model_params(spec.base, factory_kwargs, transforms),
            "method": {
                "name": point.method.name,
                **registry.resolve_options(
                    point.method.name, {**dict(point.method.options), **overrides}
                ),
            },
            # Deterministic methods never consume randomness, so their keys
            # (and cached records) survive a study-seed change.
            "entropy": spec.seed if registry.get(point.method.name).requires_seed else None,
        }
        planned.append(
            PlannedPoint(
                point=point,
                consumed_params=consumed,
                payload=payload,
                digest=payload_digest(payload),
            )
        )
    return planned


def _evaluate_planned(arguments: tuple) -> tuple[str, Any]:
    """Worker entry point (module-level for picklability).

    Failures are returned as values rather than raised, so one bad point
    neither aborts the pool mid-stream nor discards completed evaluations
    queued behind it.
    """
    base, consumed_params, method, seed_entropy = arguments
    try:
        return ("ok", evaluate_study_point(base, dict(consumed_params), method, seed_entropy))
    except Exception as error:  # noqa: BLE001 - reported with point context by run_study
        return ("error", f"{type(error).__name__}: {error}")


def _assemble_row(planned: PlannedPoint, metrics: dict[str, Any]) -> dict[str, Any]:
    """One tidy table row: identity, full axis assignment, then metrics."""
    return {
        "point_id": planned.digest[:12],
        "method": planned.point.method.name,
        **planned.point.param_dict(),
        **metrics,
    }


def run_study(
    spec: StudySpec,
    cache_dir: str | None = None,
    jobs: int = 1,
    force: bool = False,
    progress: Callable[[int, int, int], None] | None = None,
) -> StudyResult:
    """Execute the study and return its result table.

    Parameters
    ----------
    spec:
        The validated study specification.
    cache_dir:
        Content-addressed result cache directory; ``None`` disables caching.
    jobs:
        Worker processes for the uncached points (1 = run in-process).
    force:
        Recompute every point even on a cache hit (fresh records still
        overwrite the cache, keeping it warm for the next run).
    progress:
        Optional callback ``(done, total, computed)`` invoked after every
        resolved evaluation (``total`` counts distinct evaluations, which is
        fewer than the point count when points differ only in axes their
        method ignores).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be a positive integer, got {jobs}")
    planned = plan_study(spec)
    distinct = len({entry.digest for entry in planned})
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    metrics_by_digest: dict[str, dict[str, Any]] = {}
    resolved = 0
    cached_count = 0
    # Points whose ignored axes differ share a digest; evaluate each
    # distinct digest once and fan the metrics out to every point using it.
    pending: dict[str, int] = {}
    for index, entry in enumerate(planned):
        if entry.digest in metrics_by_digest or entry.digest in pending:
            continue
        cached = None if (cache is None or force) else cache.load(entry.digest)
        if cached is not None:
            metrics_by_digest[entry.digest] = cached["metrics"]
            cached_count += 1
            resolved += 1
            if progress is not None:
                progress(resolved, distinct, 0)
        else:
            pending[entry.digest] = index

    if pending:
        work = [
            (
                dict(spec.base),
                planned[index].consumed_params,
                planned[index].point.method,
                point_seed_entropy(spec, digest),
            )
            for digest, index in pending.items()
        ]
        executor = None
        if jobs > 1 and len(pending) > 1:
            from concurrent.futures import ProcessPoolExecutor

            executor = ProcessPoolExecutor(max_workers=min(jobs, len(pending)))
            fresh = executor.map(_evaluate_planned, work)
        else:
            fresh = map(_evaluate_planned, work)
        failures: list[tuple[int, str]] = []
        try:
            for (digest, index), (status, outcome) in zip(pending.items(), fresh):
                if status == "error":
                    failures.append((index, outcome))
                    continue
                metrics_by_digest[digest] = outcome
                resolved += 1
                if cache is not None:
                    cache.store(
                        digest,
                        {
                            "digest": digest,
                            "payload": planned[index].payload,
                            "metrics": outcome,
                        },
                    )
                if progress is not None:
                    progress(resolved, distinct, resolved - cached_count)
        finally:
            if executor is not None:
                executor.shutdown()
        if failures:
            index, message = failures[0]
            entry = planned[index]
            params = ", ".join(f"{key}={value}" for key, value in entry.point.params) or "(no axes)"
            salvage = "completed evaluations were cached; " if cache is not None else ""
            raise ValueError(
                f"{len(failures)} of {len(pending)} evaluation(s) failed ({salvage}"
                f"fix the spec and re-run). First failure: point {entry.digest[:12]} "
                f"(method {entry.point.method.name}, {params}): {message}"
            )

    axis_sizes = {axis.name: len(axis.values) for axis in spec.grid + spec.zipped}
    summary = {
        "study": spec.name,
        "description": spec.description,
        "points": len(planned),
        "evaluations": cached_count + len(pending),
        "computed": len(pending),
        "cached": cached_count,
        "jobs": jobs,
        "seed": spec.seed,
        "methods": [method.name for method in spec.methods],
        "axes": axis_sizes,
        "cache_dir": cache_dir,
    }
    rows = tuple(
        _assemble_row(entry, metrics_by_digest[entry.digest]) for entry in planned
    )
    return StudyResult(name=spec.name, records=rows, summary=summary)
