"""Parallel, cache-aware execution of a study.

The runner turns a :class:`~repro.studies.spec.StudySpec` into a
:class:`~repro.studies.results.StudyResult`:

1. expand the spec into points (:mod:`repro.studies.grid`) and validate every
   axis parameter against the base and methods up front;
2. compute each point's content-addressed digest and probe the cache --
   hits are served without any computation;
3. evaluate the misses, sequentially or across worker processes, each point
   with its own reproducible random stream;
4. store fresh metric records in the cache and assemble the tidy result
   table in canonical point order.

Two properties make re-runs incremental:

* **content-keyed caching** -- a point's cache key covers only what its
  evaluation depends on: the base model content, the axis values *its
  method consumes*, the normalised method options, the study seed (for
  stochastic methods only) and the cache format version.  An axis that only
  feeds other methods (e.g. a ``confidence`` sweep in a study that also
  runs ``moments``) does not perturb the keys of the methods that ignore
  it, and a seed change leaves deterministic methods' entries valid;
* **content-keyed seeding** -- every point's random stream is a child of the
  study's single :class:`numpy.random.SeedSequence` root keyed by the
  point's digest rather than its position in the expansion, so adding or
  removing a sweep value never shifts any other point's stream.

Together: editing one axis recomputes exactly the new points, and a warm
re-run recomputes nothing and reproduces the table byte for byte.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro import telemetry
from repro.api.registry import default_registry
from repro.cache import ResultCache, payload_digest
from repro.grouping import evaluation_payload, group_digest
from repro.studies.grid import StudyPoint, expand_points
from repro.studies.methods import (
    MODEL_TRANSFORM_PARAMS,
    canonical_model_params,
    evaluate_study_group,
    evaluate_study_point,
    split_point_params,
)
from repro.studies.results import StudyResult
from repro.studies.spec import StudySpec

__all__ = [
    "PlannedPoint",
    "group_seed_entropy",
    "plan_study",
    "point_seed_entropy",
    "run_study",
]


@dataclass(frozen=True)
class PlannedPoint:
    """One expanded, validated point with its cache identity."""

    point: StudyPoint
    consumed_params: tuple[tuple[str, Any], ...]
    payload: dict
    digest: str


def point_seed_entropy(spec: StudySpec, digest: str) -> tuple[int, int]:
    """Entropy for the point's ``SeedSequence``: (study seed, content key)."""
    return (spec.seed, int(digest[:16], 16))


def group_seed_entropy(spec: StudySpec, digest: str) -> tuple[int, int]:
    """Entropy of a batch group's shared demand stream: (study seed, group key).

    Keyed by the group's *content* (not its membership), so a sweep point's
    shared-demand stream does not depend on which sibling points happened to
    be cache misses alongside it.
    """
    return (spec.seed, int(digest[:16], 16))


def plan_study(spec: StudySpec) -> list[PlannedPoint]:
    """Expand and validate the study; return the planned points in order.

    Raises ``ValueError`` on the first axis parameter no layer consumes, so a
    bad spec fails before any evaluation starts.
    """
    registry = default_registry()
    option_names = {
        method.name: set(registry.get(method.name).option_names) for method in spec.methods
    }
    other_options = {
        method.name: frozenset(
            set().union(*option_names.values()) - option_names[method.name]
        )
        for method in spec.methods
    }
    planned: list[PlannedPoint] = []
    for point in expand_points(spec):
        factory_kwargs, transforms, overrides, ignored = split_point_params(
            spec.base, point.param_dict(), point.method, other_options[point.method.name]
        )
        consumed = tuple(item for item in point.params if item[0] not in ignored)
        # Every default is materialised -- scenario-factory defaults into
        # "params", the registry's canonical resolved options (statically
        # configured options plus any axis overrides, mirroring the
        # evaluation's merge) into "method" -- so the key covers everything
        # the evaluation depends on and a value spelled out explicitly
        # hashes the same as the implicit default.  Deterministic methods
        # carry no entropy, so their keys (and cached records) survive a
        # study-seed change.
        payload = evaluation_payload(
            spec.base,
            canonical_model_params(spec.base, factory_kwargs, transforms),
            point.method.name,
            registry.resolve_options(
                point.method.name, {**dict(point.method.options), **overrides}
            ),
            spec.seed if registry.get(point.method.name).requires_seed else None,
        )
        planned.append(
            PlannedPoint(
                point=point,
                consumed_params=consumed,
                payload=payload,
                digest=payload_digest(payload),
            )
        )
    return planned


def _evaluate_planned(arguments: tuple) -> tuple[str, Any]:
    """Worker entry point (module-level for picklability).

    Failures are returned as values rather than raised, so one bad point
    neither aborts the pool mid-stream nor discards completed evaluations
    queued behind it.
    """
    base, consumed_params, method, seed_entropy = arguments
    try:
        with telemetry.span("study.point", method=method.name):
            return (
                "ok",
                evaluate_study_point(base, dict(consumed_params), method, seed_entropy),
            )
    except Exception as error:  # noqa: BLE001 - reported with point context by run_study
        return ("error", f"{type(error).__name__}: {error}")


def _evaluate_group(arguments: tuple) -> list[tuple[str, Any]]:
    """Group worker entry point: one pickle per batchable group of points.

    Returns one ``("ok", metrics)`` / ``("error", message)`` outcome per
    member.  A failure that escapes the per-point handling (e.g. a broken
    base model) is fanned out to every member so the runner's bookkeeping
    stays aligned.
    """
    base, shared_params, method, variations, group_entropy, point_entropies, wanted = arguments
    try:
        with telemetry.span(
            "study.group",
            method=method.name,
            group_size=len(variations),
            wanted=len(wanted),
        ):
            return evaluate_study_group(
                base,
                dict(shared_params),
                method,
                variations,
                group_entropy,
                point_entropies,
                wanted=wanted,
            )
    except Exception as error:  # noqa: BLE001 - reported with point context by run_study
        return [(
            "error", f"{type(error).__name__}: {error}"
        )] * len(wanted)


def _plan_groups(
    spec: StudySpec, planned: list[PlannedPoint], pending: dict, jobs: int = 1
) -> list[tuple]:
    """Partition the evaluation into batchable groups, heaviest first.

    Each group with at least one cache miss becomes one worker task: points
    sharing everything except the ``p_scale`` / ``q_scale`` transforms
    evaluate together against one resolved base model (and, for batched
    stochastic methods, one shared demand stream).  A group always carries
    its *full* planned sweep -- cached siblings included -- because batched
    kernels derive shared structure from the whole scale set (the Monte
    Carlo demand envelope, the exact kernel's lattice span); deriving it
    from the cache misses alone would make a point's fresh value depend on
    which siblings happened to be cached.  The worker only returns the
    missing points.  Heaviest groups are dispatched first so the process
    pool drains evenly.
    """
    registry = default_registry()
    batchable = {
        method.name: registry.get(method.name).supports_batch for method in spec.methods
    }
    groups: dict[str, dict] = {}
    for index, entry in enumerate(planned):
        key = group_digest(entry.payload)
        group = groups.get(key)
        if group is None:
            shared = tuple(
                item for item in entry.consumed_params if item[0] not in MODEL_TRANSFORM_PARAMS
            )
            group = groups[key] = {
                "base": dict(spec.base),
                "shared": shared,
                "method": entry.point.method,
                "members": [],
                "seen": set(),
                "entropy": group_seed_entropy(spec, key),
                "weight": int(entry.payload["method"].get("replications", 1)),
            }
        if entry.digest not in group["seen"]:
            group["seen"].add(entry.digest)
            group["members"].append((entry.digest, index))
    # A batched kernel needs the whole axis in one task (its shared
    # structure -- demand envelope, lattice span -- spans the sweep), but a
    # kernel-less method gains nothing from a single big task and would
    # serialise its points inside one worker; split those groups into up to
    # ``jobs`` chunks (per-point digest seeding makes the split invisible
    # in the results).
    chunked: list[dict] = []
    for group in groups.values():
        if batchable[group["method"].name] or jobs <= 1 or len(group["members"]) <= 1:
            chunked.append(group)
            continue
        parts = min(jobs, len(group["members"]))
        size, remainder = divmod(len(group["members"]), parts)
        offset = 0
        for part in range(parts):
            take = size + (1 if part < remainder else 0)
            chunked.append({**group, "members": group["members"][offset : offset + take]})
            offset += take
    ordered = sorted(
        (group for group in chunked if any(d in pending for d, _ in group["members"])),
        key=lambda group: len(group["members"]) * group["weight"],
        reverse=True,
    )
    work = []
    for group in ordered:
        variations = tuple(
            {
                "p_scale": planned[index].payload["params"]["p_scale"],
                "q_scale": planned[index].payload["params"]["q_scale"],
            }
            for _, index in group["members"]
        )
        entropies = tuple(
            point_seed_entropy(spec, digest) for digest, _ in group["members"]
        )
        wanted = tuple(
            position
            for position, (digest, _) in enumerate(group["members"])
            if digest in pending
        )
        work.append(
            (
                [group["members"][position] for position in wanted],
                (
                    group["base"],
                    group["shared"],
                    group["method"],
                    variations,
                    group["entropy"],
                    entropies,
                    wanted,
                ),
            )
        )
    return work


def _assemble_row(planned: PlannedPoint, metrics: dict[str, Any]) -> dict[str, Any]:
    """One tidy table row: identity, full axis assignment, then metrics."""
    return {
        "point_id": planned.digest[:12],
        "method": planned.point.method.name,
        **planned.point.param_dict(),
        **metrics,
    }


def run_study(
    spec: StudySpec,
    cache_dir: str | None = None,
    jobs: int = 1,
    force: bool = False,
    progress: Callable[[int, int, int], None] | None = None,
    batch: bool = True,
    keep_going: bool = False,
) -> StudyResult:
    """Execute the study and return its result table.

    Parameters
    ----------
    spec:
        The validated study specification.
    cache_dir:
        Content-addressed result cache directory; ``None`` disables caching.
    jobs:
        Worker processes for the uncached points (1 = run in-process).
        Results are identical for any value; the pool is capped at the
        machine's CPU count, since extra workers on an oversubscribed
        machine only add scheduling overhead.
    force:
        Recompute every point even on a cache hit (fresh records still
        overwrite the cache, keeping it warm for the next run).
    progress:
        Optional callback ``(done, total, computed)`` invoked after every
        resolved evaluation (``total`` counts distinct evaluations, which is
        fewer than the point count when points differ only in axes their
        method ignores).
    batch:
        When true (the default), cache misses are grouped by batchable axis
        -- points differing only in ``p_scale`` / ``q_scale`` -- and each
        group is dispatched as *one* task: the base model is resolved once,
        methods with a batched kernel evaluate the whole group in vectorised
        passes, and stochastic batched methods score every point against one
        shared demand stream (common random numbers; see
        :mod:`repro.montecarlo.sweep`).  Point digests, cache entries and
        warm-run behaviour are identical in both modes; what can differ are
        the *fresh* metric values of batch-capable methods -- Monte Carlo
        points sample a different (shared) stream, and batched exact values
        agree with the scalar path to kernel resolution rather than bitwise.
        Methods without a batched kernel produce bitwise-identical results
        in either mode (their groups are chunked across the workers, so
        they keep their cross-point parallelism).  One caveat: a sweep a
        batch-capable method *declines at runtime* (e.g. correlated Monte
        Carlo) runs point by point inside its single group task; pass
        ``batch=False`` to spread such sweeps across workers.  ``batch=
        False`` restores the one-task-per-point dispatch with per-point
        independent streams everywhere.
    keep_going:
        When true, a failing point does not abort the study: the run
        completes, the failed points become typed error rows in the result
        table (``status="error"`` plus ``error_type`` / ``error`` columns,
        no metric columns) and the summary records the ``failed`` count.
        Failures are never cached, so a warm re-run recomputes exactly the
        failed points -- the natural repair loop for long sweeps.  With the
        default ``keep_going=False`` the first failure raises (completed
        evaluations are still cached), preserving the strict behaviour.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be a positive integer, got {jobs}")
    with telemetry.span("study.plan", study=spec.name):
        planned = plan_study(spec)
    distinct = len({entry.digest for entry in planned})
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    metrics_by_digest: dict[str, dict[str, Any]] = {}
    errors_by_digest: dict[str, dict[str, Any]] = {}
    resolved = 0
    cached_count = 0
    # Points whose ignored axes differ share a digest; evaluate each
    # distinct digest once and fan the metrics out to every point using it.
    pending: dict[str, int] = {}
    probe_started = time.perf_counter()
    for index, entry in enumerate(planned):
        if entry.digest in metrics_by_digest or entry.digest in pending:
            continue
        cached = None if (cache is None or force) else cache.load(entry.digest)
        if cached is not None:
            metrics_by_digest[entry.digest] = cached["metrics"]
            cached_count += 1
            resolved += 1
            if progress is not None:
                progress(resolved, distinct, 0)
        else:
            pending[entry.digest] = index
    telemetry.record(
        "study.cache_probe",
        time.perf_counter() - probe_started,
        points=len(planned),
        hits=cached_count,
        misses=len(pending),
    )

    # Worker processes beyond the machine's cores only add scheduling and
    # fork overhead (results are identical for any ``jobs`` by
    # construction), so parallelism is capped at the CPU count throughout.
    import os

    effective_jobs = min(jobs, max(1, os.cpu_count() or 1))
    # Grouping is only planned when there is work: a fully warm run must not
    # pay the per-point group hashing.
    groups = (
        _plan_groups(spec, planned, pending, effective_jobs) if batch and pending else None
    )
    if pending:
        if groups is not None:
            tasks = len(groups)
            work = [arguments for _, arguments in groups]
            worker = _evaluate_group
            # One (members, outcomes) pair per finished group.
            def bind(results):
                for (members, _), outcomes in zip(groups, results):
                    yield from zip(members, outcomes)
        else:
            tasks = len(pending)
            work = [
                (
                    dict(spec.base),
                    planned[index].consumed_params,
                    planned[index].point.method,
                    point_seed_entropy(spec, digest),
                )
                for digest, index in pending.items()
            ]
            worker = _evaluate_planned

            def bind(results):
                yield from zip(pending.items(), results)

        executor = None
        dispatch_started = time.perf_counter()
        # On a single-core machine (or with one task) the run stays
        # in-process.
        workers = min(effective_jobs, tasks)
        if workers > 1:
            from concurrent.futures import ProcessPoolExecutor

            executor = ProcessPoolExecutor(max_workers=workers)
            fresh = executor.map(worker, work)
        else:
            fresh = map(worker, work)
        failures: list[tuple[str, int, str]] = []
        try:
            for (digest, index), (status, outcome) in bind(fresh):
                if status == "error":
                    failures.append((digest, index, outcome))
                    continue
                metrics_by_digest[digest] = outcome
                resolved += 1
                if cache is not None:
                    cache.store(
                        digest,
                        {
                            "digest": digest,
                            "payload": planned[index].payload,
                            "metrics": outcome,
                        },
                    )
                if progress is not None:
                    progress(resolved, distinct, resolved - cached_count)
        finally:
            if executor is not None:
                executor.shutdown()
            telemetry.record(
                "study.dispatch",
                time.perf_counter() - dispatch_started,
                tasks=tasks,
                workers=workers,
                batch=groups is not None,
            )
        if failures and not keep_going:
            _, index, message = failures[0]
            entry = planned[index]
            params = ", ".join(f"{key}={value}" for key, value in entry.point.params) or "(no axes)"
            salvage = "completed evaluations were cached; " if cache is not None else ""
            raise ValueError(
                f"{len(failures)} of {len(pending)} evaluation(s) failed ({salvage}"
                f"fix the spec and re-run). First failure: point {entry.digest[:12]} "
                f"(method {entry.point.method.name}, {params}): {message}"
            )
        # keep_going: failed points become typed error rows.  Failures are
        # deliberately *not* cached, so the next (warm) run recomputes only
        # them -- everything that succeeded serves from the cache.
        for digest, _, message in failures:
            error_type, separator, detail = message.partition(": ")
            errors_by_digest[digest] = {
                "status": "error",
                "error_type": error_type if separator else "Error",
                "error": detail if separator else message,
            }

    axis_sizes = {axis.name: len(axis.values) for axis in spec.grid + spec.zipped}
    summary = {
        "study": spec.name,
        "description": spec.description,
        "points": len(planned),
        "evaluations": cached_count + len(pending),
        "computed": len(pending),
        "cached": cached_count,
        "jobs": jobs,
        "batch": batch,
        "keep_going": keep_going,
        "failed": len(errors_by_digest),
        "dispatched_tasks": (len(groups) if groups is not None else len(pending)) if pending else 0,
        "seed": spec.seed,
        "methods": [method.name for method in spec.methods],
        "axes": axis_sizes,
        "cache_dir": cache_dir,
    }
    with telemetry.span("study.aggregate", study=spec.name, points=len(planned)):
        rows = tuple(
            _assemble_row(
                entry, metrics_by_digest.get(entry.digest) or errors_by_digest[entry.digest]
            )
            for entry in planned
        )
        return StudyResult(name=spec.name, records=rows, summary=summary)
