"""Compatibility re-export: the content-addressed cache moved to :mod:`repro.cache`.

The cache started here as a study-runner detail; when the evaluation service
(:mod:`repro.service`) grew a disk tier sharing the same format, the
implementation was promoted to :mod:`repro.cache`.  Import from there in new
code -- this module exists so existing imports (and pickled references) keep
working.
"""

from repro.cache import (  # noqa: F401  (re-exported names)
    CACHE_FORMAT_VERSION,
    ResultCache,
    canonical_json,
    payload_digest,
)

__all__ = ["CACHE_FORMAT_VERSION", "ResultCache", "canonical_json", "payload_digest"]
