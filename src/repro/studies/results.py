"""Result store for studies: tidy per-point records, exports and summaries.

Every evaluation point contributes one *flat* record (point id, method, axis
values, metrics), so the whole study is one tidy table ready for pandas /
spreadsheet / plotting consumption.  Exports are deterministic: records keep
the canonical expansion order and JSON/JSONL/CSV writers emit stable column
orders, so a warm (fully cached) re-run produces byte-identical tables.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = ["StudyResult", "TABLE_FORMATS"]

#: Table formats :meth:`StudyResult.save` can emit (the single source of
#: truth; the CLI's ``--formats`` validation reads this too).
TABLE_FORMATS = ("json", "jsonl", "csv")

#: Columns pinned to the front of the table, in this order.
_LEADING_COLUMNS = ("point_id", "method")


@dataclass(frozen=True)
class StudyResult:
    """The outcome of a study run: tidy records plus run metadata.

    ``records`` hold only deterministic content (no wall times, no cache-hit
    flags), so a second run against a warm cache reproduces them exactly;
    run-dependent bookkeeping lives in ``summary``.
    """

    name: str
    records: tuple[Mapping[str, Any], ...]
    summary: Mapping[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    def columns(self) -> list[str]:
        """Stable column order: point id, method, then sorted remaining keys."""
        seen: set[str] = set()
        for record in self.records:
            seen.update(record)
        trailing = sorted(seen - set(_LEADING_COLUMNS))
        return [column for column in _LEADING_COLUMNS if seen and column in seen] + trailing

    def rows(self) -> list[dict[str, Any]]:
        """Records as plain dicts in canonical order."""
        return [dict(record) for record in self.records]

    # ------------------------------------------------------------------ #
    # Exports
    # ------------------------------------------------------------------ #
    def write_json(self, path: str | Path) -> Path:
        """The full table as one JSON array."""
        path = Path(path)
        path.write_text(json.dumps(self.rows(), sort_keys=True, indent=2) + "\n", "utf-8")
        return path

    def write_jsonl(self, path: str | Path) -> Path:
        """One JSON object per line (streaming-friendly)."""
        path = Path(path)
        lines = [json.dumps(row, sort_keys=True) for row in self.rows()]
        path.write_text("\n".join(lines) + ("\n" if lines else ""), "utf-8")
        return path

    def write_csv(self, path: str | Path) -> Path:
        """CSV with the union of all record keys as columns."""
        path = Path(path)
        columns = self.columns()
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns, restval="")
            writer.writeheader()
            for row in self.rows():
                writer.writerow({key: _format_cell(value) for key, value in row.items()})
        return path

    def save(
        self,
        output_dir: str | Path,
        formats: Sequence[str] = TABLE_FORMATS,
    ) -> dict[str, Path]:
        """Write the table in the requested formats plus ``summary.json``.

        Table files are deterministic; the summary (which records how many
        points were computed versus served from cache) is written separately
        so it never perturbs table reproducibility.
        """
        output_dir = Path(output_dir)
        output_dir.mkdir(parents=True, exist_ok=True)
        writers = {"json": self.write_json, "jsonl": self.write_jsonl, "csv": self.write_csv}
        unknown = sorted(set(formats) - set(TABLE_FORMATS))
        if unknown:
            raise ValueError(
                f"unknown table format(s) {', '.join(unknown)}; "
                f"available: {', '.join(TABLE_FORMATS)}"
            )
        written: dict[str, Path] = {}
        for fmt in formats:
            written[fmt] = writers[fmt](output_dir / f"{self.name}.{fmt}")
        summary_path = output_dir / f"{self.name}.summary.json"
        summary_path.write_text(
            json.dumps(dict(self.summary), sort_keys=True, indent=2) + "\n", "utf-8"
        )
        written["summary"] = summary_path
        return written


def _format_cell(value: Any) -> Any:
    """CSV cell formatting: ``repr``-round-trippable floats, JSON for nests."""
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (dict, list, tuple)):
        return json.dumps(value, sort_keys=True)
    if value is None:
        return ""
    return value
