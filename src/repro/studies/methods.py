"""Per-point evaluation: resolve the model, run one method, return metrics.

A study point carries axis assignments (``params``) and a method.  Each
parameter is consumed by exactly one of three layers:

* **base factory parameters** -- keyword arguments of the base scenario's
  factory (e.g. ``n`` or ``model_seed`` for ``many-small-faults``);
* **model transforms** -- ``p_scale`` (``FaultModel.scaled``, the Appendix B
  process-quality knob) and ``q_scale`` (uniform failure-region scaling),
  applied after the base model is built;
* **method options** -- anything the point's method accepts
  (``versions``, ``replications``, ``correlation``, ...); an axis value
  overrides the method's statically configured option.

Anything else is rejected up front by :func:`split_point_params`, so a typo
in a sweep axis fails before any evaluation starts.
"""

from __future__ import annotations

import inspect
from typing import Any, Mapping

import numpy as np

from repro.core.fault_model import FaultModel
from repro.studies.spec import METHOD_OPTION_DEFAULTS, MethodSpec

__all__ = [
    "MODEL_TRANSFORM_PARAMS",
    "canonical_model_params",
    "evaluate_point",
    "resolve_model",
    "split_point_params",
]

#: Parameters applied to the resolved model rather than to its construction,
#: with the neutral default each is equivalent to when absent.
MODEL_TRANSFORM_DEFAULTS = {"p_scale": 1.0, "q_scale": 1.0}
MODEL_TRANSFORM_PARAMS = tuple(MODEL_TRANSFORM_DEFAULTS)


def _base_factory_parameters(base: Mapping) -> tuple[str, ...]:
    if "scenario" not in base:
        return ()
    from repro.experiments.scenarios import SCENARIOS

    factory_params = SCENARIOS[base["scenario"]].parameters()
    # ``rng`` is exposed to specs as ``model_seed`` (an integer, JSON-friendly).
    return tuple("model_seed" if name == "rng" else name for name in factory_params)


def split_point_params(
    base: Mapping,
    params: Mapping[str, Any],
    method: MethodSpec,
    ignorable: frozenset[str] | set[str] = frozenset(),
) -> tuple[dict, dict, dict, dict]:
    """Partition axis assignments into (factory kwargs, transforms, options, ignored).

    ``ignorable`` names parameters that other methods of the same study
    consume; for this method they are collected into the *ignored* bucket
    (and excluded from the point's cache key by the runner).  A parameter no
    layer consumes raises ``ValueError``.
    """
    factory_names = _base_factory_parameters(base)
    method_names = METHOD_OPTION_DEFAULTS[method.name]
    factory_kwargs: dict[str, Any] = {}
    transforms: dict[str, Any] = {}
    method_overrides: dict[str, Any] = {}
    ignored: dict[str, Any] = {}
    for name, value in params.items():
        if name in MODEL_TRANSFORM_PARAMS:
            transforms[name] = value
        elif name in factory_names:
            factory_kwargs["rng" if name == "model_seed" else name] = value
        elif name in method_names:
            method_overrides[name] = value
        elif name in ignorable:
            ignored[name] = value
        else:
            accepted = sorted(set(factory_names) | set(MODEL_TRANSFORM_PARAMS) | set(method_names))
            raise ValueError(
                f"parameter {name!r} is not understood by the base "
                f"({base.get('scenario', 'inline model')}) or method {method.name!r}; "
                f"accepted here: {', '.join(accepted)}"
            )
    return factory_kwargs, transforms, method_overrides, ignored


def canonical_model_params(base: Mapping, factory_kwargs: Mapping, transforms: Mapping) -> dict:
    """Model-level parameters with every default folded in, spec-facing names.

    This is what the cache payload records: scenario-factory defaults (e.g.
    ``n=200`` for ``many-small-faults`` when no ``n`` axis is swept) and the
    neutral transform defaults are materialised, so (a) the key covers
    everything the resolved model depends on -- changing a factory default
    later cannot serve stale entries -- and (b) a default written out
    explicitly (a one-value ``n`` axis, ``p_scale: [1.0]``) hashes
    identically to leaving it implicit.
    """
    params = dict(MODEL_TRANSFORM_DEFAULTS)
    params.update(transforms)
    if "scenario" in base:
        from repro.experiments.scenarios import SCENARIOS, factory_signature

        signature = factory_signature(SCENARIOS[base["scenario"]].factory)
        for name, parameter in signature.parameters.items():
            key = "model_seed" if name == "rng" else name
            if name in factory_kwargs:
                params[key] = factory_kwargs[name]
            elif parameter.default is not inspect.Parameter.empty:
                params[key] = parameter.default
    return params


def resolve_model(base: Mapping, factory_kwargs: Mapping, transforms: Mapping) -> FaultModel:
    """Build the point's fault model from the base and the model-level params."""
    if "scenario" in base:
        from repro.experiments.scenarios import get_scenario

        model = get_scenario(base["scenario"], **factory_kwargs)
    else:
        model = FaultModel.from_dict(base["model"])
    if "p_scale" in transforms:
        model = model.scaled(float(transforms["p_scale"]))
    if "q_scale" in transforms:
        scale = float(transforms["q_scale"])
        if scale < 0.0:
            raise ValueError(f"q_scale must be non-negative, got {scale}")
        model = FaultModel(
            p=model.p.copy(), q=model.q * scale, names=model.names, strict=model.strict
        )
    return model


def evaluate_point(
    base: Mapping,
    params: Mapping[str, Any],
    method: MethodSpec,
    seed_entropy: tuple[int, ...],
) -> dict[str, Any]:
    """Run one method at one sweep point and return its flat metric record.

    ``params`` must contain only parameters this point consumes (the runner
    strips other methods' axes before calling).
    """
    factory_kwargs, transforms, overrides, _ = split_point_params(base, params, method)
    model = resolve_model(base, factory_kwargs, transforms)
    options = {**dict(method.options), **overrides}
    return _METHODS[method.name](model, options, seed_entropy)


# --------------------------------------------------------------------- #
# Method implementations
# --------------------------------------------------------------------- #
def _moments_method(model: FaultModel, options: dict, seed_entropy) -> dict:
    from repro.core.moments import expected_fault_count, pfd_moments
    from repro.core.pfd_distribution import prob_pfd_zero

    versions = int(options["versions"])
    single = pfd_moments(model, 1)
    system = pfd_moments(model, versions)
    return {
        "mean_single": single.mean,
        "std_single": single.std,
        "mean_system": system.mean,
        "std_system": system.std,
        "mean_ratio": system.mean / single.mean if single.mean else 1.0,
        "expected_faults_single": expected_fault_count(model, 1),
        "expected_faults_system": expected_fault_count(model, versions),
        "prob_pfd_zero_single": prob_pfd_zero(model, 1),
        "prob_pfd_zero_system": prob_pfd_zero(model, versions),
    }


def _exact_method(model: FaultModel, options: dict, seed_entropy) -> dict:
    from repro.core.pfd_distribution import exact_pfd_distribution

    versions = int(options["versions"])
    max_support = options["max_support"]
    max_support = None if max_support is None else int(max_support)
    level = float(options["level"])
    distribution = exact_pfd_distribution(model, versions, max_support=max_support)
    record = {
        "exact_mean": distribution.mean(),
        "exact_std": distribution.std(),
        "exact_percentile_level": level,
        "exact_percentile": distribution.quantile(level),
        "exact_support": int(distribution.support.size),
    }
    if options["threshold"] is not None:
        threshold = float(options["threshold"])
        record["exact_threshold"] = threshold
        record["exact_exceedance"] = distribution.survival(threshold)
    return record


def _normal_method(model: FaultModel, options: dict, seed_entropy) -> dict:
    from repro.core.normal_approximation import (
        berry_esseen_error,
        bound_gain_ratio,
        normal_approximation,
    )
    from repro.stats.normal import k_factor_for_confidence

    versions = int(options["versions"])
    confidence = float(options["confidence"])
    k = k_factor_for_confidence(confidence)
    single = normal_approximation(model, 1)
    system = normal_approximation(model, versions)
    return {
        "confidence": confidence,
        "k_factor": k,
        "normal_bound_single": single.bound(k),
        "normal_bound_system": system.bound(k),
        "normal_bound_ratio": bound_gain_ratio(model, k) if versions == 2 else (
            system.bound(k) / single.bound(k) if single.bound(k) else 1.0
        ),
        "berry_esseen_single": berry_esseen_error(model, 1),
        "berry_esseen_system": berry_esseen_error(model, versions),
    }


def _bounds_method(model: FaultModel, options: dict, seed_entropy) -> dict:
    from repro.core.bounds import (
        confidence_bound_from_moments,
        mean_gain_factor,
        std_gain_factor,
    )
    from repro.core.moments import pfd_moments
    from repro.stats.normal import k_factor_for_confidence

    confidence = float(options["confidence"])
    k = k_factor_for_confidence(confidence)
    single = pfd_moments(model, 1)
    single_bound = single.bound(k)
    guaranteed = confidence_bound_from_moments(single.mean, single.std, model.p_max, k)
    return {
        "confidence": confidence,
        "p_max": model.p_max,
        "mean_gain_factor": mean_gain_factor(model.p_max),
        "std_gain_factor": std_gain_factor(model.p_max),
        "bound_single": single_bound,
        "guaranteed_bound_system": guaranteed,
        "guaranteed_bound_ratio": guaranteed / single_bound if single_bound else 1.0,
    }


def _montecarlo_method(model: FaultModel, options: dict, seed_entropy) -> dict:
    from repro.montecarlo.engine import MonteCarloEngine

    versions = int(options["versions"])
    replications = int(options["replications"])
    chunk_size = options["chunk_size"]
    chunk_size = None if chunk_size is None else int(chunk_size)
    correlation = float(options["correlation"])
    process = None
    if correlation != 0.0:
        from repro.versions.correlated import CopulaDevelopmentProcess

        process = CopulaDevelopmentProcess(model=model, correlation=correlation)
    engine = MonteCarloEngine(
        model, process=process, chunk_size=chunk_size, jobs=int(options["mc_jobs"])
    )
    rng = np.random.default_rng(np.random.SeedSequence(list(seed_entropy)))
    record: dict[str, Any] = {
        "mc_replications": replications,
        "mc_correlation": correlation,
    }
    if versions == 2:
        summary = engine.simulate_paired_streaming(replications, rng=rng).summary()
        summary.pop("replications", None)
        record.update({f"mc_{key}": value for key, value in summary.items()})
    else:
        result = engine.simulate_systems_streaming(replications, versions=versions, rng=rng)
        record.update(
            {
                "mc_mean_system": result.mean_pfd(),
                "mc_std_system": result.std_pfd(),
                "mc_prob_any_fault": result.prob_any_fault(),
                "mc_prob_pfd_zero": result.prob_pfd_zero(),
            }
        )
    return record


_METHODS = {
    "moments": _moments_method,
    "exact": _exact_method,
    "normal": _normal_method,
    "bounds": _bounds_method,
    "montecarlo": _montecarlo_method,
}
