"""Per-point evaluation: resolve the model, dispatch one method via the API.

A study point carries axis assignments (``params``) and a method.  Each
parameter is consumed by exactly one of three layers:

* **base factory parameters** -- keyword arguments of the base scenario's
  factory (e.g. ``n`` or ``model_seed`` for ``many-small-faults``);
* **model transforms** -- ``p_scale`` (``FaultModel.scaled``, the Appendix B
  process-quality knob) and ``q_scale`` (uniform failure-region scaling),
  applied after the base model is built;
* **method options** -- anything the point's method accepts per its
  :class:`~repro.api.registry.MethodRegistry` schema (``versions``,
  ``replications``, ``correlation``, ...); an axis value overrides the
  method's statically configured option.

Anything else is rejected up front by :func:`split_point_params`, so a typo
in a sweep axis fails before any evaluation starts.

The evaluation itself is one :func:`repro.api.evaluate` call -- the study
subsystem owns *which* points to run and how to cache them, not how any
method works.
"""

from __future__ import annotations

import inspect
import warnings
from typing import Any, Mapping

from repro import faults
from repro.api import evaluate as api_evaluate
from repro.api.registry import default_registry
from repro.core.fault_model import FaultModel
from repro.grouping import MODEL_TRANSFORM_DEFAULTS, MODEL_TRANSFORM_PARAMS
from repro.studies.spec import MethodSpec

__all__ = [
    "MODEL_TRANSFORM_PARAMS",
    "canonical_model_params",
    "evaluate_point",
    "evaluate_study_group",
    "evaluate_study_point",
    "resolve_model",
    "split_point_params",
]

# MODEL_TRANSFORM_DEFAULTS / MODEL_TRANSFORM_PARAMS moved to repro.grouping
# (shared with the evaluation service's micro-batcher); re-exported above.


def _base_factory_parameters(base: Mapping) -> tuple[str, ...]:
    if "scenario" not in base:
        return ()
    from repro.experiments.scenarios import SCENARIOS

    factory_params = SCENARIOS[base["scenario"]].parameters()
    # ``rng`` is exposed to specs as ``model_seed`` (an integer, JSON-friendly).
    return tuple("model_seed" if name == "rng" else name for name in factory_params)


def split_point_params(
    base: Mapping,
    params: Mapping[str, Any],
    method: MethodSpec,
    ignorable: frozenset[str] | set[str] = frozenset(),
) -> tuple[dict, dict, dict, dict]:
    """Partition axis assignments into (factory kwargs, transforms, options, ignored).

    ``ignorable`` names parameters that other methods of the same study
    consume; for this method they are collected into the *ignored* bucket
    (and excluded from the point's cache key by the runner).  A parameter no
    layer consumes raises ``ValueError``.
    """
    factory_names = _base_factory_parameters(base)
    method_names = default_registry().get(method.name).option_names
    factory_kwargs: dict[str, Any] = {}
    transforms: dict[str, Any] = {}
    method_overrides: dict[str, Any] = {}
    ignored: dict[str, Any] = {}
    for name, value in params.items():
        if name in MODEL_TRANSFORM_PARAMS:
            transforms[name] = value
        elif name in factory_names:
            factory_kwargs["rng" if name == "model_seed" else name] = value
        elif name in method_names:
            method_overrides[name] = value
        elif name in ignorable:
            ignored[name] = value
        else:
            accepted = sorted(set(factory_names) | set(MODEL_TRANSFORM_PARAMS) | set(method_names))
            raise ValueError(
                f"parameter {name!r} is not understood by the base "
                f"({base.get('scenario', 'inline model')}) or method {method.name!r}; "
                f"accepted here: {', '.join(accepted)}"
            )
    return factory_kwargs, transforms, method_overrides, ignored


def canonical_model_params(base: Mapping, factory_kwargs: Mapping, transforms: Mapping) -> dict:
    """Model-level parameters with every default folded in, spec-facing names.

    This is what the cache payload records: scenario-factory defaults (e.g.
    ``n=200`` for ``many-small-faults`` when no ``n`` axis is swept) and the
    neutral transform defaults are materialised, so (a) the key covers
    everything the resolved model depends on -- changing a factory default
    later cannot serve stale entries -- and (b) a default written out
    explicitly (a one-value ``n`` axis, ``p_scale: [1.0]``) hashes
    identically to leaving it implicit.
    """
    params = dict(MODEL_TRANSFORM_DEFAULTS)
    params.update(transforms)
    if "scenario" in base:
        from repro.experiments.scenarios import SCENARIOS, factory_signature

        signature = factory_signature(SCENARIOS[base["scenario"]].factory)
        for name, parameter in signature.parameters.items():
            key = "model_seed" if name == "rng" else name
            if name in factory_kwargs:
                params[key] = factory_kwargs[name]
            elif parameter.default is not inspect.Parameter.empty:
                params[key] = parameter.default
    return params


def resolve_model(base: Mapping, factory_kwargs: Mapping, transforms: Mapping) -> FaultModel:
    """Build the point's fault model from the base and the model-level params."""
    if "scenario" in base:
        from repro.experiments.scenarios import get_scenario

        model = get_scenario(base["scenario"], **factory_kwargs)
    else:
        model = FaultModel.from_dict(base["model"])
    return model.rescaled(
        p_scale=float(transforms.get("p_scale", 1.0)),
        q_scale=float(transforms.get("q_scale", 1.0)),
    )


def evaluate_study_point(
    base: Mapping,
    params: Mapping[str, Any],
    method: MethodSpec,
    seed_entropy: tuple[int, ...],
) -> dict[str, Any]:
    """Run one method at one sweep point and return its flat metric record.

    ``params`` must contain only parameters this point consumes (the runner
    strips other methods' axes before calling).  Dispatch goes through
    :func:`repro.api.evaluate`; the metric record is the result's metrics,
    exactly what the content-addressed cache stores.
    """
    faults.hit("studies.point")
    factory_kwargs, transforms, overrides, _ = split_point_params(base, params, method)
    model = resolve_model(base, factory_kwargs, transforms)
    options = {**dict(method.options), **overrides}
    result = api_evaluate(model, method.name, seed=tuple(seed_entropy), **options)
    return result.metric_dict()


def evaluate_study_group(
    base: Mapping,
    shared_params: Mapping[str, Any],
    method: MethodSpec,
    variations,
    group_entropy: tuple[int, ...],
    point_entropies,
    wanted=None,
) -> list[tuple[str, Any]]:
    """Run one batchable group of sweep points and return per-point outcomes.

    A group shares everything but the model transforms: ``shared_params``
    are the non-transform axis assignments (factory parameters and method
    option overrides, identical across the group) and ``variations`` the
    per-point ``p_scale`` / ``q_scale`` values.  The base model is resolved
    *once* and the whole group dispatches through
    :func:`repro.api.evaluate.evaluate_sweep_outcomes`: methods with a
    batched kernel evaluate every point in vectorised passes (stochastic
    ones against one shared demand stream seeded from ``group_entropy``);
    methods without one fall back to per-point evaluation seeded from
    ``point_entropies`` -- bitwise-identical to the ungrouped runner path.

    ``wanted`` selects the variation positions whose outcomes the caller
    needs (default: all).  A batched kernel still sees the *whole* sweep --
    the shared structure it derives from the scale set (demand envelope,
    lattice span) must not depend on which siblings the runner already had
    cached -- while the scalar path (no kernel, or the kernel declined)
    evaluates only the wanted points.

    Returns ``("ok", metrics)`` / ``("error", message)`` per wanted
    variation, in ``wanted`` order, so one bad sweep point cannot discard
    its siblings.
    """
    from repro.api.evaluate import evaluate_sweep_outcomes

    factory_kwargs, transforms, overrides, _ = split_point_params(base, shared_params, method)
    if transforms:
        raise ValueError(
            f"group parameters must not contain model transforms, got {sorted(transforms)}"
        )
    model = resolve_model(base, factory_kwargs, {})
    return evaluate_sweep_outcomes(
        model,
        method.name,
        variations,
        options={**dict(method.options), **overrides},
        seed=tuple(group_entropy),
        variation_seeds=tuple(point_entropies),
        subset=wanted,
    )


def evaluate_point(
    base: Mapping,
    params: Mapping[str, Any],
    method: MethodSpec,
    seed_entropy: tuple[int, ...],
) -> dict[str, Any]:
    """Deprecated alias of :func:`evaluate_study_point` (the pre-registry name).

    Kept so existing callers survive the unified-API refactor; emits a
    ``DeprecationWarning`` and returns the identical metric record.
    """
    warnings.warn(
        "repro.studies.evaluate_point is deprecated; use "
        "repro.studies.evaluate_study_point (or repro.evaluate for a resolved model)",
        DeprecationWarning,
        stacklevel=2,
    )
    return evaluate_study_point(base, params, method, seed_entropy)
