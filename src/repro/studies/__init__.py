"""Declarative studies: parameter sweeps, a parallel runner and a result cache.

This subsystem turns a JSON/dict *study spec* into a cached, parallel batch
of model evaluations:

* :mod:`~repro.studies.spec` -- :class:`StudySpec`: base scenario/model,
  sweep axes (grid, zipped, lin/log ranges) and the methods to run per point;
* :mod:`~repro.studies.grid` -- expansion into concrete evaluation points;
* :mod:`~repro.studies.methods` -- per-point model resolution and dispatch
  through the unified evaluation API (:mod:`repro.api`), so any method in
  the :class:`~repro.api.registry.MethodRegistry` is usable in a spec;
* :mod:`~repro.studies.cache` -- content-addressed on-disk result cache
  keyed by point content, so re-runs are incremental;
* :mod:`~repro.studies.runner` -- cache-aware parallel execution with
  per-point reproducible seeds;
* :mod:`~repro.studies.results` -- tidy result table with JSON/JSONL/CSV
  exports and a run summary.

Exposed on the command line as ``python -m repro study run|show``.
"""

from repro.studies.cache import CACHE_FORMAT_VERSION, ResultCache, canonical_json, payload_digest
from repro.studies.grid import StudyPoint, expand_points
from repro.studies.methods import (
    evaluate_point,
    evaluate_study_point,
    resolve_model,
    split_point_params,
)
from repro.studies.results import StudyResult
from repro.studies.runner import PlannedPoint, plan_study, point_seed_entropy, run_study
from repro.studies.spec import MethodSpec, StudySpec, SweepAxis

__all__ = [
    "CACHE_FORMAT_VERSION",
    "MethodSpec",
    "PlannedPoint",
    "ResultCache",
    "StudyPoint",
    "StudyResult",
    "StudySpec",
    "SweepAxis",
    "canonical_json",
    "evaluate_point",
    "evaluate_study_point",
    "expand_points",
    "payload_digest",
    "plan_study",
    "point_seed_entropy",
    "resolve_model",
    "run_study",
    "split_point_params",
]
