"""Expansion of a :class:`~repro.studies.spec.StudySpec` into evaluation points.

One :class:`StudyPoint` is one independent unit of work: a full assignment of
sweep-axis values plus the method to evaluate there.  The expansion order is
deterministic (grid axes vary slowest-first in spec order, then the zipped
rows, then the methods), so result tables are stable across runs and the
runner can rely on it when assembling output.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

from repro.studies.spec import MethodSpec, StudySpec

__all__ = ["StudyPoint", "expand_points"]


@dataclass(frozen=True)
class StudyPoint:
    """A single evaluation: axis assignments + the method to run."""

    params: tuple[tuple[str, Any], ...]
    method: MethodSpec

    def param_dict(self) -> dict[str, Any]:
        return dict(self.params)


def expand_points(spec: StudySpec) -> list[StudyPoint]:
    """Materialise every evaluation point of the study, in canonical order."""
    grid_choices = [[(axis.name, value) for value in axis.values] for axis in spec.grid]
    if spec.zipped:
        zip_rows = [
            tuple((axis.name, axis.values[row]) for axis in spec.zipped)
            for row in range(len(spec.zipped[0].values))
        ]
    else:
        zip_rows = [()]
    points: list[StudyPoint] = []
    for grid_assignment in itertools.product(*grid_choices):
        for zip_assignment in zip_rows:
            params = tuple(sorted(grid_assignment + zip_assignment))
            for method in spec.methods:
                points.append(StudyPoint(params=params, method=method))
    return points
