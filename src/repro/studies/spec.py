"""Declarative study specifications.

A *study* asks many questions of the fault-creation model at once: sweep the
model parameters (fault count, probability scale, impact scale, correlation)
and the engine knobs, and evaluate one or more assessment methods at every
point.  :class:`StudySpec` is the JSON-serialisable description of such a
study; :mod:`repro.studies.grid` expands it into concrete evaluation points
and :mod:`repro.studies.runner` executes them.

A spec (JSON or plain dict) looks like::

    {
      "name": "gain-vs-pmax",
      "description": "bound gain across process quality and fault count",
      "base": {"scenario": "many-small-faults"},
      "sweep": {
        "grid": [
          {"name": "n", "values": [50, 100, 200]},
          {"name": "p_scale", "logspace": [0.1, 1.0, 5]}
        ],
        "zip": [
          {"name": "confidence", "values": [0.95, 0.99]},
          {"name": "replications", "values": [10000, 50000]}
        ]
      },
      "methods": [
        {"name": "moments"},
        {"name": "bounds"},
        {"name": "montecarlo", "replications": 20000}
      ],
      "seed": 20010704
    }

``grid`` axes are fully crossed; ``zip`` axes (all the same length) advance
in lockstep and the resulting rows are crossed with the grid.  ``base`` names
a registered scenario (``{"scenario": ...}``), an inline fault model
(``{"model": {...}}`` in :meth:`repro.core.fault_model.FaultModel.to_dict`
format) or a model file (``{"model_file": "path.json"}``, inlined at load
time so cache keys depend on the model *content*, never on the path).

``methods`` entries name any method registered on the
:class:`repro.api.MethodRegistry` (``moments``, ``exact``, ``normal``,
``bounds``, ``montecarlo``, ``tail-quantile``, plus custom registrations);
their options are resolved against the registry's typed schemas at parse
time, so unknown methods, unknown options and wrong option types all fail
before any evaluation starts.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro.api.registry import default_registry
from repro.stats.rng import DEFAULT_SEED

__all__ = ["MethodSpec", "StudySpec", "SweepAxis"]


def _require_mapping(data: Any, what: str) -> Mapping:
    if not isinstance(data, Mapping):
        raise ValueError(f"{what} must be a JSON object, got {type(data).__name__}")
    return data


def _axis_int(axis_name: str, label: str, value: Any) -> int:
    """An integer axis-generator argument; integral floats pass, 2.5 fails loudly."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"axis {axis_name!r}: {label} must be an integer, got {value!r}")
    if isinstance(value, float) and not value.is_integer():
        raise ValueError(f"axis {axis_name!r}: {label} must be an integer, got {value!r}")
    return int(value)


def _check_scalar(axis_name: str, value: Any) -> Any:
    if isinstance(value, bool) or isinstance(value, str):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ValueError(f"axis {axis_name!r} has a non-finite value {value!r}")
        return float(value)
    raise ValueError(
        f"axis {axis_name!r} values must be JSON scalars, got {type(value).__name__}"
    )


@dataclass(frozen=True)
class SweepAxis:
    """One sweep dimension: a parameter name and its materialised values."""

    name: str
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"axis name must be a non-empty string, got {self.name!r}")
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")
        object.__setattr__(
            self, "values", tuple(_check_scalar(self.name, value) for value in self.values)
        )

    @staticmethod
    def from_dict(data: Mapping) -> "SweepAxis":
        """Parse an axis from its dict form.

        Exactly one generator key is required alongside ``name``:

        * ``values`` -- an explicit list;
        * ``linspace: [start, stop, num]`` -- ``num`` evenly spaced floats,
          endpoints included;
        * ``logspace: [start, stop, num]`` -- ``num`` log-evenly spaced
          floats between the (positive) endpoints themselves;
        * ``range: [start, stop, step]`` -- Python ``range`` semantics
          (integers, ``stop`` exclusive).
        """
        _require_mapping(data, "a sweep axis")
        name = data.get("name")
        generators = [key for key in ("values", "linspace", "logspace", "range") if key in data]
        if len(generators) != 1:
            raise ValueError(
                f"axis {name!r} needs exactly one of values/linspace/logspace/range, "
                f"got {generators or 'none'}"
            )
        kind = generators[0]
        raw = data[kind]
        if isinstance(raw, (str, bytes)) or not isinstance(raw, Sequence):
            raise ValueError(
                f"axis {name!r}: {kind!r} must be a list, got {type(raw).__name__}"
            )
        if kind == "values":
            return SweepAxis(name=name, values=tuple(raw))
        if len(raw) != 3:
            raise ValueError(
                f"axis {name!r}: {kind!r} needs [start, stop, {'step' if kind == 'range' else 'num'}], "
                f"got {len(raw)} element(s)"
            )
        if kind == "range":
            start, stop, step = (
                _axis_int(name, label, part)
                for label, part in zip(("start", "stop", "step"), raw)
            )
            values = tuple(range(start, stop, step))
            if not values:
                raise ValueError(f"axis {name!r}: range({start}, {stop}, {step}) is empty")
            return SweepAxis(name=name, values=values)
        start, stop, num = float(raw[0]), float(raw[1]), _axis_int(name, "num", raw[2])
        if num < 1:
            raise ValueError(f"axis {name!r} needs at least one point, got num={num}")
        if kind == "logspace" and (start <= 0.0 or stop <= 0.0):
            raise ValueError(f"axis {name!r}: logspace endpoints must be positive")
        # numpy guarantees both endpoints land exactly; a hand-rolled
        # start + i*step can miss stop by an ulp, which would poison the
        # content-addressed cache keys built from these floats.
        spaced = np.linspace(start, stop, num) if kind == "linspace" else np.geomspace(start, stop, num)
        return SweepAxis(name=name, values=tuple(float(value) for value in spaced))

    def to_dict(self) -> dict:
        """Canonical dict form (always materialised ``values``)."""
        return {"name": self.name, "values": list(self.values)}


@dataclass(frozen=True)
class MethodSpec:
    """One evaluation method with its (normalised) options.

    Method names and option schemas come from the
    :class:`~repro.api.registry.MethodRegistry`: options are resolved to the
    registry's canonical form (every schema default materialised, every
    override validated) at parse time, so two specs that mean the same
    evaluation hash to the same cache key -- and a method registered via
    :func:`repro.api.register_method` is immediately usable in specs.
    """

    name: str
    options: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        # Raises "unknown method ..." / "... does not accept option ..." /
        # wrong-type ValueErrors with the registry's catalogue in the message.
        resolved = default_registry().resolve_options(self.name, dict(self.options))
        object.__setattr__(self, "options", tuple(sorted(resolved.items())))

    @staticmethod
    def from_dict(data: Mapping) -> "MethodSpec":
        """Parse ``{"name": ..., **options}``."""
        payload = dict(_require_mapping(data, "a method entry"))
        name = payload.pop("name", None)
        if not name:
            raise ValueError(f"method entry needs a 'name': {data!r}")
        return MethodSpec(name=name, options=tuple(payload.items()))

    def option(self, key: str) -> Any:
        """Look up a normalised option value."""
        return dict(self.options)[key]

    def to_dict(self) -> dict:
        return {"name": self.name, **dict(self.options)}


def _parse_base(data: Mapping, spec_dir: Path | None) -> dict:
    _require_mapping(data, "the study base")
    sources = [key for key in ("scenario", "model", "model_file") if key in data]
    if len(sources) != 1:
        raise ValueError(
            f"base needs exactly one of scenario/model/model_file, got {sources or 'none'}"
        )
    if "scenario" in data:
        from repro.experiments.scenarios import scenario_names

        name = data["scenario"]
        if name not in scenario_names():
            raise ValueError(
                f"unknown scenario {name!r}; available: {', '.join(scenario_names())}"
            )
        return {"scenario": name}
    if "model" in data:
        model_dict = dict(_require_mapping(data["model"], "the base 'model'"))
    else:
        path = Path(data["model_file"])
        if spec_dir is not None and not path.is_absolute():
            path = spec_dir / path
        with open(path, "r", encoding="utf-8") as handle:
            model_dict = dict(_require_mapping(json.load(handle), f"model file {str(path)!r}"))
    # Validate eagerly so a bad model fails at parse time, not per point.
    from repro.core.fault_model import FaultModel

    try:
        model = FaultModel.from_dict(model_dict)
    except KeyError as error:
        raise ValueError(f"the base model is missing required key {error}") from None
    return {"model": model.to_dict()}


@dataclass(frozen=True)
class StudySpec:
    """A complete, validated study description."""

    name: str
    base: Mapping[str, Any]
    methods: tuple[MethodSpec, ...]
    grid: tuple[SweepAxis, ...] = ()
    zipped: tuple[SweepAxis, ...] = ()
    seed: int = DEFAULT_SEED
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("a study needs a name")
        # The name becomes the output-table filename stem; reject anything
        # that would only blow up at save time, after the evaluation is paid.
        if any(sep in self.name for sep in ("/", "\\", "\x00")) or self.name in (".", ".."):
            raise ValueError(
                f"study name {self.name!r} must be usable as a file name "
                "(no path separators)"
            )
        if not self.methods:
            raise ValueError("a study needs at least one method")
        axis_names = [axis.name for axis in self.grid] + [axis.name for axis in self.zipped]
        duplicates = {name for name in axis_names if axis_names.count(name) > 1}
        if duplicates:
            raise ValueError(f"duplicate sweep axes: {', '.join(sorted(duplicates))}")
        lengths = {len(axis.values) for axis in self.zipped}
        if len(lengths) > 1:
            raise ValueError(
                f"zipped axes must all have the same length, got {sorted(lengths)}"
            )

    @property
    def point_count(self) -> int:
        """Number of evaluation points the spec expands to."""
        count = len(self.methods)
        for axis in self.grid:
            count *= len(axis.values)
        if self.zipped:
            count *= len(self.zipped[0].values)
        return count

    @staticmethod
    def from_dict(data: Mapping, spec_dir: Path | str | None = None) -> "StudySpec":
        """Parse and validate a spec from its dict / JSON form."""
        _require_mapping(data, "a study spec")
        unknown = set(data) - {"name", "description", "base", "sweep", "methods", "seed"}
        if unknown:
            raise ValueError(f"unknown study keys: {', '.join(sorted(str(k) for k in unknown))}")
        sweep = _require_mapping(data.get("sweep", {}), "'sweep'")
        unknown_sweep = set(sweep) - {"grid", "zip"}
        if unknown_sweep:
            raise ValueError(
                f"unknown sweep keys: {', '.join(sorted(str(k) for k in unknown_sweep))}"
            )
        if "base" not in data:
            raise ValueError("a study needs a 'base' (scenario, model or model_file)")
        axes = {}
        for kind in ("grid", "zip"):
            entries = sweep.get(kind, ())
            if isinstance(entries, (str, bytes)) or not isinstance(entries, Sequence):
                raise ValueError(f"sweep {kind!r} must be a list of axes")
            axes[kind] = tuple(SweepAxis.from_dict(axis) for axis in entries)
        methods = data.get("methods", ())
        if isinstance(methods, (str, bytes)) or not isinstance(methods, Sequence):
            raise ValueError("'methods' must be a list of method entries")
        try:
            seed = int(data.get("seed", DEFAULT_SEED))
        except (TypeError, ValueError):
            raise ValueError(f"'seed' must be an integer, got {data.get('seed')!r}") from None
        return StudySpec(
            name=data.get("name", ""),
            description=data.get("description", ""),
            base=_parse_base(data["base"], Path(spec_dir) if spec_dir is not None else None),
            grid=axes["grid"],
            zipped=axes["zip"],
            methods=tuple(MethodSpec.from_dict(entry) for entry in methods),
            seed=seed,
        )

    @staticmethod
    def from_file(path: str | Path) -> "StudySpec":
        """Load a spec from a JSON file (relative model files resolve beside it)."""
        path = Path(path)
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        return StudySpec.from_dict(data, spec_dir=path.parent)

    def to_dict(self) -> dict:
        """Canonical dict form (axes materialised, options normalised)."""
        return {
            "name": self.name,
            "description": self.description,
            "base": dict(self.base),
            "sweep": {
                "grid": [axis.to_dict() for axis in self.grid],
                "zip": [axis.to_dict() for axis in self.zipped],
            },
            "methods": [method.to_dict() for method in self.methods],
            "seed": self.seed,
        }
