"""Assessor-facing utilities (Sections 5 and 7 of the paper).

The paper's declared audience is safety assessors and regulators who must
translate process evidence into reliability claims.  This subpackage packages
the model's outputs in that vocabulary:

* :mod:`~repro.assessment.confidence` -- formal confidence claims of the form
  "P(PFD <= bound) >= confidence";
* :mod:`~repro.assessment.sil` -- mapping PFD bounds to Safety Integrity
  Levels (the standards-based practice the paper contrasts itself with);
* :mod:`~repro.assessment.beta_factor` -- the common-cause beta-factor view of
  the diversity gain, including the guaranteed bound the paper highlights as
  being of practical use;
* :mod:`~repro.assessment.bayesian` -- Bayesian updating of the model-derived
  PFD distribution with operational evidence (failure-free demands), the
  extension the paper's conclusions call for;
* :mod:`~repro.assessment.report` -- a complete textual / JSON assessment
  report combining all of the above (also exposed by the ``python -m repro``
  command line).
"""

from repro.assessment.bayesian import BayesianPfdAssessment
from repro.assessment.beta_factor import beta_factor, guaranteed_beta_factor
from repro.assessment.confidence import ConfidenceClaim, claim_from_system
from repro.assessment.report import AssessmentReport, SystemAssessment, assess
from repro.assessment.sil import (
    SIL_BANDS,
    SafetyIntegrityLevel,
    required_pfd_bound,
    sil_for_pfd,
    sil_claim_for_system,
)

__all__ = [
    "AssessmentReport",
    "BayesianPfdAssessment",
    "ConfidenceClaim",
    "SIL_BANDS",
    "SafetyIntegrityLevel",
    "SystemAssessment",
    "assess",
    "beta_factor",
    "claim_from_system",
    "guaranteed_beta_factor",
    "required_pfd_bound",
    "sil_claim_for_system",
    "sil_for_pfd",
]
