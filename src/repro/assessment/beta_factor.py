"""The common-cause "beta factor" view of the diversity gain.

In common-cause-failure modelling, the beta factor is the fraction of a
channel's failure probability that is shared with the other channel, so that
``PFD_system = beta * PFD_channel``.  Under the fault-creation model the mean
beta factor is exactly ``mu_2 / mu_1``, and the paper's eq. (4) turns a bound
on the most likely fault (``p_max``) into a *guaranteed* beta factor: "being
able to trust such a reduction factor ('beta-factor' value) would already be a
practical advantage in many safety assessments" (Section 5.1).
"""

from __future__ import annotations

from repro.core.bounds import mean_gain_factor, std_gain_factor
from repro.core.fault_model import FaultModel
from repro.core.moments import single_version_mean, two_version_mean

__all__ = ["beta_factor", "guaranteed_beta_factor", "guaranteed_bound_beta_factor"]


def beta_factor(model: FaultModel) -> float:
    """The model's mean beta factor ``mu_2 / mu_1``.

    Returns 1.0 when the single-version mean PFD is zero (no common-cause
    reduction is meaningful for an already perfect process).
    """
    single = single_version_mean(model)
    if single == 0.0:
        return 1.0
    return two_version_mean(model) / single


def guaranteed_beta_factor(p_max: float) -> float:
    """The eq. (4) guaranteed beta factor: ``beta <= p_max``.

    Valid whatever the detailed ``p_i``/``q_i`` values, given only that no
    fault has introduction probability above ``p_max``.
    """
    return mean_gain_factor(p_max)


def guaranteed_bound_beta_factor(p_max: float) -> float:
    """The eq. (12) guaranteed reduction factor for confidence bounds.

    Any confidence bound for a single version, multiplied by
    ``sqrt(p_max (1 + p_max))``, bounds the two-version system at the same
    confidence -- the "beta factor for bounds" of Section 5.1.
    """
    return std_gain_factor(p_max)
