"""Safety Integrity Level (SIL) banding of PFD claims.

The paper notes that current practice maps reliability requirements into
"Safety Integrity Levels" and SILs into recommended development practices.
The IEC 61508 low-demand bands used here give the standard quantitative
interpretation of those levels in terms of average probability of failure on
demand:

=====  =======================
Level  PFD band (low demand)
=====  =======================
SIL 1  1e-2 <= PFD < 1e-1
SIL 2  1e-3 <= PFD < 1e-2
SIL 3  1e-4 <= PFD < 1e-3
SIL 4  1e-5 <= PFD < 1e-4
=====  =======================
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.assessment.confidence import ConfidenceClaim, claim_from_system
from repro.core.system import OneOutOfRSystem

__all__ = [
    "SafetyIntegrityLevel",
    "SIL_BANDS",
    "sil_for_pfd",
    "required_pfd_bound",
    "sil_claim_for_system",
]


class SafetyIntegrityLevel(IntEnum):
    """IEC 61508 safety integrity levels (low-demand mode)."""

    NONE = 0
    SIL1 = 1
    SIL2 = 2
    SIL3 = 3
    SIL4 = 4


#: Upper PFD bound (exclusive) for each SIL in low-demand mode.
SIL_BANDS: dict[SafetyIntegrityLevel, tuple[float, float]] = {
    SafetyIntegrityLevel.SIL1: (1e-2, 1e-1),
    SafetyIntegrityLevel.SIL2: (1e-3, 1e-2),
    SafetyIntegrityLevel.SIL3: (1e-4, 1e-3),
    SafetyIntegrityLevel.SIL4: (1e-5, 1e-4),
}


def sil_for_pfd(pfd: float) -> SafetyIntegrityLevel:
    """The highest SIL whose band the given PFD satisfies.

    A PFD below the SIL 4 band's lower edge still returns SIL 4 (the standard
    defines no higher level); a PFD of 0.1 or more achieves no SIL.
    """
    if pfd < 0.0:
        raise ValueError(f"pfd must be non-negative, got {pfd}")
    if pfd >= 1e-1:
        return SafetyIntegrityLevel.NONE
    if pfd >= 1e-2:
        return SafetyIntegrityLevel.SIL1
    if pfd >= 1e-3:
        return SafetyIntegrityLevel.SIL2
    if pfd >= 1e-4:
        return SafetyIntegrityLevel.SIL3
    return SafetyIntegrityLevel.SIL4


def required_pfd_bound(level: SafetyIntegrityLevel) -> float:
    """The PFD that must not be reached for a claim at the given SIL.

    E.g. a SIL 2 claim requires ``PFD < 1e-2``; the returned value is that
    exclusive upper limit.
    """
    if level == SafetyIntegrityLevel.NONE:
        return 1.0
    return SIL_BANDS[level][1]


@dataclass(frozen=True)
class SilClaim:
    """A SIL claim together with the confidence claim it is based on."""

    level: SafetyIntegrityLevel
    confidence_claim: ConfidenceClaim

    def describe(self) -> str:
        """Human-readable description of the claim."""
        return f"{self.level.name} supported by: {self.confidence_claim.describe()}"


def sil_claim_for_system(
    system: OneOutOfRSystem, confidence: float = 0.99, method: str = "normal-approximation"
) -> SilClaim:
    """Derive the SIL supportable for a system at the given confidence.

    The claim uses the confidence bound on the PFD (not the mean), in line
    with the paper's argument that assessors implicitly reason about the
    probability that the software meets its reliability requirement.
    """
    claim = claim_from_system(system, confidence, method)
    return SilClaim(level=sil_for_pfd(claim.bound), confidence_claim=claim)
