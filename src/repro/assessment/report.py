"""A complete, human-readable assessment report for a diverse system.

Pulls together everything the paper offers an assessor -- the moments, the
guaranteed ``p_max`` bounds, the probability of no common fault, confidence
bounds (exact and normal-approximation), SIL banding and the beta factor --
into a single structured report that can be rendered as text or serialised to
a plain dictionary.  This is the "what would current practice do with these
results" artefact the paper's Section 7 calls for ("Assessors can use our
results ... for comparison with their current practice in judging diversity").

The numbers themselves come from the unified evaluation API: ``assess``
dispatches one :func:`repro.api.evaluate_batch` over the registered
``moments``, ``exact`` and ``normal`` methods and assembles the report from
their typed results, so the report, the CLI and study tables can never
disagree about what a method computes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import evaluate_batch
from repro.assessment.beta_factor import beta_factor, guaranteed_beta_factor, guaranteed_bound_beta_factor
from repro.assessment.confidence import ConfidenceClaim
from repro.assessment.sil import SafetyIntegrityLevel, sil_for_pfd
from repro.core.fault_model import FaultModel
from repro.core.gain import DiversityGainSummary, diversity_gain_summary
from repro.core.no_common_faults import prob_any_common_fault

__all__ = ["SystemAssessment", "AssessmentReport", "assess"]


@dataclass(frozen=True)
class SystemAssessment:
    """Assessment of one system (single version or 1-out-of-2)."""

    label: str
    mean_pfd: float
    std_pfd: float
    prob_any_fault: float
    exact_claim: ConfidenceClaim
    normal_claim: ConfidenceClaim
    normal_error_bound: float
    sil: SafetyIntegrityLevel

    def lines(self) -> list[str]:
        """Render the assessment as indented report lines."""
        return [
            f"{self.label}:",
            f"  mean PFD                      {self.mean_pfd:.3e}",
            f"  std of PFD                    {self.std_pfd:.3e}",
            f"  P(at least one fault)         {self.prob_any_fault:.5f}",
            f"  {self.exact_claim.confidence:.0%} bound (exact)            {self.exact_claim.bound:.3e}",
            f"  {self.normal_claim.confidence:.0%} bound (normal approx.)   {self.normal_claim.bound:.3e}"
            f"  [CDF error <= {self.normal_error_bound:.2f}]",
            f"  supportable SIL               {self.sil.name}",
        ]


@dataclass(frozen=True)
class AssessmentReport:
    """The full report: both systems plus the diversity-gain section."""

    model: FaultModel
    confidence: float
    single: SystemAssessment
    pair: SystemAssessment
    gain: DiversityGainSummary

    def to_dict(self) -> dict:
        """Plain-dictionary form (JSON-serialisable)."""
        def system_dict(assessment: SystemAssessment) -> dict:
            return {
                "mean_pfd": assessment.mean_pfd,
                "std_pfd": assessment.std_pfd,
                "prob_any_fault": assessment.prob_any_fault,
                "exact_bound": assessment.exact_claim.bound,
                "normal_bound": assessment.normal_claim.bound,
                "normal_error_bound": assessment.normal_error_bound,
                "sil": assessment.sil.name,
            }

        return {
            "confidence": self.confidence,
            "p_max": self.model.p_max,
            "fault_count": self.model.n,
            "single_version": system_dict(self.single),
            "one_out_of_two": system_dict(self.pair),
            "gain": self.gain.as_dict(),
            "guaranteed_beta_factor": guaranteed_beta_factor(self.model.p_max),
            "guaranteed_bound_reduction": guaranteed_bound_beta_factor(self.model.p_max),
            "beta_factor": beta_factor(self.model),
        }

    def render(self) -> str:
        """Render the whole report as text."""
        lines: list[str] = [
            "Diverse-system assessment (fault-creation-process model, Popov & Strigini 2001)",
            f"  potential faults: {self.model.n}, p_max = {self.model.p_max:.4f}, "
            f"confidence level {self.confidence:.0%}",
            "",
        ]
        lines.extend(self.single.lines())
        lines.append("")
        lines.extend(self.pair.lines())
        lines.extend(
            [
                "",
                "Gain from diversity:",
                f"  mean ratio mu2/mu1            {self.gain.mean_ratio:.4f}"
                f"   (guaranteed <= {self.gain.guaranteed_mean_ratio:.4f}, eq. 4)",
                f"  risk ratio P(N2>0)/P(N1>0)    {self.gain.risk_ratio:.4f}   (eq. 10)",
                f"  bound ratio at {self.confidence:.0%}            {self.gain.bound_ratio:.4f}"
                f"   (guaranteed <= {self.gain.guaranteed_bound_ratio:.4f}, eq. 12)",
                f"  equivalent beta factor        {self.gain.beta_factor:.4f}",
                f"  independence claim would give mu2 = {self.gain.independence_mean:.3e}; "
                f"model gives {self.gain.mean_pair:.3e}"
                + (" (worse than independence)" if self.gain.independence_is_optimistic else ""),
            ]
        )
        return "\n".join(lines)


def _assess_system(
    label: str,
    model: FaultModel,
    versions: int,
    confidence: float,
    moments: dict,
    exact: dict,
    normal: dict,
) -> SystemAssessment:
    """Assemble one system's assessment from registry-method metrics."""
    suffix = "single" if versions == 1 else "system"
    exact_claim = ConfidenceClaim(
        bound=max(exact["exact_percentile"], 0.0),
        confidence=confidence,
        method="exact-distribution",
    )
    normal_claim = ConfidenceClaim(
        bound=max(normal[f"normal_bound_{suffix}"], 0.0),
        confidence=confidence,
        method="normal-approximation",
    )
    return SystemAssessment(
        label=label,
        mean_pfd=moments[f"mean_{suffix}"],
        std_pfd=moments[f"std_{suffix}"],
        prob_any_fault=prob_any_common_fault(model, versions),
        exact_claim=exact_claim,
        normal_claim=normal_claim,
        normal_error_bound=normal[f"berry_esseen_{suffix}"],
        sil=sil_for_pfd(exact_claim.bound),
    )


def assess(model: FaultModel, confidence: float = 0.99) -> AssessmentReport:
    """Produce the full assessment report for a fault-creation model.

    The metric values are obtained through the unified evaluation API (one
    ``evaluate_batch`` over the ``moments``, ``exact`` and ``normal``
    registered methods), so they are bitwise the numbers ``repro evaluate``
    and study tables report for the same model and options.

    Parameters
    ----------
    model:
        The fault-creation model describing the development process and the
        problem's potential faults.
    confidence:
        Confidence level used for every bound in the report.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    moments, exact_single, exact_pair, normal = (
        result.metric_dict()
        for result in evaluate_batch(
            model,
            [
                ("moments", {"versions": 2}),
                ("exact", {"versions": 1, "level": confidence}),
                ("exact", {"versions": 2, "level": confidence}),
                ("normal", {"versions": 2, "confidence": confidence}),
            ],
        )
    )
    single = _assess_system(
        "Single version", model, 1, confidence, moments, exact_single, normal
    )
    pair = _assess_system(
        "1-out-of-2 diverse system", model, 2, confidence, moments, exact_pair, normal
    )
    return AssessmentReport(
        model=model,
        confidence=confidence,
        single=single,
        pair=pair,
        gain=diversity_gain_summary(model, confidence),
    )
