"""Bayesian assessment of a system's PFD from operational evidence.

The paper's conclusions recommend "combining this kind of models with
inference from observations during a specific project ... it would seem a good
idea to apply a family of prior distributions for a product's reliability
parameters that are based on this plausible physical model rather than chosen
... for computational convenience only."

:class:`BayesianPfdAssessment` implements exactly that: the *prior* for the
system PFD is the (discrete) distribution implied by the fault-creation model,
and observing ``t`` failure-free demands re-weights each possible PFD value
``theta`` by the likelihood ``(1 - theta)^t`` (demands are assumed independent
given the PFD).  Observed failures are supported through the general binomial
likelihood.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fault_model import FaultModel
from repro.core.pfd_distribution import exact_pfd_distribution
from repro.stats.discrete import DiscreteDistribution

__all__ = ["BayesianPfdAssessment"]


@dataclass(frozen=True)
class BayesianPfdAssessment:
    """Bayesian inference on a system's PFD with a model-derived prior.

    Parameters
    ----------
    prior:
        Discrete prior distribution over possible PFD values, normally obtained
        from :func:`repro.core.pfd_distribution.exact_pfd_distribution`.
    """

    prior: DiscreteDistribution

    @staticmethod
    def from_model(
        model: FaultModel, versions: int = 2, max_support: int | None = 4096
    ) -> "BayesianPfdAssessment":
        """Build the assessment with the fault-creation model's PFD distribution as prior."""
        return BayesianPfdAssessment(prior=exact_pfd_distribution(model, versions, max_support))

    def posterior(self, demands: int, failures: int = 0) -> DiscreteDistribution:
        """Posterior PFD distribution after observing operational demands.

        Parameters
        ----------
        demands:
            Number of observed demands.
        failures:
            Number of observed system failures among them (default 0, the
            failure-free case emphasised by the paper).
        """
        if demands < 0:
            raise ValueError(f"demands must be non-negative, got {demands}")
        if not 0 <= failures <= demands:
            raise ValueError(
                f"failures must be between 0 and demands ({demands}), got {failures}"
            )
        support = self.prior.support
        successes = demands - failures
        # Likelihood of each candidate PFD value under a binomial observation.
        likelihood = np.where(
            (support > 0.0) | (failures == 0),
            np.power(support, failures) * np.power(1.0 - support, successes),
            0.0,
        )
        weights = self.prior.probabilities * likelihood
        total = weights.sum()
        if total <= 0.0:
            raise ValueError(
                "the observations have zero probability under every prior support point; "
                "the prior and the evidence are incompatible"
            )
        return DiscreteDistribution(support, weights / total)

    def posterior_mean(self, demands: int, failures: int = 0) -> float:
        """Posterior mean PFD."""
        return self.posterior(demands, failures).mean()

    def posterior_bound(self, confidence: float, demands: int, failures: int = 0) -> float:
        """Posterior confidence bound on the PFD (posterior quantile)."""
        return self.posterior(demands, failures).quantile(confidence)

    def prob_requirement_met(self, required_bound: float, demands: int, failures: int = 0) -> float:
        """Posterior probability that the PFD does not exceed ``required_bound``."""
        if required_bound < 0.0:
            raise ValueError(f"required_bound must be non-negative, got {required_bound}")
        posterior = self.posterior(demands, failures)
        return float(posterior.cdf(required_bound))

    def demands_needed_for_confidence(
        self, required_bound: float, confidence: float, max_demands: int = 10_000_000
    ) -> int | None:
        """Smallest number of failure-free demands establishing the requirement.

        Returns the smallest ``t`` such that the posterior probability of
        ``PFD <= required_bound`` after ``t`` failure-free demands reaches
        ``confidence``, or ``None`` if even ``max_demands`` failure-free
        demands would not suffice (e.g. because the prior puts too much mass
        exactly at large PFD values).
        """
        if not 0.0 < confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {confidence}")
        if self.prob_requirement_met(required_bound, 0) >= confidence:
            return 0
        low, high = 0, 1
        # Exponential search for an upper bracket, then bisection.
        while high <= max_demands and self.prob_requirement_met(required_bound, high) < confidence:
            low, high = high, high * 2
        if high > max_demands:
            if self.prob_requirement_met(required_bound, max_demands) < confidence:
                return None
            high = max_demands
        while low + 1 < high:
            middle = (low + high) // 2
            if self.prob_requirement_met(required_bound, middle) >= confidence:
                high = middle
            else:
                low = middle
        return high
