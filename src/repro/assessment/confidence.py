"""Confidence claims about the probability of failure on demand.

Section 5 of the paper phrases reliability claims as "x is a 99% confidence
bound on Theta", meaning ``P(Theta <= x) = 0.99``.  :class:`ConfidenceClaim`
is that statement as a value object, and :func:`claim_from_system` derives one
from a system facade using either the exact PFD distribution or the normal
approximation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.system import OneOutOfRSystem

__all__ = ["ConfidenceClaim", "claim_from_system"]


@dataclass(frozen=True)
class ConfidenceClaim:
    """The claim ``P(PFD <= bound) >= confidence``.

    Attributes
    ----------
    bound:
        The claimed upper bound on the PFD.
    confidence:
        The probability with which the bound holds.
    method:
        How the claim was derived ("normal-approximation", "exact-distribution"
        or "pmax-bound").
    """

    bound: float
    confidence: float
    method: str

    def __post_init__(self) -> None:
        if self.bound < 0.0:
            raise ValueError(f"bound must be non-negative, got {self.bound}")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {self.confidence}")

    def satisfies(self, required_bound: float) -> bool:
        """True when the claimed bound meets a required bound ``theta_R``."""
        return self.bound <= required_bound

    def describe(self) -> str:
        """A human-readable sentence in the paper's phrasing."""
        return (
            f"P(PFD <= {self.bound:.3e}) >= {self.confidence:.4f} "
            f"(derived via {self.method})"
        )


def claim_from_system(
    system: OneOutOfRSystem, confidence: float, method: str = "normal-approximation"
) -> ConfidenceClaim:
    """Derive a confidence claim for a system.

    Parameters
    ----------
    system:
        A :class:`~repro.core.system.SingleVersionSystem` or
        :class:`~repro.core.system.OneOutOfTwoSystem` (or any
        :class:`~repro.core.system.OneOutOfRSystem`).
    confidence:
        Required confidence level.
    method:
        ``"normal-approximation"`` (Section 5) or ``"exact-distribution"``
        (exact convolution of the PFD distribution).
    """
    if method == "normal-approximation":
        bound = system.normal_bound(confidence)
    elif method == "exact-distribution":
        bound = system.exact_bound(confidence)
    else:
        raise ValueError(
            f"unknown method {method!r}; expected 'normal-approximation' or 'exact-distribution'"
        )
    return ConfidenceClaim(bound=max(bound, 0.0), confidence=confidence, method=method)
