"""Version-generation substrate: the fault creation process itself (Section 2.2).

"Developing versions for a given application under a regime of separate
development means choosing, randomly and independently, possible subsets of
this set of possible faults."  This subpackage simulates exactly that:

* :class:`~repro.versions.version.DevelopedVersion` -- a concrete version,
  i.e. a subset of the potential faults, with its PFD;
* :class:`~repro.versions.generation.IndependentDevelopmentProcess` -- the
  paper's baseline process: every fault is introduced independently with
  probability ``p_i``;
* :class:`~repro.versions.correlated.CommonCauseDevelopmentProcess` and
  :class:`~repro.versions.correlated.CopulaDevelopmentProcess` -- relaxations
  of the independence assumption used for the Section 6.1 sensitivity study;
* :class:`~repro.versions.forced_diversity.ForcedDiversityPair` -- two
  channels developed by *different* processes (different ``p`` vectors over
  the same fault population), the "forced diversity" scenario the paper treats
  as out of scope but motivates studying.
"""

from repro.versions.correlated import (
    CommonCauseDevelopmentProcess,
    CopulaDevelopmentProcess,
)
from repro.versions.forced_diversity import ForcedDiversityPair
from repro.versions.generation import DevelopmentProcess, IndependentDevelopmentProcess
from repro.versions.version import DevelopedVersion, VersionPair

__all__ = [
    "CommonCauseDevelopmentProcess",
    "CopulaDevelopmentProcess",
    "DevelopedVersion",
    "DevelopmentProcess",
    "ForcedDiversityPair",
    "IndependentDevelopmentProcess",
    "VersionPair",
]
