"""Forced diversity: channels developed by different processes.

The paper restricts its analysis to "non-forced" diversity -- the two channels
are developed by the *same* process, just separately -- and argues this is a
worst case for real systems in which forced or functional diversity is added.
This module provides the natural extension used to explore that claim: the two
channels draw from the same population of potential faults (the same failure
regions ``q_i``), but with *different* introduction probabilities
``p_i^A`` and ``p_i^B`` (e.g. because the teams use different methods, tools
or languages that make different mistakes likely).

With independent developments the probability that fault ``i`` is common to
both channels is ``p_i^A * p_i^B``, so the analytic results of the core model
generalise directly and are provided here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fault_model import FaultModel
from repro.versions.generation import IndependentDevelopmentProcess
from repro.versions.version import VersionPair

__all__ = ["ForcedDiversityPair"]


@dataclass(frozen=True)
class ForcedDiversityPair:
    """A 1-out-of-2 system whose channels come from different development processes.

    Parameters
    ----------
    channel_a_model, channel_b_model:
        Fault-creation models for the two channels.  They must describe the
        same population of potential faults: equal length and equal ``q``
        vectors (the failure regions are properties of the *problem*, not of
        the team), but may have different ``p`` vectors.
    """

    channel_a_model: FaultModel
    channel_b_model: FaultModel

    def __post_init__(self) -> None:
        if self.channel_a_model.n != self.channel_b_model.n:
            raise ValueError("both channels must share the same population of potential faults")
        if not np.allclose(self.channel_a_model.q, self.channel_b_model.q):
            raise ValueError(
                "the q vectors of the two channels must be identical: failure regions "
                "are properties of the problem, not of the development team"
            )

    @property
    def n(self) -> int:
        """Number of potential faults."""
        return self.channel_a_model.n

    @property
    def q(self) -> np.ndarray:
        """Shared failure-region probabilities."""
        return self.channel_a_model.q

    # ------------------------------------------------------------------ #
    # Analytic results (independent developments)
    # ------------------------------------------------------------------ #
    def common_fault_probabilities(self) -> np.ndarray:
        """``p_i^A * p_i^B`` -- probability of each fault being common to both channels."""
        return self.channel_a_model.p * self.channel_b_model.p

    def mean_system_pfd(self) -> float:
        """``E[Theta_2] = sum p_i^A p_i^B q_i``."""
        return float(np.sum(self.common_fault_probabilities() * self.q))

    def variance_system_pfd(self) -> float:
        """``Var[Theta_2] = sum c_i (1 - c_i) q_i^2`` with ``c_i = p_i^A p_i^B``."""
        common = self.common_fault_probabilities()
        return float(np.sum(common * (1.0 - common) * self.q**2))

    def std_system_pfd(self) -> float:
        """Standard deviation of the system PFD."""
        return float(np.sqrt(self.variance_system_pfd()))

    def prob_no_common_fault(self) -> float:
        """``P(N_2 = 0) = prod (1 - p_i^A p_i^B)``."""
        return float(np.prod(1.0 - self.common_fault_probabilities()))

    def prob_any_common_fault(self) -> float:
        """``P(N_2 > 0)``."""
        return 1.0 - self.prob_no_common_fault()

    def mean_channel_pfds(self) -> tuple[float, float]:
        """``(E[Theta_1^A], E[Theta_1^B])`` -- mean PFD of each channel alone."""
        return (
            float(np.sum(self.channel_a_model.p * self.q)),
            float(np.sum(self.channel_b_model.p * self.q)),
        )

    def mean_gain_over_best_channel(self) -> float:
        """Ratio of the system mean PFD to the *better* channel's mean PFD.

        The conservative comparison an assessor would make: diversity is
        compared against simply deploying the best single channel.
        """
        best_channel = min(self.mean_channel_pfds())
        if best_channel == 0.0:
            return 1.0
        return self.mean_system_pfd() / best_channel

    def as_symmetric_model(self) -> FaultModel:
        """An equivalent symmetric (non-forced) model with ``p_i = sqrt(p_i^A p_i^B)``.

        The symmetric model has the same common-fault probabilities, and hence
        the same system-level quantities, as the forced-diversity pair; it is
        the bridge back to the paper's formulas.
        """
        return FaultModel(
            p=np.sqrt(self.common_fault_probabilities()),
            q=self.q.copy(),
            names=self.channel_a_model.names,
            strict=self.channel_a_model.strict,
        )

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def sample_pair(self, rng: np.random.Generator) -> VersionPair:
        """Develop one version per channel, independently."""
        process_a = IndependentDevelopmentProcess(self.channel_a_model)
        process_b = IndependentDevelopmentProcess(self.channel_b_model)
        return VersionPair(
            channel_a=process_a.sample_version(rng),
            channel_b=process_b.sample_version(rng),
        )

    def sample_system_pfds(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Sample ``count`` system PFD values (independent channel developments)."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        matrix_a = rng.random((count, self.n)) < self.channel_a_model.p[np.newaxis, :]
        matrix_b = rng.random((count, self.n)) < self.channel_b_model.p[np.newaxis, :]
        return (matrix_a & matrix_b) @ self.q
