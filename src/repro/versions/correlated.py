"""Development processes with correlated fault introduction (Section 6.1).

The paper's independence-of-mistakes assumption is acknowledged to be
"obviously false" in general; Section 6.1 discusses both positive correlation
(mistakes sharing a common conceptual error) and negative correlation (effort
spent avoiding one class of faults comes at the expense of others).  Two
concrete relaxations are provided so the library can quantify how much the
independent-model predictions move when the assumption is violated:

* :class:`CommonCauseDevelopmentProcess` -- a two-state mixture: with
  probability ``bad_day_weight`` the development happens in a "degraded" state
  in which all fault probabilities are inflated, otherwise in a "careful"
  state in which they are deflated.  The mixture is constructed so each
  fault's *marginal* probability stays exactly ``p_i``; the shared state
  induces positive correlation between faults within a version (and, when
  ``shared_across_channels`` is set, between the two channels of a pair --
  modelling organisational common causes such as a flawed specification).
* :class:`CopulaDevelopmentProcess` -- a Gaussian one-factor copula: a latent
  standard-normal factor shared by all faults of a version shifts each fault's
  effective introduction threshold.  ``correlation`` is the pairwise latent
  correlation; marginals are again exactly ``p_i``.  Negative values model the
  resource-competition effect described in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.core.fault_model import FaultModel
from repro.versions.generation import DevelopmentProcess
from repro.versions.version import DevelopedVersion, VersionPair

__all__ = ["CommonCauseDevelopmentProcess", "CopulaDevelopmentProcess"]


@dataclass(frozen=True)
class CommonCauseDevelopmentProcess(DevelopmentProcess):
    """Mixture-of-states process with exact marginals and positive correlation.

    Parameters
    ----------
    model:
        The fault-creation model providing marginal probabilities ``p_i``.
    bad_day_weight:
        Probability ``w`` of the degraded development state.
    inflation:
        Multiplier applied to every ``p_i`` in the degraded state (must keep
        all inflated probabilities <= 1).  The careful-state probabilities are
        chosen as ``p_i (1 - w * inflation) / (1 - w)`` so that the marginal
        probability of each fault remains exactly ``p_i``.
    shared_across_channels:
        When ``True``, both channels of a pair produced by
        :meth:`sample_pair` / :meth:`sample_pairs` experience the *same*
        development state, modelling a common cause acting on both teams
        (e.g. a flawed common specification).  When ``False`` the state is
        redrawn independently per version.
    """

    model: FaultModel
    bad_day_weight: float
    inflation: float
    shared_across_channels: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.bad_day_weight < 1.0:
            raise ValueError(f"bad_day_weight must be in (0, 1), got {self.bad_day_weight}")
        if self.inflation < 1.0:
            raise ValueError(f"inflation must be >= 1, got {self.inflation}")
        if np.any(self.model.p * self.inflation > 1.0):
            raise ValueError("inflation pushes some fault probability above 1")
        careful = self._careful_probabilities()
        if np.any(careful < 0.0):
            raise ValueError(
                "the requested bad_day_weight and inflation leave no admissible "
                "careful-state probabilities (they would be negative)"
            )

    def _degraded_probabilities(self) -> np.ndarray:
        return self.model.p * self.inflation

    def _careful_probabilities(self) -> np.ndarray:
        w = self.bad_day_weight
        return self.model.p * (1.0 - w * self.inflation) / (1.0 - w)

    def sample_fault_matrix(self, rng: np.random.Generator, count: int) -> np.ndarray:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return np.zeros((0, self.model.n), dtype=bool)
        # One draw per call, consumed row-by-row (column 0 selects the
        # development state, the rest drive the faults), so chunked sampling
        # consumes the stream identically to a single monolithic call --
        # preserving the engine's bitwise chunked-equals-in-memory guarantee.
        uniforms = rng.random((count, self.model.n + 1))
        degraded = uniforms[:, 0] < self.bad_day_weight
        probabilities = np.where(
            degraded[:, np.newaxis],
            self._degraded_probabilities()[np.newaxis, :],
            self._careful_probabilities()[np.newaxis, :],
        )
        return uniforms[:, 1:] < probabilities

    def sample_pairs(self, rng: np.random.Generator, count: int) -> list[VersionPair]:
        """Develop ``count`` version pairs, honouring ``shared_across_channels``."""
        if not self.shared_across_channels:
            return super().sample_pairs(rng, count)
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        pairs: list[VersionPair] = []
        degraded_flags = rng.random(count) < self.bad_day_weight
        degraded_p = self._degraded_probabilities()
        careful_p = self._careful_probabilities()
        for degraded in degraded_flags:
            probabilities = degraded_p if degraded else careful_p
            matrix = rng.random((2, self.model.n)) < probabilities[np.newaxis, :]
            pairs.append(
                VersionPair(
                    channel_a=DevelopedVersion(model=self.model, fault_present=matrix[0]),
                    channel_b=DevelopedVersion(model=self.model, fault_present=matrix[1]),
                )
            )
        return pairs

    def sample_pair(self, rng: np.random.Generator) -> VersionPair:
        """Develop a single pair, honouring ``shared_across_channels``."""
        return self.sample_pairs(rng, 1)[0]

    def sample_system_pfds(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Sample 1-out-of-2 system PFDs, honouring ``shared_across_channels``."""
        if not self.shared_across_channels:
            return super().sample_system_pfds(rng, count)
        pairs = self.sample_pairs(rng, count)
        return np.array([pair.system_pfd() for pair in pairs])


@dataclass(frozen=True)
class CopulaDevelopmentProcess(DevelopmentProcess):
    """Gaussian one-factor copula over the fault-introduction indicators.

    Fault ``i`` is present when ``sqrt(|rho|) * sign * Z + sqrt(1 - |rho|) * e_i``
    falls below the normal quantile of ``p_i``, where ``Z`` is a latent factor
    shared by the whole version and ``e_i`` are independent standard normals.
    ``correlation`` in ``(-1, 1)`` sets the latent pairwise correlation;
    positive values make faults co-occur, negative values make them compete.
    Marginals remain exactly ``p_i``.
    """

    model: FaultModel
    correlation: float

    def __post_init__(self) -> None:
        if not -1.0 < self.correlation < 1.0:
            raise ValueError(f"correlation must be in (-1, 1), got {self.correlation}")

    def sample_fault_matrix(self, rng: np.random.Generator, count: int) -> np.ndarray:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return np.zeros((0, self.model.n), dtype=bool)
        thresholds = sps.norm.ppf(np.clip(self.model.p, 1e-15, 1.0 - 1e-15))
        loading = np.sqrt(abs(self.correlation))
        residual_scale = np.sqrt(1.0 - abs(self.correlation))
        # One draw per call, consumed row-by-row (column 0 is the shared
        # factor), so chunked sampling is bitwise-identical to monolithic.
        normals = rng.standard_normal((count, self.model.n + 1))
        factor = normals[:, :1]
        residuals = normals[:, 1:]
        if self.correlation >= 0.0:
            latent = loading * factor + residual_scale * residuals
        else:
            # Alternate the sign of the loading across faults so that pairs of
            # faults receive opposite pushes from the common factor, producing
            # negative pairwise dependence while keeping marginals exact.
            signs = np.where(np.arange(self.model.n) % 2 == 0, 1.0, -1.0)
            latent = loading * factor * signs[np.newaxis, :] + residual_scale * residuals
        matrix = latent < thresholds[np.newaxis, :]
        # Faults with p_i == 0 or 1 are handled exactly.
        matrix[:, self.model.p <= 0.0] = False
        matrix[:, self.model.p >= 1.0] = True
        return matrix
