"""Developed versions and version pairs.

A *developed version* is the outcome of one run of the fault creation process:
a subset of the potential faults is present in it.  Under the paper's
assumptions (non-overlapping failure regions) its PFD is the sum of the
``q_i`` of the faults present.  A *version pair* is two versions intended for
the two channels of a 1-out-of-2 system; the pair's PFD is the sum of the
``q_i`` of the faults common to both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fault_model import FaultModel

__all__ = ["DevelopedVersion", "VersionPair"]


@dataclass(frozen=True)
class DevelopedVersion:
    """A single developed version: which potential faults it actually contains.

    Parameters
    ----------
    model:
        The fault-creation model the version was sampled from.
    fault_present:
        Boolean vector of length ``model.n``; ``True`` where the fault is
        present in this version.
    """

    model: FaultModel
    fault_present: np.ndarray

    def __post_init__(self) -> None:
        fault_present = np.asarray(self.fault_present, dtype=bool)
        if fault_present.ndim != 1 or fault_present.size != self.model.n:
            raise ValueError(
                f"fault_present must be a boolean vector of length {self.model.n}, "
                f"got shape {fault_present.shape}"
            )
        object.__setattr__(self, "fault_present", fault_present)

    @property
    def fault_count(self) -> int:
        """Number of faults present in the version (a realisation of ``N_1``)."""
        return int(np.sum(self.fault_present))

    @property
    def fault_indices(self) -> np.ndarray:
        """Indices of the faults present."""
        return np.where(self.fault_present)[0]

    @property
    def fault_names(self) -> tuple[str, ...]:
        """Names of the faults present."""
        return tuple(self.model.names[i] for i in self.fault_indices)

    def pfd(self) -> float:
        """The version's probability of failure on demand (sum of ``q_i`` present)."""
        return float(np.sum(self.model.q[self.fault_present]))

    def is_fault_free(self) -> bool:
        """True when the version contains no fault at all."""
        return not bool(np.any(self.fault_present))

    def fails_on(self, demand_in_region: np.ndarray) -> np.ndarray:
        """Whether the version fails on each of a batch of demands.

        Parameters
        ----------
        demand_in_region:
            Boolean array of shape ``(m, n)`` where entry ``(d, i)`` says
            whether demand ``d`` lies in fault ``i``'s failure region (as
            produced by :mod:`repro.demandspace`).

        Returns
        -------
        Boolean array of length ``m``: the version fails on a demand exactly
        when the demand lies in the failure region of at least one fault the
        version contains.
        """
        membership = np.asarray(demand_in_region, dtype=bool)
        if membership.ndim != 2 or membership.shape[1] != self.model.n:
            raise ValueError(
                f"demand_in_region must have shape (m, {self.model.n}), got {membership.shape}"
            )
        return np.any(membership[:, self.fault_present], axis=1)

    def common_faults(self, other: "DevelopedVersion") -> np.ndarray:
        """Boolean vector of the faults present in both this version and ``other``."""
        if other.model.n != self.model.n:
            raise ValueError("versions must be drawn from fault populations of the same size")
        return self.fault_present & other.fault_present


@dataclass(frozen=True)
class VersionPair:
    """Two developed versions destined for the two channels of a 1-out-of-2 system."""

    channel_a: DevelopedVersion
    channel_b: DevelopedVersion

    def __post_init__(self) -> None:
        if self.channel_a.model.n != self.channel_b.model.n:
            raise ValueError("both channels must be drawn from fault populations of the same size")

    @property
    def common_fault_present(self) -> np.ndarray:
        """Boolean vector of faults present in both channels."""
        return self.channel_a.common_faults(self.channel_b)

    @property
    def common_fault_count(self) -> int:
        """Number of common faults (a realisation of ``N_2``)."""
        return int(np.sum(self.common_fault_present))

    def system_pfd(self) -> float:
        """PFD of the 1-out-of-2 system: sum of ``q_i`` over the common faults."""
        return float(np.sum(self.channel_a.model.q[self.common_fault_present]))

    def has_common_fault(self) -> bool:
        """True when at least one fault is common to both channels."""
        return bool(np.any(self.common_fault_present))

    def system_fails_on(self, demand_in_region: np.ndarray) -> np.ndarray:
        """Whether the 1-out-of-2 system fails on each of a batch of demands.

        The system fails on a demand exactly when *both* channels fail on it
        (perfect OR adjudication of shut-down outputs).
        """
        return self.channel_a.fails_on(demand_in_region) & self.channel_b.fails_on(demand_in_region)
