"""Development processes: sampling versions from the fault-creation model.

The baseline process of the paper introduces each fault independently with its
probability ``p_i`` ("it is as though the design team, faced with the
possibility of inserting a fault, tossed dice to decide whether to insert it
or not", Section 2.2).  Alternative processes relaxing the independence
assumption live in :mod:`repro.versions.correlated`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.fault_model import FaultModel
from repro.versions.version import DevelopedVersion, VersionPair

__all__ = ["DevelopmentProcess", "IndependentDevelopmentProcess", "matrix_pfds"]


def matrix_pfds(matrix: np.ndarray, q: np.ndarray) -> np.ndarray:
    """PFD of each row of a fault-presence matrix: ``matrix @ q``, shape-stably.

    Uses ``einsum`` rather than ``@`` because BLAS matrix-vector products are
    not bitwise row-stable across block sizes (the summation order can change
    with the number of rows), which would break the guarantee that chunked
    simulation reproduces the in-memory path exactly.  ``einsum`` reduces each
    row independently with a fixed order -- and skips the bool-to-float
    matrix copy, which also makes it several times faster here.
    """
    return np.einsum("ij,j->i", matrix, q)


class DevelopmentProcess:
    """Abstract base class for development processes.

    A development process knows how to produce fault-presence indicator
    matrices; everything else (PFD evaluation, pairing, statistics) is shared.
    """

    #: The fault-creation model the process draws from.
    model: FaultModel

    def sample_fault_matrix(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Sample a ``(count, n)`` boolean matrix of fault presence indicators."""
        raise NotImplementedError

    def iter_fault_matrices(
        self, rng: np.random.Generator, count: int, chunk_size: int | None = None
    ) -> Iterator[np.ndarray]:
        """Yield fault-presence matrices of at most ``chunk_size`` rows each.

        Because each chunk is drawn from the same generator in sequence, the
        concatenation of the chunks is bitwise-identical to a single
        ``sample_fault_matrix(rng, count)`` call with the same starting
        generator state -- chunking changes the peak memory footprint
        (``O(chunk_size * n)`` instead of ``O(count * n)``), never the
        simulated developments.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        remaining = count
        while remaining > 0:
            size = remaining if chunk_size is None else min(chunk_size, remaining)
            yield self.sample_fault_matrix(rng, size)
            remaining -= size

    def stream_fault_matrices(
        self,
        rng: np.random.Generator,
        count: int,
        chunk_size: int | None = None,
        scratch: np.ndarray | None = None,
    ) -> Iterator[np.ndarray]:
        """Like :meth:`iter_fault_matrices`, but yielded matrices may share storage.

        Each yielded matrix is only valid until the next iteration: processes
        that can (see :class:`IndependentDevelopmentProcess`) reuse one
        internal buffer per iterator instead of allocating a fresh matrix per
        chunk, which roughly halves the wall time of streaming simulations --
        at large chunk sizes the allocation and page-faulting of hundreds of
        megabytes per chunk costs as much as generating the random numbers.
        ``scratch`` optionally provides a shared float work buffer of shape
        ``(chunk rows, n)``; iterators drawing from *interleaved* streams
        (one per developed version, advanced in lockstep) can safely share
        one, which bounds the float working set at a single chunk regardless
        of the version count.  The yielded *values* are bitwise-identical to
        :meth:`iter_fault_matrices` for the same starting generator state.
        """
        return self.iter_fault_matrices(rng, count, chunk_size)

    # ------------------------------------------------------------------ #
    # Shared conveniences
    # ------------------------------------------------------------------ #
    def sample_version(self, rng: np.random.Generator) -> DevelopedVersion:
        """Develop a single version."""
        matrix = self.sample_fault_matrix(rng, 1)
        return DevelopedVersion(model=self.model, fault_present=matrix[0])

    def sample_versions(self, rng: np.random.Generator, count: int) -> list[DevelopedVersion]:
        """Develop ``count`` versions independently."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        matrix = self.sample_fault_matrix(rng, count)
        return [DevelopedVersion(model=self.model, fault_present=row) for row in matrix]

    def sample_pair(self, rng: np.random.Generator) -> VersionPair:
        """Develop a pair of versions for a 1-out-of-2 system (separate developments)."""
        versions = self.sample_versions(rng, 2)
        return VersionPair(channel_a=versions[0], channel_b=versions[1])

    def sample_pairs(self, rng: np.random.Generator, count: int) -> list[VersionPair]:
        """Develop ``count`` independent version pairs."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        matrix = self.sample_fault_matrix(rng, 2 * count)
        return [
            VersionPair(
                channel_a=DevelopedVersion(model=self.model, fault_present=matrix[2 * i]),
                channel_b=DevelopedVersion(model=self.model, fault_present=matrix[2 * i + 1]),
            )
            for i in range(count)
        ]

    def sample_pfds(
        self, rng: np.random.Generator, count: int, chunk_size: int | None = None
    ) -> np.ndarray:
        """Sample ``count`` single-version PFD values without materialising version objects.

        ``chunk_size`` bounds the working memory at ``O(chunk_size * n)``
        without changing the sampled values (see :meth:`iter_fault_matrices`).
        """
        pfds = np.empty(count, dtype=float)
        offset = 0
        for matrix in self.iter_fault_matrices(rng, count, chunk_size):
            pfds[offset : offset + matrix.shape[0]] = matrix_pfds(matrix, self.model.q)
            offset += matrix.shape[0]
        return pfds

    def sample_system_pfds(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Sample ``count`` 1-out-of-2 system PFD values (independent pairs)."""
        first = self.sample_fault_matrix(rng, count)
        second = self.sample_fault_matrix(rng, count)
        return matrix_pfds(first & second, self.model.q)


@dataclass(frozen=True)
class IndependentDevelopmentProcess(DevelopmentProcess):
    """The paper's baseline process: independent fault introduction.

    Each fault ``i`` is present with probability ``p_i`` independently of all
    other faults and of the other channel's development.
    """

    model: FaultModel

    def sample_fault_matrix(self, rng: np.random.Generator, count: int) -> np.ndarray:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return np.zeros((0, self.model.n), dtype=bool)
        uniforms = rng.random((count, self.model.n))
        return uniforms < self.model.p[np.newaxis, :]

    def stream_fault_matrices(
        self,
        rng: np.random.Generator,
        count: int,
        chunk_size: int | None = None,
        scratch: np.ndarray | None = None,
    ) -> Iterator[np.ndarray]:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        rows = count if chunk_size is None else min(chunk_size, count)
        if scratch is not None and scratch.shape == (rows, self.model.n) and scratch.dtype == float:
            uniforms = scratch
        else:
            uniforms = np.empty((rows, self.model.n))
        presence = np.empty((rows, self.model.n), dtype=bool)
        remaining = count
        while remaining > 0:
            size = min(rows, remaining)
            # ``random(out=...)`` consumes the stream exactly like
            # ``random(shape)``, so the values match iter_fault_matrices
            # bitwise; only the allocations disappear.
            rng.random(out=uniforms[:size])
            np.less(uniforms[:size], self.model.p[np.newaxis, :], out=presence[:size])
            yield presence[:size]
            remaining -= size
