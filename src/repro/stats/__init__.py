"""Statistical substrate for the fault-creation-process model.

This subpackage provides the probability machinery that the core model in
:mod:`repro.core` is built on:

* :class:`~repro.stats.poisson_binomial.PoissonBinomial` -- the distribution of
  the number of faults present in a version (a sum of independent, non-identical
  Bernoulli variables).
* :class:`~repro.stats.discrete.DiscreteDistribution` -- finite discrete
  distributions with convolution, used for the exact distribution of the
  probability of failure on demand (PFD).
* :mod:`~repro.stats.normal` -- normal-distribution helpers used by the paper's
  Section 5 (confidence bounds under the normal approximation), including a
  Berry-Esseen error bound for judging the approximation quality.
* :mod:`~repro.stats.empirical` -- empirical CDFs, quantiles and bootstrap
  confidence intervals for Monte Carlo output.
* :mod:`~repro.stats.streaming` -- single-pass, mergeable accumulators
  (moments and histograms) for chunked / parallel Monte Carlo at replication
  counts where storing every sample is impractical.
* :mod:`~repro.stats.rng` -- reproducible random-generator management.
"""

from repro.stats.discrete import DiscreteDistribution
from repro.stats.empirical import (
    EmpiricalDistribution,
    bootstrap_confidence_interval,
    empirical_cdf,
    empirical_quantile,
)
from repro.stats.normal import (
    NormalApproximation,
    berry_esseen_bound,
    normal_cdf,
    normal_quantile,
)
from repro.stats.poisson_binomial import PoissonBinomial
from repro.stats.rng import default_rng, spawn_rngs
from repro.stats.streaming import StreamingHistogram, StreamingMoments

__all__ = [
    "DiscreteDistribution",
    "EmpiricalDistribution",
    "NormalApproximation",
    "PoissonBinomial",
    "StreamingHistogram",
    "StreamingMoments",
    "berry_esseen_bound",
    "bootstrap_confidence_interval",
    "default_rng",
    "empirical_cdf",
    "empirical_quantile",
    "normal_cdf",
    "normal_quantile",
    "spawn_rngs",
]
