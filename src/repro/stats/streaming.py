"""Streaming (single-pass, mergeable) summary statistics.

The chunked Monte Carlo path of :mod:`repro.montecarlo` needs summary
statistics of simulation output whose memory footprint does not grow with the
number of replications.  This module provides the two accumulators used for
that purpose:

* :class:`StreamingMoments` -- count, mean, variance, min/max and exact-zero
  counting via the numerically stable Chan et al. pairwise-update formulas
  (batched Welford).  Accumulators can be merged, so independent workers can
  each summarise their own shard of replications and the shards can be
  combined exactly afterwards.
* :class:`StreamingHistogram` -- a fixed-bin histogram over a known value
  range, with exact tracking of the probability mass at zero and of
  out-of-range values, supporting approximate CDF / quantile / exceedance
  queries.  Also mergeable (bin edges must match).

Both accumulators are plain mutable objects (unlike the frozen value types in
the rest of :mod:`repro.stats`) because their whole purpose is in-place
accumulation; they are cheaply picklable so they can cross process boundaries
when the engine fans out across workers.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StreamingMoments", "StreamingHistogram"]


class StreamingMoments:
    """Single-pass mean/variance/extrema accumulator (batched Welford).

    Updates use the Chan-Golub-LeVeque pairwise combination formula, which is
    numerically stable for both long streams of small batches and merges of
    large shards.  ``zeros`` counts observations exactly equal to zero, which
    for PFD samples is the empirical probability of a fault-free product.
    """

    __slots__ = ("count", "_mean", "_m2", "_min", "_max", "zeros")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self.zeros = 0

    def update(self, values: np.ndarray) -> None:
        """Fold a batch of observations into the accumulator."""
        array = np.asarray(values, dtype=float).ravel()
        if array.size == 0:
            return
        batch_count = int(array.size)
        batch_mean = float(np.mean(array))
        batch_m2 = float(np.sum((array - batch_mean) ** 2))
        self._combine(
            batch_count,
            batch_mean,
            batch_m2,
            float(np.min(array)),
            float(np.max(array)),
            int(np.count_nonzero(array == 0.0)),
        )

    def merge(self, other: "StreamingMoments") -> None:
        """Fold another accumulator into this one (exact shard combination)."""
        if other.count == 0:
            return
        self._combine(other.count, other._mean, other._m2, other._min, other._max, other.zeros)

    def _combine(
        self,
        count: int,
        mean: float,
        m2: float,
        minimum: float,
        maximum: float,
        zeros: int,
    ) -> None:
        if self.count == 0:
            self.count, self._mean, self._m2 = count, mean, m2
            self._min, self._max, self.zeros = minimum, maximum, zeros
            return
        total = self.count + count
        delta = mean - self._mean
        self._m2 += m2 + delta * delta * (self.count * count / total)
        self._mean += delta * (count / total)
        self.count = total
        self._min = min(self._min, minimum)
        self._max = max(self._max, maximum)
        self.zeros += zeros

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def mean(self) -> float:
        """Sample mean of all observations seen so far."""
        if self.count == 0:
            raise ValueError("no observations accumulated")
        return self._mean

    def variance(self, ddof: int = 1) -> float:
        """Sample variance (``ddof=1`` by default, matching EmpiricalDistribution)."""
        if self.count <= ddof:
            return 0.0
        return self._m2 / (self.count - ddof)

    def std(self, ddof: int = 1) -> float:
        """Sample standard deviation."""
        return float(np.sqrt(self.variance(ddof)))

    def standard_error(self) -> float:
        """Standard error of the sample mean."""
        if self.count < 2:
            return float("inf")
        return self.std() / float(np.sqrt(self.count))

    @property
    def minimum(self) -> float:
        """Smallest observation seen."""
        if self.count == 0:
            raise ValueError("no observations accumulated")
        return self._min

    @property
    def maximum(self) -> float:
        """Largest observation seen."""
        if self.count == 0:
            raise ValueError("no observations accumulated")
        return self._max

    def fraction_zero(self) -> float:
        """Fraction of observations exactly equal to zero."""
        if self.count == 0:
            raise ValueError("no observations accumulated")
        return self.zeros / self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.count == 0:
            return "StreamingMoments(empty)"
        return (
            f"StreamingMoments(count={self.count}, mean={self._mean:.6g}, "
            f"std={self.std():.6g})"
        )


class StreamingHistogram:
    """Fixed-bin histogram accumulator over a known value range.

    Parameters
    ----------
    low, high:
        Range covered by the bins.  For PFD samples the natural range is
        ``[0, sum(q_i)]`` -- the PFD of a version can never exceed the total
        failure-region probability.
    bins:
        Number of equal-width bins.

    Values exactly equal to zero are tracked separately (``zero_count``), so
    the large atom at PFD = 0 is represented exactly rather than smeared over
    the first bin.  Values outside ``[low, high]`` are counted in
    ``underflow`` / ``overflow`` and excluded from the bins.
    """

    __slots__ = ("edges", "counts", "zero_count", "underflow", "overflow", "total", "_inv_width")

    def __init__(self, low: float, high: float, bins: int = 4096) -> None:
        if not np.isfinite(low) or not np.isfinite(high) or not low < high:
            raise ValueError(f"need finite low < high, got [{low}, {high}]")
        if bins < 1:
            raise ValueError(f"bins must be positive, got {bins}")
        self.edges = np.linspace(float(low), float(high), int(bins) + 1)
        self.counts = np.zeros(int(bins), dtype=np.int64)
        self.zero_count = 0
        self.underflow = 0
        self.overflow = 0
        self.total = 0
        self._inv_width = float(bins) / (float(high) - float(low))

    def update(self, values: np.ndarray) -> None:
        """Fold a batch of observations into the histogram.

        Bins are equal-width, so the bin index is computed arithmetically
        (one multiply per value) rather than by a binary search per value --
        the histogram update is on the hot path of the streaming Monte Carlo
        engine, where a ``searchsorted``-based update dominated the per-chunk
        cost.  A value lying exactly on an interior bin edge may therefore be
        attributed to either neighbouring bin (float rounding of the
        multiply), which is within the histogram's one-bin resolution
        contract.
        """
        array = np.asarray(values, dtype=float).ravel()
        if array.size == 0:
            return
        bins = self.counts.size
        self.total += int(array.size)
        zeros = int(np.count_nonzero(array == 0.0))
        self.zero_count += zeros
        if zeros == array.size:
            return
        low, high = self.edges[0], self.edges[-1]
        # Clip in float space first: arbitrarily large magnitudes (and
        # infinities) must saturate at the edge bins rather than overflow
        # the integer cast.
        position = (array - low) * self._inv_width
        np.clip(position, 0.0, bins - 1, out=position)
        invalid = np.isnan(position)
        nans = int(np.count_nonzero(invalid))
        if nans:
            position[invalid] = 0.0
        index = position.astype(np.int64)
        binned = np.bincount(index, minlength=bins)
        # Every value was binned (out-of-range values clip to the first or
        # last bin); the zero atom, NaNs and the under/overflow tallies are
        # tracked separately, so pull them back out.  The corrections are
        # count adjustments only and each value belongs to exactly one of
        # them (NaN compares false against every bound below).
        if nans:
            binned[0] -= nans
        if zeros:
            zero_index = min(max(int((0.0 - low) * self._inv_width), 0), bins - 1)
            binned[zero_index] -= zeros
        underflow = int(np.count_nonzero((array < low) & (array != 0.0)))
        if underflow:
            self.underflow += underflow
            binned[0] -= underflow
        overflow = int(np.count_nonzero((array > high) & (array != 0.0)))
        if overflow:
            self.overflow += overflow
            binned[bins - 1] -= overflow
        self.counts += binned

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold another histogram into this one (bin edges must match)."""
        if other.edges.size != self.edges.size or not np.array_equal(other.edges, self.edges):
            raise ValueError("cannot merge histograms with different bin edges")
        self.counts += other.counts
        self.zero_count += other.zero_count
        self.underflow += other.underflow
        self.overflow += other.overflow
        self.total += other.total

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def prob_zero(self) -> float:
        """Exact fraction of observations equal to zero."""
        if self.total == 0:
            raise ValueError("no observations accumulated")
        return self.zero_count / self.total

    def cdf(self, x: float) -> float:
        """Approximate ``P(X <= x)`` (exact at bin edges and for the zero atom).

        Observations inside the bin containing ``x`` are attributed by the
        conservative convention that the whole bin lies at its upper edge, so
        the returned value is a lower bound on the empirical CDF that becomes
        exact as ``x`` crosses each bin edge.
        """
        if self.total == 0:
            raise ValueError("no observations accumulated")
        if x < 0.0:
            return 0.0
        covered = self.zero_count
        # Out-of-range values are treated as sitting just outside the edge
        # they crossed: underflow just below the low edge, overflow just
        # above the top edge.
        if x >= self.edges[0]:
            covered += self.underflow
        full_bins = int(np.searchsorted(self.edges[1:], x, side="right"))
        covered += int(self.counts[:full_bins].sum())
        if x > self.edges[-1]:
            covered += self.overflow
        return covered / self.total

    def exceedance_probability(self, threshold: float) -> float:
        """Approximate ``P(X > threshold)`` (upper bound; exact at bin edges)."""
        return 1.0 - self.cdf(threshold)

    def quantile(self, level: float) -> float:
        """Approximate quantile: upper edge of the bin where the CDF crosses ``level``."""
        if not 0.0 <= level <= 1.0:
            raise ValueError(f"level must be in [0, 1], got {level}")
        if self.total == 0:
            raise ValueError("no observations accumulated")
        target = level * self.total
        if self.zero_count >= target:
            return 0.0
        # Underflow mass sits just below the low edge (see :meth:`cdf`).
        covered = self.zero_count + self.underflow
        if covered >= target:
            return float(self.edges[0])
        cumulative = covered + np.cumsum(self.counts)
        index = int(np.searchsorted(cumulative, target, side="left"))
        if index >= self.counts.size:
            return float(self.edges[-1])
        return float(self.edges[index + 1])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamingHistogram(bins={self.counts.size}, total={self.total}, "
            f"zero={self.zero_count})"
        )
