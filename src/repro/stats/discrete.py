"""Finite discrete probability distributions.

The probability of failure on demand (PFD) of a version in the fault-creation
model is a sum of independent two-point random variables: the ``i``-th takes
the value ``q_i`` with probability ``p_i`` and ``0`` otherwise (Section 3 of
the paper).  Its exact distribution is therefore a finite discrete distribution
whose support grows by convolution.  :class:`DiscreteDistribution` provides the
convolution machinery, with optional support collapsing (binning of nearly
equal support points) so that exact-to-within-tolerance distributions remain
tractable for models with many potential faults.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DiscreteDistribution"]


@dataclass(frozen=True)
class DiscreteDistribution:
    """A probability distribution on a finite set of real support points.

    Parameters
    ----------
    support:
        Sorted, strictly increasing array of support points.
    probabilities:
        Probabilities associated with each support point; non-negative and
        summing to 1 (within floating-point tolerance).
    """

    support: np.ndarray
    probabilities: np.ndarray

    def __post_init__(self) -> None:
        support = np.asarray(self.support, dtype=float)
        probabilities = np.asarray(self.probabilities, dtype=float)
        if support.ndim != 1 or probabilities.ndim != 1:
            raise ValueError("support and probabilities must be 1-D arrays")
        if support.size != probabilities.size:
            raise ValueError(
                f"support ({support.size}) and probabilities ({probabilities.size}) "
                "must have the same length"
            )
        if support.size == 0:
            raise ValueError("distribution must have at least one support point")
        if np.any(probabilities < -1e-12):
            raise ValueError("probabilities must be non-negative")
        probabilities = np.clip(probabilities, 0.0, None)
        total = probabilities.sum()
        if not np.isclose(total, 1.0, rtol=0.0, atol=1e-8):
            raise ValueError(f"probabilities must sum to 1, got {total}")
        order = np.argsort(support, kind="stable")
        support = support[order]
        probabilities = probabilities[order] / total
        # Merge duplicate support points.
        if support.size > 1 and np.any(np.diff(support) == 0.0):
            unique, inverse = np.unique(support, return_inverse=True)
            merged = np.zeros_like(unique)
            np.add.at(merged, inverse, probabilities)
            support, probabilities = unique, merged
        object.__setattr__(self, "support", support)
        object.__setattr__(self, "probabilities", probabilities)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def point_mass(value: float) -> "DiscreteDistribution":
        """Distribution concentrated at a single value."""
        return DiscreteDistribution(np.array([float(value)]), np.array([1.0]))

    @staticmethod
    def two_point(value: float, probability: float) -> "DiscreteDistribution":
        """Distribution of a variable equal to ``value`` w.p. ``probability``, else 0.

        This is the contribution of a single potential fault to the PFD: the
        fault's failure-region probability ``q_i`` with probability ``p_i``,
        zero otherwise.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        if value == 0.0 or probability == 0.0:
            return DiscreteDistribution.point_mass(0.0)
        if probability == 1.0:
            return DiscreteDistribution.point_mass(value)
        return DiscreteDistribution(
            np.array([0.0, float(value)]), np.array([1.0 - probability, probability])
        )

    # ------------------------------------------------------------------ #
    # Moments and probabilities
    # ------------------------------------------------------------------ #
    def mean(self) -> float:
        """Expected value."""
        return float(np.dot(self.support, self.probabilities))

    def variance(self) -> float:
        """Variance."""
        mean = self.mean()
        return float(np.dot((self.support - mean) ** 2, self.probabilities))

    def std(self) -> float:
        """Standard deviation."""
        return float(np.sqrt(self.variance()))

    def cdf(self, x: float | np.ndarray) -> np.ndarray | float:
        """``P(X <= x)`` evaluated at scalar or array ``x``."""
        x_array = np.asarray(x, dtype=float)
        cumulative = np.cumsum(self.probabilities)
        indices = np.searchsorted(self.support, x_array, side="right")
        values = np.where(indices > 0, cumulative[np.minimum(indices, cumulative.size) - 1], 0.0)
        if np.isscalar(x) or x_array.ndim == 0:
            return float(values)
        return values

    def survival(self, x: float) -> float:
        """``P(X > x)``, the exceedance probability used for PFD-bound risks."""
        return float(1.0 - self.cdf(x))

    def quantile(self, level: float) -> float:
        """Smallest support point ``x`` with ``P(X <= x) >= level``."""
        if not 0.0 <= level <= 1.0:
            raise ValueError(f"level must be in [0, 1], got {level}")
        cumulative = np.cumsum(self.probabilities)
        index = int(np.searchsorted(cumulative, level - 1e-15, side="left"))
        index = min(index, self.support.size - 1)
        return float(self.support[index])

    def prob_zero(self) -> float:
        """``P(X = 0)`` -- for PFD distributions, the probability of a fault-free product."""
        zero_indices = np.isclose(self.support, 0.0, atol=0.0)
        return float(np.sum(self.probabilities[zero_indices]))

    # ------------------------------------------------------------------ #
    # Convolution
    # ------------------------------------------------------------------ #
    def convolve(
        self, other: "DiscreteDistribution", max_support: int | None = None
    ) -> "DiscreteDistribution":
        """Distribution of the sum of two independent variables.

        Parameters
        ----------
        other:
            Distribution of the independent second summand.
        max_support:
            When given and the convolution support would exceed this size, the
            result is collapsed onto a grid of ``max_support`` points (see
            :meth:`collapse`).  This keeps an "exact to within tolerance"
            distribution tractable when convolving hundreds of fault
            contributions.
        """
        sums = self.support[:, np.newaxis] + other.support[np.newaxis, :]
        weights = self.probabilities[:, np.newaxis] * other.probabilities[np.newaxis, :]
        flat_sums = sums.ravel()
        flat_weights = weights.ravel()
        unique, inverse = np.unique(flat_sums, return_inverse=True)
        merged = np.zeros_like(unique)
        np.add.at(merged, inverse, flat_weights)
        result = DiscreteDistribution(unique, merged)
        if max_support is not None and result.support.size > max_support:
            result = result.collapse(max_support)
        return result

    def collapse(self, max_support: int) -> "DiscreteDistribution":
        """Collapse the support onto at most ``max_support`` points.

        Support points are merged into equal-width bins spanning the support
        range; each bin is represented by its probability-weighted mean, so the
        distribution's mean is preserved exactly and its variance is preserved
        to within the bin width.
        """
        if max_support < 2:
            raise ValueError(f"max_support must be >= 2, got {max_support}")
        if self.support.size <= max_support:
            return self
        low, high = float(self.support[0]), float(self.support[-1])
        if high == low:
            return DiscreteDistribution.point_mass(low)
        edges = np.linspace(low, high, max_support + 1)
        bin_index = np.clip(np.searchsorted(edges, self.support, side="right") - 1, 0, max_support - 1)
        probability_sums = np.zeros(max_support)
        weighted_sums = np.zeros(max_support)
        np.add.at(probability_sums, bin_index, self.probabilities)
        np.add.at(weighted_sums, bin_index, self.probabilities * self.support)
        occupied = probability_sums > 0.0
        new_support = weighted_sums[occupied] / probability_sums[occupied]
        new_probabilities = probability_sums[occupied]
        return DiscreteDistribution(new_support, new_probabilities)

    @staticmethod
    def convolve_many(
        components: list["DiscreteDistribution"], max_support: int | None = None
    ) -> "DiscreteDistribution":
        """Convolve a list of independent components.

        Components are combined pairwise (balanced tree order) which keeps
        intermediate supports small compared to a left fold.
        """
        if not components:
            return DiscreteDistribution.point_mass(0.0)
        current = list(components)
        while len(current) > 1:
            next_round: list[DiscreteDistribution] = []
            for index in range(0, len(current) - 1, 2):
                next_round.append(current[index].convolve(current[index + 1], max_support=max_support))
            if len(current) % 2 == 1:
                next_round.append(current[-1])
            current = next_round
        return current[0]

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` independent values from the distribution."""
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        return rng.choice(self.support, size=size, p=self.probabilities)
