"""Finite discrete probability distributions.

The probability of failure on demand (PFD) of a version in the fault-creation
model is a sum of independent two-point random variables: the ``i``-th takes
the value ``q_i`` with probability ``p_i`` and ``0`` otherwise (Section 3 of
the paper).  Its exact distribution is therefore a finite discrete distribution
whose support grows by convolution.  :class:`DiscreteDistribution` provides the
convolution machinery, with optional support collapsing (binning of nearly
equal support points) so that exact-to-within-tolerance distributions remain
tractable for models with many potential faults.

Two layers are provided:

* the generic, validating public constructor and :meth:`DiscreteDistribution.convolve`,
  for arbitrary finite distributions;
* a fast convolution core for the special structure of PFD distributions --
  :meth:`DiscreteDistribution.convolve_two_point` (an ``O(m log m)`` kernel
  for adding one two-point fault contribution) and :func:`convolve_two_points`
  (a fold over thousands of contributions, with identical ``(q, p)`` groups
  combined in closed form through the binomial distribution).  Intermediate
  results use a trusted internal constructor that skips re-validation and
  re-sorting, which is what makes the exact PFD distribution usable at
  ``n`` in the thousands.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DiscreteDistribution", "convolve_two_points"]


@dataclass(frozen=True)
class DiscreteDistribution:
    """A probability distribution on a finite set of real support points.

    Parameters
    ----------
    support:
        Sorted, strictly increasing array of support points.
    probabilities:
        Probabilities associated with each support point; non-negative and
        summing to 1 (within floating-point tolerance).
    """

    support: np.ndarray
    probabilities: np.ndarray

    def __post_init__(self) -> None:
        support = np.asarray(self.support, dtype=float)
        probabilities = np.asarray(self.probabilities, dtype=float)
        if support.ndim != 1 or probabilities.ndim != 1:
            raise ValueError("support and probabilities must be 1-D arrays")
        if support.size != probabilities.size:
            raise ValueError(
                f"support ({support.size}) and probabilities ({probabilities.size}) "
                "must have the same length"
            )
        if support.size == 0:
            raise ValueError("distribution must have at least one support point")
        if np.any(probabilities < -1e-12):
            raise ValueError("probabilities must be non-negative")
        probabilities = np.clip(probabilities, 0.0, None)
        total = probabilities.sum()
        if not np.isclose(total, 1.0, rtol=0.0, atol=1e-8):
            raise ValueError(f"probabilities must sum to 1, got {total}")
        order = np.argsort(support, kind="stable")
        support = support[order]
        probabilities = probabilities[order] / total
        # Merge duplicate support points.
        if support.size > 1 and np.any(np.diff(support) == 0.0):
            unique, inverse = np.unique(support, return_inverse=True)
            merged = np.zeros_like(unique)
            np.add.at(merged, inverse, probabilities)
            support, probabilities = unique, merged
        object.__setattr__(self, "support", support)
        object.__setattr__(self, "probabilities", probabilities)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def _trusted(cls, support: np.ndarray, probabilities: np.ndarray) -> "DiscreteDistribution":
        """Build an instance from arrays already known to be valid.

        ``support`` must be sorted ascending with no duplicates and
        ``probabilities`` non-negative and summing to 1 (within tolerance).
        Used by the convolution kernels, where intermediate results satisfy
        these invariants by construction and re-validating/re-sorting them on
        every step dominates the runtime.
        """
        instance = object.__new__(cls)
        object.__setattr__(instance, "support", support)
        object.__setattr__(instance, "probabilities", probabilities)
        return instance

    @classmethod
    def _from_sorted(
        cls, support: np.ndarray, probabilities: np.ndarray
    ) -> "DiscreteDistribution":
        """Build from sorted (possibly duplicated) support, merging duplicates."""
        if support.size > 1:
            boundaries = np.empty(support.size, dtype=bool)
            boundaries[0] = True
            np.not_equal(support[1:], support[:-1], out=boundaries[1:])
            if not boundaries.all():
                starts = np.flatnonzero(boundaries)
                support = support[starts]
                probabilities = np.add.reduceat(probabilities, starts)
        return cls._trusted(support, probabilities)

    @staticmethod
    def point_mass(value: float) -> "DiscreteDistribution":
        """Distribution concentrated at a single value."""
        return DiscreteDistribution._trusted(np.array([float(value)]), np.array([1.0]))

    @staticmethod
    def two_point(value: float, probability: float) -> "DiscreteDistribution":
        """Distribution of a variable equal to ``value`` w.p. ``probability``, else 0.

        This is the contribution of a single potential fault to the PFD: the
        fault's failure-region probability ``q_i`` with probability ``p_i``,
        zero otherwise.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        if value == 0.0 or probability == 0.0:
            return DiscreteDistribution.point_mass(0.0)
        if probability == 1.0:
            return DiscreteDistribution.point_mass(value)
        return DiscreteDistribution(
            np.array([0.0, float(value)]), np.array([1.0 - probability, probability])
        )

    # ------------------------------------------------------------------ #
    # Moments and probabilities
    # ------------------------------------------------------------------ #
    def mean(self) -> float:
        """Expected value."""
        return float(np.dot(self.support, self.probabilities))

    def variance(self) -> float:
        """Variance."""
        mean = self.mean()
        return float(np.dot((self.support - mean) ** 2, self.probabilities))

    def std(self) -> float:
        """Standard deviation."""
        return float(np.sqrt(self.variance()))

    def _cumulative(self) -> np.ndarray:
        """Cumulative probabilities, computed once and cached (read-only)."""
        cached = self.__dict__.get("_cumulative_cache")
        if cached is None:
            cached = np.cumsum(self.probabilities)
            cached.setflags(write=False)
            object.__setattr__(self, "_cumulative_cache", cached)
        return cached

    def cdf(self, x: float | np.ndarray) -> np.ndarray | float:
        """``P(X <= x)`` evaluated at scalar or array ``x``."""
        x_array = np.asarray(x, dtype=float)
        cumulative = self._cumulative()
        indices = np.searchsorted(self.support, x_array, side="right")
        values = np.where(indices > 0, cumulative[np.minimum(indices, cumulative.size) - 1], 0.0)
        if np.isscalar(x) or x_array.ndim == 0:
            return float(values)
        return values

    def survival(self, x: float) -> float:
        """``P(X > x)``, the exceedance probability used for PFD-bound risks."""
        return float(1.0 - self.cdf(x))

    def quantile(self, level: float) -> float:
        """Smallest support point ``x`` with ``P(X <= x) >= level``."""
        if not 0.0 <= level <= 1.0:
            raise ValueError(f"level must be in [0, 1], got {level}")
        cumulative = self._cumulative()
        index = int(np.searchsorted(cumulative, level - 1e-15, side="left"))
        index = min(index, self.support.size - 1)
        return float(self.support[index])

    def prob_zero(self) -> float:
        """``P(X = 0)`` -- for PFD distributions, the probability of a fault-free product."""
        zero_indices = np.isclose(self.support, 0.0, atol=0.0)
        return float(np.sum(self.probabilities[zero_indices]))

    # ------------------------------------------------------------------ #
    # Convolution
    # ------------------------------------------------------------------ #
    def shifted(self, offset: float) -> "DiscreteDistribution":
        """Distribution of ``X + offset`` (convolution with a point mass)."""
        offset = float(offset)
        if offset == 0.0:
            return self
        return DiscreteDistribution._trusted(self.support + offset, self.probabilities)

    def convolve_two_point(self, value: float, probability: float) -> "DiscreteDistribution":
        """Distribution of ``X + B`` where ``B`` is ``value`` w.p. ``probability``, else 0.

        The specialised kernel for adding one fault contribution: instead of
        the generic outer-product convolution it merges the current support
        with a shifted copy, costing ``O(m log m)`` for a support of size
        ``m`` and skipping re-validation of the result.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        value = float(value)
        if value == 0.0 or probability == 0.0:
            return self
        if probability == 1.0:
            return self.shifted(value)
        support = np.concatenate([self.support, self.support + value])
        weights = np.concatenate(
            [self.probabilities * (1.0 - probability), self.probabilities * probability]
        )
        order = np.argsort(support, kind="stable")
        return DiscreteDistribution._from_sorted(support[order], weights[order])

    def convolve(
        self, other: "DiscreteDistribution", max_support: int | None = None
    ) -> "DiscreteDistribution":
        """Distribution of the sum of two independent variables.

        Parameters
        ----------
        other:
            Distribution of the independent second summand.
        max_support:
            When given and the convolution support would exceed this size, the
            result is collapsed onto a grid of ``max_support`` points (see
            :meth:`collapse`).  This keeps an "exact to within tolerance"
            distribution tractable when convolving hundreds of fault
            contributions.

        Point masses and two-point summands are dispatched to the specialised
        ``O(m log m)`` kernels; the general case falls back to the
        outer-product convolution.
        """
        if other.support.size == 1:
            result = self.shifted(float(other.support[0]))
        elif self.support.size == 1:
            result = other.shifted(float(self.support[0]))
        elif other.support.size == 2 and other.support[0] == 0.0:
            result = self.convolve_two_point(
                float(other.support[1]), float(other.probabilities[1])
            )
        elif self.support.size == 2 and self.support[0] == 0.0:
            result = other.convolve_two_point(
                float(self.support[1]), float(self.probabilities[1])
            )
        else:
            sums = self.support[:, np.newaxis] + other.support[np.newaxis, :]
            weights = self.probabilities[:, np.newaxis] * other.probabilities[np.newaxis, :]
            flat_sums = sums.ravel()
            flat_weights = weights.ravel()
            order = np.argsort(flat_sums, kind="stable")
            result = DiscreteDistribution._from_sorted(flat_sums[order], flat_weights[order])
        if max_support is not None and result.support.size > max_support:
            result = result.collapse(max_support)
        return result

    def collapse(self, max_support: int) -> "DiscreteDistribution":
        """Collapse the support onto at most ``max_support`` points.

        Support points are merged into equal-width bins spanning the support
        range; each bin is represented by its probability-weighted mean, so the
        distribution's mean is preserved exactly and its variance is preserved
        to within the bin width.
        """
        if max_support < 2:
            raise ValueError(f"max_support must be >= 2, got {max_support}")
        if self.support.size <= max_support:
            return self
        low, high = float(self.support[0]), float(self.support[-1])
        if high == low:
            return DiscreteDistribution.point_mass(low)
        edges = np.linspace(low, high, max_support + 1)
        bin_index = np.clip(np.searchsorted(edges, self.support, side="right") - 1, 0, max_support - 1)
        probability_sums = np.zeros(max_support)
        weighted_sums = np.zeros(max_support)
        np.add.at(probability_sums, bin_index, self.probabilities)
        np.add.at(weighted_sums, bin_index, self.probabilities * self.support)
        occupied = probability_sums > 0.0
        new_support = weighted_sums[occupied] / probability_sums[occupied]
        new_probabilities = probability_sums[occupied]
        # Bin means are non-decreasing across ordered bins; merge the (rare)
        # exact ties so the trusted invariants hold.
        return DiscreteDistribution._from_sorted(new_support, new_probabilities)

    @staticmethod
    def convolve_many(
        components: list["DiscreteDistribution"], max_support: int | None = None
    ) -> "DiscreteDistribution":
        """Convolve a list of independent components.

        Components are combined pairwise (balanced tree order) which keeps
        intermediate supports small compared to a left fold.
        """
        if not components:
            return DiscreteDistribution.point_mass(0.0)
        current = list(components)
        while len(current) > 1:
            next_round: list[DiscreteDistribution] = []
            for index in range(0, len(current) - 1, 2):
                next_round.append(current[index].convolve(current[index + 1], max_support=max_support))
            if len(current) % 2 == 1:
                next_round.append(current[-1])
            current = next_round
        return current[0]

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` independent values from the distribution."""
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        return rng.choice(self.support, size=size, p=self.probabilities)


def _binomial_contribution(value: float, probability: float, count: int) -> DiscreteDistribution:
    """Exact distribution of the sum of ``count`` i.i.d. two-point contributions.

    ``count`` faults with identical ``(q, p)`` sum to ``q * Binomial(count, p)``,
    so the group collapses to a ``count + 1``-point distribution instead of
    ``count`` explicit convolutions.  The PMF is built with the same stable
    dynamic-programming recursion as :class:`repro.stats.poisson_binomial.PoissonBinomial`
    (it only adds and multiplies probabilities in ``[0, 1]``, so it cannot
    overflow for extreme ``p`` the way closed-form binomial coefficients can).
    """
    pmf = np.zeros(count + 1, dtype=float)
    pmf[0] = 1.0
    complement = 1.0 - probability
    for occupied in range(count):
        shifted = pmf[: occupied + 1] * probability
        pmf[: occupied + 2] *= complement
        pmf[1 : occupied + 2] += shifted
    total = pmf.sum()
    if total > 0.0:
        pmf /= total
    return DiscreteDistribution._trusted(value * np.arange(count + 1, dtype=float), pmf)


def _lattice_fold(
    accumulator: DiscreteDistribution,
    values: np.ndarray,
    probabilities: np.ndarray,
    max_support: int,
) -> DiscreteDistribution:
    """Fold two-point contributions into ``accumulator`` on a fixed lattice.

    Each contribution's value is split across the two neighbouring lattice
    points so its mean is preserved exactly, and the fold becomes three
    vectorised shift-adds per contribution -- ``O(max_support)`` each, with a
    *single* discretisation step per contribution instead of the compounding
    bin-merge error of collapsing an irregular support thousands of times.

    The lattice spans the statistically attainable range (mean plus 40
    standard deviations of the remaining sum, on top of the accumulator's
    maximum) rather than the full combinatorial range ``sum(values)``, which
    keeps the spacing ``delta`` -- and with it the variance inflation of the
    two-point split -- small for long-tailed models.  Mass that would land
    beyond the lattice (probability below ``exp(-O(40^2))``) is clamped into
    the top cell, so total probability is conserved exactly.
    """
    remaining_mean = float(np.sum(values * probabilities))
    remaining_var = float(np.sum(values**2 * probabilities * (1.0 - probabilities)))
    statistical_span = (
        float(accumulator.support[-1])
        + remaining_mean
        + 40.0 * float(np.sqrt(remaining_var))
        + float(values.max())
    )
    span = min(float(accumulator.support[-1]) + float(values.sum()), statistical_span)
    # Work at 4x the requested resolution and collapse once at the end: the
    # finer spacing shrinks the split error 16-fold and the final collapse
    # returns probability-weighted bin means, at the cost of a single
    # discretisation step.
    resolution = 4 * max_support
    delta = span / (resolution - 1)
    # The mean-preserving split rounds each value up to the next lattice point
    # for part of its mass, so the working array needs headroom beyond the cap.
    work = resolution + 2
    weights = np.zeros(work)
    positions = accumulator.support / delta
    lower = np.floor(positions).astype(int)
    fractions = positions - lower
    np.add.at(weights, lower, accumulator.probabilities * (1.0 - fractions))
    np.add.at(weights, lower + 1, accumulator.probabilities * fractions)
    for value, probability in zip(values, probabilities):
        position = value / delta
        index = int(position)
        fraction = position - index
        updated = weights * (1.0 - probability)
        for shift, mass in ((index, probability * (1.0 - fraction)), (index + 1, probability * fraction)):
            if mass == 0.0:
                continue
            if shift < work:
                updated[shift:] += weights[: work - shift] * mass
                tail = weights[work - shift :]
            else:
                tail = weights
            if tail.size:
                updated[-1] += float(tail.sum()) * mass
        weights = updated
    occupied = np.flatnonzero(weights > 0.0)
    result = DiscreteDistribution._trusted(occupied * delta, weights[occupied])
    if result.support.size > max_support:
        result = result.collapse(max_support)
    return result


def convolve_two_points(
    values: np.ndarray,
    probabilities: np.ndarray,
    max_support: int | None = None,
) -> DiscreteDistribution:
    """Distribution of ``sum_i B_i`` for independent two-point variables.

    ``B_i`` equals ``values[i]`` with probability ``probabilities[i]`` and 0
    otherwise -- exactly the structure of the PFD of a version (Section 3).
    This is the fast path behind
    :func:`repro.core.pfd_distribution.exact_pfd_distribution`:

    * contributions with ``value == 0`` or ``probability == 0`` are dropped;
    * contributions with ``probability == 1`` are an exact constant shift;
    * groups with identical ``(value, probability)`` are combined in closed
      form via the binomial distribution (so homogeneous models cost
      ``O(n)`` regardless of ``max_support``);
    * remaining distinct contributions are folded exactly with the
      ``O(m log m)`` two-point kernel while the support fits within
      ``max_support``, then on a fixed mean-preserving lattice
      (:func:`_lattice_fold`) once it would not.

    Parameters
    ----------
    values, probabilities:
        Equal-length 1-D arrays; each ``probabilities[i]`` must lie in
        ``[0, 1]`` and ``values`` must be non-negative.
    max_support:
        Upper bound on the number of support points kept during the fold
        (``None`` keeps the full support, exact but exponential in ``n``).
    """
    values = np.atleast_1d(np.asarray(values, dtype=float))
    probabilities = np.atleast_1d(np.asarray(probabilities, dtype=float))
    if values.ndim != 1 or probabilities.ndim != 1 or values.size != probabilities.size:
        raise ValueError("values and probabilities must be 1-D arrays of equal length")
    if np.any(~np.isfinite(values)) or np.any(~np.isfinite(probabilities)):
        raise ValueError("values and probabilities must be finite")
    if np.any((probabilities < 0.0) | (probabilities > 1.0)):
        raise ValueError("all probabilities must lie in [0, 1]")
    if np.any(values < 0.0):
        raise ValueError("all values must be non-negative")
    if max_support is not None and max_support < 2:
        raise ValueError(f"max_support must be >= 2, got {max_support}")
    offset = float(np.sum(values[probabilities == 1.0]))
    active = (probabilities > 0.0) & (probabilities < 1.0) & (values != 0.0)
    values = values[active]
    probabilities = probabilities[active]
    result = DiscreteDistribution.point_mass(0.0)
    if values.size:
        pairs = np.stack([values, probabilities], axis=1)
        unique_pairs, counts = np.unique(pairs, axis=0, return_counts=True)
        grouped = counts >= 2
        single_mask = ~grouped
        # Singles are folded largest-value first (fixed, reproducible order).
        single_order = np.argsort(unique_pairs[single_mask, 0], kind="stable")[::-1]
        single_values = unique_pairs[single_mask, 0][single_order]
        single_probabilities = unique_pairs[single_mask, 1][single_order]
        index = 0
        while index < single_values.size and (
            max_support is None or 2 * result.support.size <= max_support
        ):
            result = result.convolve_two_point(
                float(single_values[index]), float(single_probabilities[index])
            )
            index += 1
        if index < single_values.size:
            result = _lattice_fold(
                result, single_values[index:], single_probabilities[index:], max_support
            )
        for group_index in np.flatnonzero(grouped):
            contribution = _binomial_contribution(
                float(unique_pairs[group_index, 0]),
                float(unique_pairs[group_index, 1]),
                int(counts[group_index]),
            )
            result = result.convolve(contribution, max_support=max_support)
    return result.shifted(offset)
