"""Empirical statistics for Monte Carlo output.

The analytic results of the paper are validated throughout the test-suite and
benchmark harness against Monte Carlo simulation of the fault creation process.
This module provides the empirical estimators used for that comparison:
empirical CDFs and quantiles, and non-parametric bootstrap confidence
intervals for arbitrary statistics of simulation output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "EmpiricalDistribution",
    "empirical_cdf",
    "empirical_quantile",
    "bootstrap_confidence_interval",
    "standard_error_of_mean",
]


def empirical_cdf(samples: np.ndarray, x: float) -> float:
    """Fraction of ``samples`` less than or equal to ``x``."""
    array = np.asarray(samples, dtype=float)
    if array.size == 0:
        raise ValueError("samples must be non-empty")
    return float(np.mean(array <= x))


def empirical_quantile(samples: np.ndarray, level: float) -> float:
    """Empirical quantile (inverse CDF) of ``samples`` at probability ``level``."""
    if not 0.0 <= level <= 1.0:
        raise ValueError(f"level must be in [0, 1], got {level}")
    array = np.asarray(samples, dtype=float)
    if array.size == 0:
        raise ValueError("samples must be non-empty")
    return float(np.quantile(array, level, method="inverted_cdf"))


def standard_error_of_mean(samples: np.ndarray) -> float:
    """Standard error of the sample mean (sample std over sqrt(n))."""
    array = np.asarray(samples, dtype=float)
    if array.size < 2:
        return float("inf")
    return float(np.std(array, ddof=1) / np.sqrt(array.size))


def bootstrap_confidence_interval(
    samples: np.ndarray,
    statistic: Callable[[np.ndarray], float],
    rng: np.random.Generator,
    confidence: float = 0.95,
    n_resamples: int = 1000,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for ``statistic(samples)``.

    Parameters
    ----------
    samples:
        One-dimensional array of i.i.d. observations.
    statistic:
        Function mapping a sample array to a scalar (e.g. ``np.mean``,
        ``np.std`` or a quantile).
    rng:
        Random generator for the resampling.
    confidence:
        Coverage of the interval (two-sided).
    n_resamples:
        Number of bootstrap resamples.
    """
    array = np.asarray(samples, dtype=float)
    if array.size == 0:
        raise ValueError("samples must be non-empty")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 1:
        raise ValueError(f"n_resamples must be positive, got {n_resamples}")
    estimates = np.empty(n_resamples, dtype=float)
    for index in range(n_resamples):
        resample = array[rng.integers(0, array.size, size=array.size)]
        estimates[index] = float(statistic(resample))
    alpha = (1.0 - confidence) / 2.0
    return (float(np.quantile(estimates, alpha)), float(np.quantile(estimates, 1.0 - alpha)))


@dataclass(frozen=True)
class EmpiricalDistribution:
    """Empirical distribution of a set of observed values.

    A light wrapper over a sample array with the summary queries used when
    comparing simulation to the paper's analytic results: mean, standard
    deviation, CDF, quantiles and exceedance probabilities.
    """

    samples: np.ndarray

    def __post_init__(self) -> None:
        array = np.asarray(self.samples, dtype=float)
        if array.ndim != 1:
            raise ValueError(f"samples must be 1-D, got shape {array.shape}")
        if array.size == 0:
            raise ValueError("samples must be non-empty")
        object.__setattr__(self, "samples", array)

    @property
    def size(self) -> int:
        """Number of observations."""
        return int(self.samples.size)

    def mean(self) -> float:
        """Sample mean."""
        return float(np.mean(self.samples))

    def std(self, ddof: int = 1) -> float:
        """Sample standard deviation (``ddof=1`` by default)."""
        if self.samples.size <= ddof:
            return 0.0
        return float(np.std(self.samples, ddof=ddof))

    def variance(self, ddof: int = 1) -> float:
        """Sample variance (``ddof=1`` by default)."""
        if self.samples.size <= ddof:
            return 0.0
        return float(np.var(self.samples, ddof=ddof))

    def cdf(self, x: float) -> float:
        """Empirical CDF at ``x``."""
        return empirical_cdf(self.samples, x)

    def quantile(self, level: float) -> float:
        """Empirical quantile at ``level``."""
        return empirical_quantile(self.samples, level)

    def exceedance_probability(self, threshold: float) -> float:
        """Fraction of observations strictly greater than ``threshold``."""
        return float(np.mean(self.samples > threshold))

    def prob_zero(self, atol: float = 0.0) -> float:
        """Fraction of observations equal to zero (within ``atol``)."""
        return float(np.mean(np.isclose(self.samples, 0.0, atol=atol)))

    def mean_standard_error(self) -> float:
        """Standard error of the sample mean."""
        return standard_error_of_mean(self.samples)

    def mean_confidence_interval(self, confidence: float = 0.95) -> tuple[float, float]:
        """Normal-theory confidence interval for the mean."""
        from scipy import stats as sps

        if not 0.0 < confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {confidence}")
        half_width = sps.norm.ppf(0.5 + confidence / 2.0) * self.mean_standard_error()
        center = self.mean()
        return (center - half_width, center + half_width)
