"""Random-number-generator management.

All stochastic code in the library takes an explicit
:class:`numpy.random.Generator`.  These helpers centralise how generators are
created and split so that every simulation in the test-suite, the examples and
the benchmark harness is reproducible from a single integer seed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["default_rng", "spawn_rngs", "ensure_rng"]

#: Seed used throughout the examples and benchmarks when the caller does not
#: provide one.  Chosen arbitrarily; fixed for reproducibility.
DEFAULT_SEED = 20010704  # DSN 2001 took place on 1-4 July 2001.


def default_rng(seed: int | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` seeded deterministically.

    Parameters
    ----------
    seed:
        Integer seed.  When ``None`` the library-wide :data:`DEFAULT_SEED` is
        used, so that "no seed" still means "reproducible".
    """
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def ensure_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` (the library default seed).  This is the canonical way for public
    functions to accept a ``rng`` argument.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return default_rng(rng)


def spawn_rngs(rng: np.random.Generator | int | None, count: int) -> list[np.random.Generator]:
    """Split a generator into ``count`` independent child generators.

    Child generators are created via :meth:`numpy.random.Generator.spawn`, so
    streams do not overlap.  Used when a simulation fans out over independent
    replications (e.g. the Monte Carlo engine or the synthetic Knight-Leveson
    experiment) and each replication must be independently reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    generator = ensure_rng(rng)
    if count == 0:
        return []
    return list(generator.spawn(count))


def fixed_seed_sequence(seeds: Sequence[int]) -> list[np.random.Generator]:
    """Build one generator per explicit seed.

    Useful in tests that need several *named* streams whose seeds are written
    out literally, so a failure can be re-run with the exact same stream.
    """
    return [np.random.default_rng(int(seed)) for seed in seeds]
