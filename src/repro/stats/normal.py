"""Normal-distribution helpers for Section 5 of the paper.

Section 5 approximates the distribution of the PFD (a sum of many independent
two-point variables) with a normal distribution and expresses reliability
claims as confidence bounds of the form ``mu + k * sigma``.  This module
provides:

* thin wrappers over the normal CDF and quantile function with the vocabulary
  used in the paper ("confidence level", "k factor");
* :class:`NormalApproximation`, a small value object bundling a mean and a
  standard deviation with bound / confidence queries;
* a Berry-Esseen bound on the approximation error, so users can judge how much
  the central-limit-theorem step can be trusted for a given fault model
  (the paper itself warns that "we will not know in practice how good an
  approximation it is in a specific case").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

__all__ = [
    "normal_cdf",
    "normal_quantile",
    "k_factor_for_confidence",
    "confidence_for_k_factor",
    "NormalApproximation",
    "berry_esseen_bound",
]

#: Absolute constant in the Berry-Esseen inequality for sums of independent,
#: non-identically distributed variables (Shevtsova, 2010).
BERRY_ESSEEN_CONSTANT = 0.5600


def normal_cdf(x: float) -> float:
    """Standard normal cumulative distribution function."""
    return float(sps.norm.cdf(x))


def normal_quantile(level: float) -> float:
    """Standard normal quantile (inverse CDF) at probability ``level``."""
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0, 1), got {level}")
    return float(sps.norm.ppf(level))


def k_factor_for_confidence(confidence: float) -> float:
    """The ``k`` such that ``P(Theta <= mu + k sigma) = confidence``.

    The paper works with statements like "the 99% confidence level corresponds
    to ``mu + 2.33 sigma``"; this function returns that 2.33.
    """
    return normal_quantile(confidence)


def confidence_for_k_factor(k: float) -> float:
    """The confidence level attached to the bound ``mu + k sigma``.

    E.g. ``confidence_for_k_factor(3) == 0.99865...`` as quoted in Section 5.1.
    """
    return normal_cdf(k)


@dataclass(frozen=True)
class NormalApproximation:
    """A normal approximation ``N(mean, std**2)`` to a PFD distribution.

    Provides the Section 5 bound and confidence queries.  ``std`` may be zero
    (a degenerate, perfectly predictable process); bounds then collapse to the
    mean.
    """

    mean: float
    std: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.mean):
            raise ValueError(f"mean must be finite, got {self.mean}")
        if not np.isfinite(self.std) or self.std < 0.0:
            raise ValueError(f"std must be finite and non-negative, got {self.std}")

    def bound(self, k: float) -> float:
        """The upper bound ``mean + k * std`` (the paper's ``mu + k sigma``)."""
        return self.mean + k * self.std

    def bound_for_confidence(self, confidence: float) -> float:
        """Upper bound holding with the given confidence under the approximation."""
        return self.bound(k_factor_for_confidence(confidence))

    def confidence_of_bound(self, threshold: float) -> float:
        """``P(Theta <= threshold)`` under the normal approximation."""
        if self.std == 0.0:
            return 1.0 if threshold >= self.mean else 0.0
        return normal_cdf((threshold - self.mean) / self.std)

    def exceedance_probability(self, threshold: float) -> float:
        """``P(Theta > threshold)`` under the normal approximation."""
        return 1.0 - self.confidence_of_bound(threshold)

    def percentile(self, level: float) -> float:
        """The ``level`` percentile of the approximating normal distribution."""
        if self.std == 0.0:
            return self.mean
        return self.mean + normal_quantile(level) * self.std


def berry_esseen_bound(
    third_absolute_moments: np.ndarray, variances: np.ndarray
) -> float:
    """Berry-Esseen bound on the normal-approximation error of a sum.

    For a sum of independent, zero-mean variables with variances ``sigma_i^2``
    and third absolute central moments ``rho_i``, the maximum absolute error of
    the normal approximation to the sum's CDF is at most
    ``C * sum(rho_i) / (sum(sigma_i^2))**1.5`` with ``C`` =
    :data:`BERRY_ESSEEN_CONSTANT`.

    For the fault-creation model the ``i``-th summand is ``q_i`` with
    probability ``p_i`` and 0 otherwise, so after centring:

    * ``sigma_i^2 = p_i (1 - p_i) q_i^2``
    * ``rho_i     = p_i (1 - p_i) (p_i^2 + (1 - p_i)^2) q_i^3``

    Returns ``inf`` when the total variance is zero (the bound is vacuous).
    """
    rho = np.asarray(third_absolute_moments, dtype=float)
    var = np.asarray(variances, dtype=float)
    if rho.shape != var.shape:
        raise ValueError("third_absolute_moments and variances must have the same shape")
    if np.any(rho < 0.0) or np.any(var < 0.0):
        raise ValueError("moments must be non-negative")
    total_variance = float(np.sum(var))
    if total_variance <= 0.0:
        return float("inf")
    return float(BERRY_ESSEEN_CONSTANT * np.sum(rho) / total_variance**1.5)
