"""Batched exact PFD distributions: one convolution pass, many sweep points.

Parameter sweeps over scalar model knobs -- the Appendix B process-quality
scale ``p_scale`` (every ``p_i`` multiplied by ``k``) and the uniform
failure-region scale ``q_scale`` -- re-run the same two-point convolution
with the same impact values ``q_i`` at every sweep point; only the per-fault
probabilities change.  :func:`batched_two_point_pmf` exploits that shared
structure by carrying a stacked ``(points, support)`` probability array
through the convolution core of :mod:`repro.stats.discrete`:

* the **exact phase** merges the support (shared by every point, because the
  attainable sums depend only on the ``q_i``) once per fault and updates the
  stacked probabilities with one broadcast multiplication per fault;
* the **lattice phase** (entered once the exact support would exceed
  ``max_support``) folds each remaining fault into the stacked array with
  the same mean-preserving two-point split as the scalar
  :func:`~repro.stats.discrete.convolve_two_points` fast path -- three
  vectorised shift-adds per fault, shared across every point.

A ``q_scale`` sweep never convolves at all: scaling every ``q_i`` by ``s``
scales the support by ``s`` and leaves the probabilities untouched, so it is
a per-point support multiplier applied at query time
(:attr:`BatchedPMF.support_scales`).

Accuracy contract: points whose support never exceeds ``max_support`` are
exact (same support as the scalar path, probabilities equal to float
rounding); beyond that the lattice phase works at four times the requested
resolution, preserves each point's mean exactly (up to rounding) and keeps
the oversampled lattice as the result support instead of collapsing it, so
the returned support may hold up to ``4 * max_support`` points.  The
batched-vs-scalar agreement is pinned by
``tests/properties/test_batched_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry

from repro.stats.discrete import DiscreteDistribution

__all__ = ["BatchedPMF", "batched_scaled_pfd", "batched_two_point_pmf"]

#: Column-block size for query-time temporaries, so quantile / variance
#: queries over thousands of points never materialise a (points, support)
#: float temporary larger than a few tens of megabytes.
_QUERY_BLOCK = 64


@dataclass(frozen=True)
class BatchedPMF:
    """A family of finite discrete distributions on one shared support.

    Row ``j`` of ``pmf`` is the probability vector of point ``j`` on
    ``support * support_scales[j]`` -- the shared grid times the point's
    support multiplier (1.0 unless the point scales the impacts).  All
    queries are vectorised across points and return one value per row.
    """

    support: np.ndarray
    pmf: np.ndarray
    support_scales: np.ndarray

    def __post_init__(self) -> None:
        support = np.asarray(self.support, dtype=float)
        pmf = np.atleast_2d(np.asarray(self.pmf, dtype=float))
        scales = np.asarray(self.support_scales, dtype=float)
        if support.ndim != 1 or pmf.shape[1] != support.size:
            raise ValueError(
                f"pmf columns ({pmf.shape[1]}) must match support size ({support.size})"
            )
        if scales.shape != (pmf.shape[0],):
            raise ValueError(
                f"need one support scale per point, got {scales.shape} for {pmf.shape[0]} points"
            )
        if np.any(scales < 0.0):
            raise ValueError("support scales must be non-negative")
        object.__setattr__(self, "support", support)
        object.__setattr__(self, "pmf", pmf)
        object.__setattr__(self, "support_scales", scales)

    @property
    def points(self) -> int:
        """Number of stacked distributions."""
        return int(self.pmf.shape[0])

    def means(self) -> np.ndarray:
        """Expected value of every point."""
        return (self.pmf @ self.support) * self.support_scales

    def variances(self) -> np.ndarray:
        """Variance of every point (numerically stable, blockwise)."""
        base_means = self.pmf @ self.support
        out = np.empty(self.points)
        for start in range(0, self.points, _QUERY_BLOCK):
            stop = min(start + _QUERY_BLOCK, self.points)
            centred = self.support[np.newaxis, :] - base_means[start:stop, np.newaxis]
            out[start:stop] = np.einsum(
                "ij,ij->i", self.pmf[start:stop], centred**2
            )
        return out * self.support_scales**2

    def stds(self) -> np.ndarray:
        """Standard deviation of every point."""
        return np.sqrt(self.variances())

    def quantiles(self, level: float) -> np.ndarray:
        """Smallest support point with ``P(X <= x) >= level``, per point."""
        if not 0.0 <= level <= 1.0:
            raise ValueError(f"level must be in [0, 1], got {level}")
        out = np.empty(self.points)
        for start in range(0, self.points, _QUERY_BLOCK):
            stop = min(start + _QUERY_BLOCK, self.points)
            cumulative = np.cumsum(self.pmf[start:stop], axis=1)
            # Mirrors DiscreteDistribution.quantile's tolerance and clamping.
            index = np.minimum(
                (cumulative < level - 1e-15).sum(axis=1), self.support.size - 1
            )
            out[start:stop] = self.support[index]
        return out * self.support_scales

    def survival(self, threshold: float) -> np.ndarray:
        """``P(X > threshold)`` per point (exceedance of a PFD bound)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            base_thresholds = np.where(
                self.support_scales > 0.0,
                threshold / self.support_scales,
                np.inf if threshold >= 0.0 else -np.inf,
            )
        counts = np.searchsorted(self.support, base_thresholds, side="right")
        out = np.empty(self.points)
        for start in range(0, self.points, _QUERY_BLOCK):
            stop = min(start + _QUERY_BLOCK, self.points)
            cumulative = np.cumsum(self.pmf[start:stop], axis=1)
            index = counts[start:stop]
            covered = np.where(
                index > 0, cumulative[np.arange(stop - start), np.minimum(index, self.support.size) - 1], 0.0
            )
            out[start:stop] = 1.0 - covered
        return out

    def prob_zero(self) -> np.ndarray:
        """``P(X = 0)`` per point."""
        zero_columns = self.support == 0.0
        base = self.pmf[:, zero_columns].sum(axis=1)
        # A zero support scale collapses the whole distribution onto 0.
        return np.where(self.support_scales == 0.0, 1.0, base)

    def distribution(self, index: int) -> DiscreteDistribution:
        """Materialise one point as a scalar :class:`DiscreteDistribution`."""
        if not 0 <= index < self.points:
            raise IndexError(f"point index {index} out of range for {self.points} points")
        scale = float(self.support_scales[index])
        if scale == 0.0:
            return DiscreteDistribution.point_mass(0.0)
        row = self.pmf[index]
        occupied = row > 0.0
        probabilities = row[occupied]
        return DiscreteDistribution._trusted(
            self.support[occupied] * scale, probabilities / probabilities.sum()
        )


def _exact_phase(
    values: np.ndarray, probabilities: np.ndarray, max_support: int
) -> tuple[np.ndarray, np.ndarray, int]:
    """Fold faults exactly while the shared support fits within ``max_support``.

    Returns the shared support, the stacked probabilities and the number of
    leading faults consumed.  The support depends only on the fault values,
    so one merge ordering serves every point; the per-point update is a
    broadcast multiplication.
    """
    points = probabilities.shape[0]
    support = np.zeros(1)
    weights = np.ones((points, 1))
    index = 0
    while index < values.size and 2 * support.size <= max_support:
        value = values[index]
        merged = np.concatenate([support, support + value])
        order = np.argsort(merged, kind="stable")
        merged = merged[order]
        pi = probabilities[:, index][:, np.newaxis]
        stacked = np.concatenate([weights * (1.0 - pi), weights * pi], axis=1)[:, order]
        boundaries = np.empty(merged.size, dtype=bool)
        boundaries[0] = True
        np.not_equal(merged[1:], merged[:-1], out=boundaries[1:])
        starts = np.flatnonzero(boundaries)
        support = merged[starts]
        weights = np.add.reduceat(stacked, starts, axis=1)
        index += 1
    return support, weights, index


def _lattice_phase(
    support: np.ndarray,
    weights: np.ndarray,
    values: np.ndarray,
    probabilities: np.ndarray,
    max_support: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Fold the remaining faults on a fixed mean-preserving lattice.

    The stacked counterpart of :func:`repro.stats.discrete._lattice_fold`:
    each fault's value splits across the two neighbouring lattice points so
    every point's mean is preserved exactly, and the split indices are shared
    across points -- only the fold probabilities differ, entering as one
    broadcast multiplication per shift.
    """
    remaining_means = probabilities @ values
    remaining_vars = (probabilities * (1.0 - probabilities)) @ (values**2)
    top = float(support[-1])
    statistical_span = top + np.max(
        remaining_means + 40.0 * np.sqrt(remaining_vars)
    ) + float(values.max())
    span = min(top + float(values.sum()), statistical_span)
    resolution = 4 * max_support
    delta = span / (resolution - 1)
    work = resolution + 2
    points = weights.shape[0]
    lattice = np.zeros((points, work))
    positions = support / delta
    lower = np.floor(positions).astype(int)
    fractions = positions - lower
    np.add.at(lattice.T, lower, (weights * (1.0 - fractions)).T)
    np.add.at(lattice.T, lower + 1, (weights * fractions).T)
    for index in range(values.size):
        position = values[index] / delta
        shift = int(position)
        fraction = position - shift
        pi = probabilities[:, index]
        updated = lattice * (1.0 - pi)[:, np.newaxis]
        for offset, mass in ((shift, pi * (1.0 - fraction)), (shift + 1, pi * fraction)):
            if not np.any(mass):
                continue
            column = mass[:, np.newaxis]
            if offset < work:
                updated[:, offset:] += lattice[:, : work - offset] * column
                tail = lattice[:, work - offset :]
            else:
                tail = lattice
            if tail.shape[1]:
                updated[:, -1] += tail.sum(axis=1) * mass
        lattice = updated
    occupied = np.flatnonzero(lattice.max(axis=0) > 0.0)
    return occupied * delta, lattice[:, occupied]


def batched_two_point_pmf(
    values: np.ndarray,
    probabilities: np.ndarray,
    max_support: int = 4096,
) -> tuple[np.ndarray, np.ndarray]:
    """Distributions of ``sum_i B_ij`` for a stacked family of two-point sums.

    ``B_ij`` equals ``values[i]`` with probability ``probabilities[j, i]``
    and 0 otherwise: row ``j`` of ``probabilities`` describes one sweep
    point's fault-introduction probabilities over the *shared* impact vector
    ``values``.  Returns ``(support, pmf)`` where ``support`` is the shared
    grid and ``pmf[j]`` the probability vector of point ``j``.

    This is the batched counterpart of
    :func:`repro.stats.discrete.convolve_two_points`; see the module
    docstring for the phase structure and accuracy contract.  Unlike the
    scalar path, a finite ``max_support`` is required (the stacked kernel
    has no exact-exponential mode).
    """
    values = np.atleast_1d(np.asarray(values, dtype=float))
    probabilities = np.atleast_2d(np.asarray(probabilities, dtype=float))
    if values.ndim != 1 or probabilities.ndim != 2 or probabilities.shape[1] != values.size:
        raise ValueError(
            "values must be 1-D and probabilities 2-D with one column per value"
        )
    if not isinstance(max_support, (int, np.integer)) or max_support < 2:
        raise ValueError(f"max_support must be an integer >= 2, got {max_support!r}")
    if np.any(~np.isfinite(values)) or np.any(~np.isfinite(probabilities)):
        raise ValueError("values and probabilities must be finite")
    if np.any((probabilities < 0.0) | (probabilities > 1.0)):
        raise ValueError("all probabilities must lie in [0, 1]")
    if np.any(values < 0.0):
        raise ValueError("all values must be non-negative")
    # Faults that contribute nothing at any point drop out entirely.
    active = (values != 0.0) & np.any(probabilities > 0.0, axis=0)
    values = values[active]
    probabilities = probabilities[:, active]
    if values.size == 0:
        return np.zeros(1), np.ones((probabilities.shape[0], 1))
    # Largest impacts first: they are resolved exactly, mirroring the scalar
    # fold order, and the small-impact tail lands on the lattice.
    order = np.argsort(values, kind="stable")[::-1]
    values = values[order]
    probabilities = probabilities[:, order]
    with telemetry.span(
        "kernel.batched_pmf",
        points=int(probabilities.shape[0]),
        faults=int(values.size),
    ):
        support, weights, consumed = _exact_phase(values, probabilities, max_support)
        if consumed < values.size:
            support, weights = _lattice_phase(
                support, weights, values[consumed:], probabilities[:, consumed:], max_support
            )
        totals = weights.sum(axis=1, keepdims=True)
        return support, weights / totals


def batched_scaled_pfd(
    model,
    p_scales,
    q_scales=None,
    versions: int = 1,
    max_support: int = 4096,
) -> BatchedPMF:
    """Exact PFD distributions of a family of rescaled models, in one pass.

    Point ``j`` is the model with every ``p_i`` multiplied by
    ``p_scales[j]`` (Appendix B process quality) and every ``q_i`` by
    ``q_scales[j]``, combined 1-out-of-``versions`` -- exactly what
    ``exact_pfd_distribution(model.rescaled(...), versions)`` evaluates point
    by point, but with one convolution pass over the whole family.

    Parameters
    ----------
    model:
        The base :class:`~repro.core.fault_model.FaultModel`.
    p_scales, q_scales:
        Per-point scale factors (``q_scales`` defaults to all ones).  Every
        ``p_scales[j] * max(p)`` must stay within ``[0, 1]``.
    versions:
        Number of independently developed versions combined 1-out-of-r.
    max_support:
        Support budget per point; see :func:`batched_two_point_pmf` for the
        accuracy contract.
    """
    p_scales = np.atleast_1d(np.asarray(p_scales, dtype=float))
    if q_scales is None:
        q_scales = np.ones_like(p_scales)
    q_scales = np.atleast_1d(np.asarray(q_scales, dtype=float))
    if p_scales.shape != q_scales.shape or p_scales.ndim != 1:
        raise ValueError("p_scales and q_scales must be 1-D arrays of equal length")
    if versions < 1:
        raise ValueError(f"versions must be a positive integer, got {versions}")
    if np.any(~np.isfinite(p_scales)) or np.any(p_scales < 0.0):
        raise ValueError("p_scales must be finite and non-negative")
    if np.any(~np.isfinite(q_scales)) or np.any(q_scales < 0.0):
        raise ValueError("q_scales must be finite and non-negative")
    scaled_max = p_scales * model.p_max
    if np.any(scaled_max > 1.0):
        worst = float(p_scales[np.argmax(scaled_max)])
        raise ValueError(
            f"scaling by p_scale={worst} pushes some p_i above 1 "
            f"(max would be {float(scaled_max.max()):.4f})"
        )
    probabilities = (p_scales[:, np.newaxis] * model.p[np.newaxis, :]) ** versions
    support, pmf = batched_two_point_pmf(model.q, probabilities, max_support=max_support)
    return BatchedPMF(support=support, pmf=pmf, support_scales=q_scales)
