"""Poisson-binomial distribution.

The number of potential faults actually present in a randomly developed
version -- the paper's random variable ``N1`` -- is a sum of independent but
*non-identically distributed* Bernoulli variables with success probabilities
``p_1 .. p_n``; this is the Poisson-binomial distribution.  The number of
*common* faults in an independently developed pair of versions, ``N2``, is
Poisson-binomial with success probabilities ``p_i**2`` (Section 2.2 of the
paper).

The exact probability mass function is computed with the standard dynamic
programming recursion, which is numerically stable (it only adds and multiplies
probabilities in ``[0, 1]``) and costs ``O(n^2)`` time and ``O(n)`` memory --
perfectly adequate for the fault counts of interest (up to a few thousand
potential faults).  A normal approximation and a refined (second-order,
skewness-corrected) normal approximation are also provided so the quality of
such approximations can be studied, mirroring the paper's use of the central
limit theorem in Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import stats as sps

__all__ = ["PoissonBinomial"]


def _validate_probabilities(probabilities: np.ndarray) -> np.ndarray:
    array = np.asarray(probabilities, dtype=float)
    if array.ndim != 1:
        raise ValueError(f"probabilities must be a 1-D array, got shape {array.shape}")
    if array.size == 0:
        raise ValueError("probabilities must contain at least one entry")
    if np.any(~np.isfinite(array)):
        raise ValueError("probabilities must be finite")
    if np.any((array < 0.0) | (array > 1.0)):
        raise ValueError("probabilities must lie in [0, 1]")
    return array


@dataclass(frozen=True)
class PoissonBinomial:
    """Distribution of a sum of independent Bernoulli(p_i) variables.

    Parameters
    ----------
    probabilities:
        Success probability of each Bernoulli component, each in ``[0, 1]``.

    Notes
    -----
    Instances are immutable; the exact PMF is computed lazily and cached.
    """

    probabilities: np.ndarray
    _pmf_cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "probabilities", _validate_probabilities(self.probabilities))

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of Bernoulli components (the paper's ``n``, number of potential faults)."""
        return int(self.probabilities.size)

    def mean(self) -> float:
        """Expected count, ``sum_i p_i``."""
        return float(np.sum(self.probabilities))

    def variance(self) -> float:
        """Variance of the count, ``sum_i p_i (1 - p_i)``."""
        p = self.probabilities
        return float(np.sum(p * (1.0 - p)))

    def std(self) -> float:
        """Standard deviation of the count."""
        return float(np.sqrt(self.variance()))

    def skewness(self) -> float:
        """Standardised third central moment (0 when the variance is 0)."""
        p = self.probabilities
        variance = self.variance()
        if variance == 0.0:
            return 0.0
        third = float(np.sum(p * (1.0 - p) * (1.0 - 2.0 * p)))
        return third / variance**1.5

    # ------------------------------------------------------------------ #
    # Exact distribution
    # ------------------------------------------------------------------ #
    def pmf(self) -> np.ndarray:
        """Exact probability mass function over counts ``0 .. n``.

        Uses the dynamic-programming recursion: after processing component
        ``i`` the vector holds the distribution of the partial sum.  The result
        is cached on first use and returned as a read-only view (no defensive
        copy per call); use ``pmf().copy()`` if a writable array is needed.
        """
        cached = self._pmf_cache.get("pmf")
        if cached is not None:
            return cached
        distribution = np.zeros(self.n + 1, dtype=float)
        distribution[0] = 1.0
        for probability in self.probabilities:
            shifted = np.empty_like(distribution)
            shifted[0] = 0.0
            shifted[1:] = distribution[:-1]
            distribution = distribution * (1.0 - probability) + shifted * probability
        # Guard against tiny negative values from floating-point cancellation.
        distribution = np.clip(distribution, 0.0, None)
        total = distribution.sum()
        if total > 0:
            distribution = distribution / total
        distribution.setflags(write=False)
        self._pmf_cache["pmf"] = distribution
        return distribution

    def cdf(self) -> np.ndarray:
        """Exact cumulative distribution function over counts ``0 .. n`` (read-only, cached)."""
        cached = self._pmf_cache.get("cdf")
        if cached is None:
            cached = np.cumsum(self.pmf())
            cached.setflags(write=False)
            self._pmf_cache["cdf"] = cached
        return cached

    def prob_zero(self) -> float:
        """``P(count = 0) = prod_i (1 - p_i)`` -- the probability of a fault-free version."""
        return float(np.prod(1.0 - self.probabilities))

    def prob_positive(self) -> float:
        """``P(count > 0)`` -- the probability of at least one fault (the paper's risk)."""
        return 1.0 - self.prob_zero()

    def prob_at_least(self, k: int) -> float:
        """``P(count >= k)`` computed from the exact PMF."""
        if k <= 0:
            return 1.0
        if k > self.n:
            return 0.0
        return float(np.sum(self.pmf()[k:]))

    def prob_exactly(self, k: int) -> float:
        """``P(count = k)`` computed from the exact PMF."""
        if k < 0 or k > self.n:
            return 0.0
        return float(self.pmf()[k])

    # ------------------------------------------------------------------ #
    # Approximations
    # ------------------------------------------------------------------ #
    def normal_approximation_cdf(self, k: float, continuity_correction: bool = True) -> float:
        """Normal approximation to ``P(count <= k)``.

        Used to study how well central-limit-theorem style reasoning (the basis
        of the paper's Section 5) describes the fault-count distribution.
        """
        variance = self.variance()
        if variance == 0.0:
            return 1.0 if k >= self.mean() else 0.0
        x = k + 0.5 if continuity_correction else k
        z = (x - self.mean()) / np.sqrt(variance)
        return float(sps.norm.cdf(z))

    def refined_normal_approximation_cdf(self, k: float) -> float:
        """Second-order (skewness-corrected) normal approximation to ``P(count <= k)``.

        Implements the refined normal approximation of Volkova (1996), commonly
        used for Poisson-binomial tail estimates.  More accurate than the plain
        normal approximation when the component probabilities are small and the
        distribution is noticeably skewed.
        """
        variance = self.variance()
        if variance == 0.0:
            return 1.0 if k >= self.mean() else 0.0
        sigma = np.sqrt(variance)
        gamma = self.skewness()
        x = (k + 0.5 - self.mean()) / sigma
        value = sps.norm.cdf(x) + gamma * (1.0 - x**2) * sps.norm.pdf(x) / 6.0
        return float(min(1.0, max(0.0, value)))

    def poisson_approximation_prob_zero(self) -> float:
        """Poisson (Le Cam) approximation to ``P(count = 0)``, ``exp(-sum p_i)``.

        Relevant to the paper's "very high-quality software" regime (Section 4)
        where all ``p_i`` are small and the fault count is approximately
        Poisson with mean ``sum p_i``.
        """
        return float(np.exp(-np.sum(self.probabilities)))

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` independent counts by simulating every Bernoulli component."""
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        if size == 0:
            return np.zeros(0, dtype=int)
        uniforms = rng.random((size, self.n))
        return np.sum(uniforms < self.probabilities[np.newaxis, :], axis=1).astype(int)

    # ------------------------------------------------------------------ #
    # Derived distributions used by the paper
    # ------------------------------------------------------------------ #
    def squared(self) -> "PoissonBinomial":
        """Distribution with every success probability squared.

        This is exactly the relationship between the single-version fault count
        ``N1`` (probabilities ``p_i``) and the common-fault count ``N2`` of an
        independently developed pair (probabilities ``p_i**2``), Section 2.2.
        """
        return PoissonBinomial(self.probabilities**2)

    def powered(self, exponent: int) -> "PoissonBinomial":
        """Distribution with every success probability raised to ``exponent``.

        Generalises :meth:`squared` to ``r``-version systems: a fault is common
        to all ``r`` independently developed versions with probability
        ``p_i**r``.
        """
        if exponent < 1:
            raise ValueError(f"exponent must be >= 1, got {exponent}")
        return PoissonBinomial(self.probabilities**exponent)
