"""Built-in evaluation methods, registered on the default registry.

Each method is a plain function ``(model, options, rng) -> dict`` decorated
with :func:`~repro.api.registry.register_method`.  ``options`` arrives fully
resolved (every schema default filled in, every override validated);
``rng`` is a :class:`numpy.random.Generator` for seed-consuming methods and
``None`` otherwise.  Heavy imports live inside the functions so importing
the registry stays cheap.

The option schemas here are the *canonical* ones: study cache keys hash the
resolved options, so renaming an option, changing a default or adding a new
option to an existing method invalidates every warm cache entry for it.
Extend by registering a *new* method (see ``tail-quantile`` at the bottom
for the template) rather than widening an existing schema.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.api.registry import BatchUnsupported, OptionSpec, register_batch, register_method

__all__: list[str] = []


def _variation_scales(variations) -> tuple[np.ndarray, np.ndarray]:
    """Split sweep variations into ``(p_scales, q_scales)`` arrays."""
    p_scales = np.array([variation["p_scale"] for variation in variations])
    q_scales = np.array([variation["q_scale"] for variation in variations])
    return p_scales, q_scales


def _prob_pfd_zero_scaled(
    model, p_scales: np.ndarray, q_scales: np.ndarray, versions: int
) -> np.ndarray:
    """Closed-form ``P(PFD = 0)`` per sweep point (faults with ``q > 0`` absent).

    A ``q_scale`` of zero collapses every impact to zero, making the PFD
    identically zero regardless of which faults are present.
    """
    effective = model.q > 0.0
    if not np.any(effective):
        return np.ones_like(p_scales)
    present = (p_scales[:, np.newaxis] * model.p[np.newaxis, effective]) ** versions
    return np.where(q_scales == 0.0, 1.0, np.prod(1.0 - present, axis=1))

_VERSIONS = OptionSpec(
    "versions", "int", 2, help="number of independently developed versions, combined 1-out-of-r"
)
_CONFIDENCE = OptionSpec("confidence", "float", 0.99, help="confidence level for the bounds")
_MAX_SUPPORT = OptionSpec(
    "max_support",
    "int",
    4096,
    allow_none=True,
    help="support-size cap for the exact convolution (null keeps the full support)",
)


@register_method(
    "moments",
    options=(_VERSIONS,),
    description="mean/std of the PFD, expected fault counts and P(PFD = 0)",
)
def _moments_method(model, options: dict, rng) -> dict:
    from repro.core.moments import expected_fault_count, pfd_moments
    from repro.core.pfd_distribution import prob_pfd_zero

    versions = int(options["versions"])
    single = pfd_moments(model, 1)
    system = pfd_moments(model, versions)
    return {
        "mean_single": single.mean,
        "std_single": single.std,
        "mean_system": system.mean,
        "std_system": system.std,
        "mean_ratio": system.mean / single.mean if single.mean else 1.0,
        "expected_faults_single": expected_fault_count(model, 1),
        "expected_faults_system": expected_fault_count(model, versions),
        "prob_pfd_zero_single": prob_pfd_zero(model, 1),
        "prob_pfd_zero_system": prob_pfd_zero(model, versions),
    }


@register_method(
    "exact",
    options=(
        _VERSIONS,
        _MAX_SUPPORT,
        OptionSpec("level", "float", 0.99, help="percentile level to report"),
        OptionSpec(
            "threshold",
            "float",
            None,
            allow_none=True,
            help="also report P(PFD > threshold) when set",
        ),
    ),
    description="exact PFD distribution: mean, std, a percentile and optional exceedance",
)
def _exact_method(model, options: dict, rng) -> dict:
    from repro.core.pfd_distribution import exact_pfd_distribution

    versions = int(options["versions"])
    max_support = options["max_support"]
    max_support = None if max_support is None else int(max_support)
    level = float(options["level"])
    distribution = exact_pfd_distribution(model, versions, max_support=max_support)
    record = {
        "exact_mean": distribution.mean(),
        "exact_std": distribution.std(),
        "exact_percentile_level": level,
        "exact_percentile": distribution.quantile(level),
        "exact_support": int(distribution.support.size),
    }
    if options["threshold"] is not None:
        threshold = float(options["threshold"])
        record["exact_threshold"] = threshold
        record["exact_exceedance"] = distribution.survival(threshold)
    return record


@register_batch("exact")
def _exact_batch(model, variations, options: dict, rng) -> list[dict]:
    """Batched ``exact``: one stacked convolution for the whole sweep.

    Dispatches to :func:`repro.stats.batched.batched_scaled_pfd`; means are
    exact, standard deviations and quantiles agree with the scalar path to
    the lattice resolution (``exact_support`` reports the shared lattice
    size, which may exceed ``max_support`` by the kernel's oversampling
    factor).  Full-support evaluations (``max_support=null``) have no
    batched form and fall back to per-point convolutions.
    """
    max_support = options["max_support"]
    if max_support is None:
        raise BatchUnsupported("full-support exact distributions sweep point by point")
    from repro.stats.batched import batched_scaled_pfd

    versions = int(options["versions"])
    level = float(options["level"])
    p_scales, q_scales = _variation_scales(variations)
    batch = batched_scaled_pfd(
        model, p_scales, q_scales, versions=versions, max_support=int(max_support)
    )
    means, stds, percentiles = batch.means(), batch.stds(), batch.quantiles(level)
    exceedances = None
    if options["threshold"] is not None:
        exceedances = batch.survival(float(options["threshold"]))
    records = []
    for index in range(batch.points):
        record = {
            "exact_mean": float(means[index]),
            "exact_std": float(stds[index]),
            "exact_percentile_level": level,
            "exact_percentile": float(percentiles[index]),
            "exact_support": int(batch.support.size),
        }
        if exceedances is not None:
            record["exact_threshold"] = float(options["threshold"])
            record["exact_exceedance"] = float(exceedances[index])
        records.append(record)
    return records


@register_method(
    "normal",
    options=(_VERSIONS, _CONFIDENCE),
    description="Section 5 normal-approximation bounds with Berry-Esseen error",
)
def _normal_method(model, options: dict, rng) -> dict:
    from repro.core.normal_approximation import (
        berry_esseen_error,
        bound_gain_ratio,
        normal_approximation,
    )
    from repro.stats.normal import k_factor_for_confidence

    versions = int(options["versions"])
    confidence = float(options["confidence"])
    k = k_factor_for_confidence(confidence)
    single = normal_approximation(model, 1)
    system = normal_approximation(model, versions)
    return {
        "confidence": confidence,
        "k_factor": k,
        "normal_bound_single": single.bound(k),
        "normal_bound_system": system.bound(k),
        "normal_bound_ratio": bound_gain_ratio(model, k) if versions == 2 else (
            system.bound(k) / single.bound(k) if single.bound(k) else 1.0
        ),
        "berry_esseen_single": berry_esseen_error(model, 1),
        "berry_esseen_system": berry_esseen_error(model, versions),
    }


@register_method(
    "bounds",
    options=(_CONFIDENCE,),
    description="guaranteed p_max bounds (eq. 12) for the 1-out-of-2 system",
)
def _bounds_method(model, options: dict, rng) -> dict:
    from repro.core.bounds import (
        confidence_bound_from_moments,
        mean_gain_factor,
        std_gain_factor,
    )
    from repro.core.moments import pfd_moments
    from repro.stats.normal import k_factor_for_confidence

    confidence = float(options["confidence"])
    k = k_factor_for_confidence(confidence)
    single = pfd_moments(model, 1)
    single_bound = single.bound(k)
    guaranteed = confidence_bound_from_moments(single.mean, single.std, model.p_max, k)
    return {
        "confidence": confidence,
        "p_max": model.p_max,
        "mean_gain_factor": mean_gain_factor(model.p_max),
        "std_gain_factor": std_gain_factor(model.p_max),
        "bound_single": single_bound,
        "guaranteed_bound_system": guaranteed,
        "guaranteed_bound_ratio": guaranteed / single_bound if single_bound else 1.0,
    }


@register_method(
    "montecarlo",
    options=(
        _VERSIONS,
        OptionSpec("replications", "int", 10_000, help="number of simulated developments"),
        OptionSpec(
            "chunk_size",
            "int",
            None,
            allow_none=True,
            help="rows drawn per chunk (bounds peak memory; null draws in one block)",
        ),
        OptionSpec("mc_jobs", "int", 1, help="worker processes inside the engine"),
        OptionSpec(
            "correlation", "float", 0.0, help="copula correlation between the versions"
        ),
    ),
    requires_seed=True,
    description="Monte Carlo simulation of the development process (streaming summaries)",
)
def _montecarlo_method(model, options: dict, rng) -> dict:
    from repro.montecarlo.engine import MonteCarloEngine

    versions = int(options["versions"])
    replications = int(options["replications"])
    chunk_size = options["chunk_size"]
    chunk_size = None if chunk_size is None else int(chunk_size)
    correlation = float(options["correlation"])
    process = None
    if correlation != 0.0:
        from repro.versions.correlated import CopulaDevelopmentProcess

        process = CopulaDevelopmentProcess(model=model, correlation=correlation)
    engine = MonteCarloEngine(
        model, process=process, chunk_size=chunk_size, jobs=int(options["mc_jobs"])
    )
    record: dict[str, Any] = {
        "mc_replications": replications,
        "mc_correlation": correlation,
    }
    if versions == 2:
        summary = engine.simulate_paired_streaming(replications, rng=rng).summary()
        summary.pop("replications", None)
        record.update({f"mc_{key}": value for key, value in summary.items()})
    else:
        result = engine.simulate_systems_streaming(replications, versions=versions, rng=rng)
        record.update(
            {
                "mc_mean_system": result.mean_pfd(),
                "mc_std_system": result.std_pfd(),
                "mc_prob_any_fault": result.prob_any_fault(),
                "mc_prob_pfd_zero": result.prob_pfd_zero(),
            }
        )
    return record


@register_batch("montecarlo")
def _montecarlo_batch(model, variations, options: dict, rng) -> list[dict]:
    """Batched ``montecarlo``: shared-demand (common-random-numbers) sweeps.

    One development history is sampled and every sweep point scored against
    it (:func:`repro.montecarlo.sweep.simulate_scaled_sweep`), so a point's
    values are *not* the independent-stream values the scalar path produces
    -- they are an equally valid estimate whose noise is shared across the
    sweep, which makes cross-point comparisons lower-variance.  ``chunk_size``
    and ``mc_jobs`` do not apply (the kernel bounds its own memory; the
    study runner parallelises across sweeps).  Correlated developments and
    sweeps beyond the sparse kernel's memory budget fall back to per-point
    simulation.
    """
    if float(options["correlation"]) != 0.0:
        raise BatchUnsupported("correlated developments sweep point by point")
    from repro.montecarlo.sweep import (
        MAX_SWEEP_ENTRIES,
        expected_entry_count,
        simulate_scaled_sweep,
    )

    versions = int(options["versions"])
    replications = int(options["replications"])
    p_scales, _ = _variation_scales(variations)
    if expected_entry_count(model, replications, versions, p_scales) > MAX_SWEEP_ENTRIES:
        raise BatchUnsupported("sweep exceeds the shared-demand memory budget")
    points = simulate_scaled_sweep(
        model, replications, variations, versions=versions, rng=rng
    )
    records = []
    for point in points:
        record: dict[str, Any] = {
            "mc_replications": replications,
            "mc_correlation": float(options["correlation"]),
        }
        if versions == 2:
            summary = point.summary()
            summary.pop("replications", None)
            record.update({f"mc_{key}": value for key, value in summary.items()})
        else:
            record.update(
                {
                    "mc_mean_system": point.mean_system,
                    "mc_std_system": point.std_system,
                    "mc_prob_any_fault": point.prob_any_fault_system,
                    "mc_prob_pfd_zero": point.prob_pfd_zero_system,
                }
            )
        records.append(record)
    return records


@register_method(
    "tail-quantile",
    options=(
        _VERSIONS,
        _MAX_SUPPORT,
        OptionSpec("level", "float", 0.99, help="quantile level to report"),
        OptionSpec(
            "threshold",
            "float",
            None,
            allow_none=True,
            help="also report the exceedance probability P(PFD > threshold) when set",
        ),
    ),
    description="tail of the exact PFD distribution: quantiles and exceedance probabilities",
)
def _tail_quantile_method(model, options: dict, rng) -> dict:
    """P(PFD > x) and quantiles straight from the exact distribution.

    This method exists to prove the registry's extensibility claim: it was
    added with *only* this registration and is reachable from the CLI
    (``repro evaluate --method tail-quantile``), study specs and
    :func:`repro.evaluate` without touching any dispatch code.
    """
    from repro.core.pfd_distribution import exact_pfd_distribution

    versions = int(options["versions"])
    max_support = options["max_support"]
    max_support = None if max_support is None else int(max_support)
    level = float(options["level"])
    distribution = exact_pfd_distribution(model, versions, max_support=max_support)
    record = {
        "tail_level": level,
        "tail_quantile": distribution.quantile(level),
        "tail_median": distribution.quantile(0.5),
        "tail_q90": distribution.quantile(0.9),
        "tail_q99": distribution.quantile(0.99),
        "tail_prob_zero": distribution.prob_zero(),
        "tail_support": int(distribution.support.size),
    }
    if options["threshold"] is not None:
        threshold = float(options["threshold"])
        record["tail_threshold"] = threshold
        record["tail_exceedance"] = distribution.survival(threshold)
    return record


@register_batch("tail-quantile")
def _tail_quantile_batch(model, variations, options: dict, rng) -> list[dict]:
    """Batched ``tail-quantile`` over the stacked exact distributions.

    Same kernel as the batched ``exact`` method; ``tail_prob_zero`` uses the
    closed form ``prod(1 - (k p_i)^versions)`` (faults with ``q > 0``),
    which is *more* accurate than the scalar path's readout from the
    support-capped distribution -- the capped distribution's zero atom is an
    artifact of support collapsing on either path.
    """
    max_support = options["max_support"]
    if max_support is None:
        raise BatchUnsupported("full-support exact distributions sweep point by point")
    from repro.stats.batched import batched_scaled_pfd

    versions = int(options["versions"])
    level = float(options["level"])
    p_scales, q_scales = _variation_scales(variations)
    batch = batched_scaled_pfd(
        model, p_scales, q_scales, versions=versions, max_support=int(max_support)
    )
    quantiles = {
        label: batch.quantiles(value)
        for label, value in (("level", level), ("median", 0.5), ("q90", 0.9), ("q99", 0.99))
    }
    prob_zero = _prob_pfd_zero_scaled(model, p_scales, q_scales, versions)
    exceedances = None
    if options["threshold"] is not None:
        exceedances = batch.survival(float(options["threshold"]))
    records = []
    for index in range(batch.points):
        record = {
            "tail_level": level,
            "tail_quantile": float(quantiles["level"][index]),
            "tail_median": float(quantiles["median"][index]),
            "tail_q90": float(quantiles["q90"][index]),
            "tail_q99": float(quantiles["q99"][index]),
            "tail_prob_zero": float(prob_zero[index]),
            "tail_support": int(batch.support.size),
        }
        if exceedances is not None:
            record["tail_threshold"] = float(options["threshold"])
            record["tail_exceedance"] = float(exceedances[index])
        records.append(record)
    return records
