"""Typed results and requests for the evaluation API.

:class:`EvaluationResult` replaces the ad-hoc metric dictionaries each
consumer used to assemble: one frozen value object carrying the method name,
the canonical resolved options the evaluation actually ran with, the metric
mapping, the seed entropy consumed (if any) and the wall-clock timing, with
a lossless ``to_dict``/``from_dict`` round trip so results can be shipped
through JSON unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

__all__ = ["EvaluationRequest", "EvaluationResult"]


def _frozen_items(mapping: Mapping[str, Any], what: str) -> tuple[tuple[str, Any], ...]:
    if not isinstance(mapping, Mapping):
        raise ValueError(f"{what} must be a mapping, got {type(mapping).__name__}")
    return tuple(sorted(mapping.items()))


def _jsonable(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays into pure-JSON Python types.

    Methods are free to return numpy values in their metrics (and callers to
    pass them as options); ``to_dict`` is the wire boundary, so everything
    that crosses it must survive ``json.dumps`` unchanged.
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return value


@dataclass(frozen=True)
class EvaluationRequest:
    """One method invocation to run against a model: a name plus options.

    ``options`` may be any mapping; it is normalised to a sorted tuple of
    items so requests are hashable and comparable.
    """

    method: str
    options: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.method or not isinstance(self.method, str):
            raise ValueError(f"request needs a method name, got {self.method!r}")
        if isinstance(self.options, Mapping):
            object.__setattr__(self, "options", _frozen_items(self.options, "options"))
        else:
            object.__setattr__(self, "options", tuple(sorted(tuple(self.options))))

    @staticmethod
    def coerce(request: "EvaluationRequest | Mapping | tuple | str") -> "EvaluationRequest":
        """Accept the convenient spellings of a request.

        ``"moments"``, ``("exact", {"level": 0.999})``, ``{"method":
        "bounds", "confidence": 0.95}`` and :class:`EvaluationRequest`
        instances all coerce to the same value object.
        """
        if isinstance(request, EvaluationRequest):
            return request
        if isinstance(request, str):
            return EvaluationRequest(method=request)
        if isinstance(request, Mapping):
            payload = dict(request)
            method = payload.pop("method", None)
            if not method:
                raise ValueError(f"request mapping needs a 'method' key: {request!r}")
            return EvaluationRequest(method=method, options=payload)
        if isinstance(request, tuple) and len(request) == 2:
            method, options = request
            return EvaluationRequest(method=method, options=dict(options))
        raise ValueError(
            "a request must be a method name, a (method, options) pair, a mapping "
            f"with a 'method' key or an EvaluationRequest, got {request!r}"
        )

    def option_dict(self) -> dict[str, Any]:
        return dict(self.options)


@dataclass(frozen=True)
class EvaluationResult:
    """The outcome of evaluating one method on one model.

    Attributes
    ----------
    method:
        Registered method name.
    options:
        Canonical resolved options (every default filled in), as sorted
        items -- exactly what the evaluation ran with.
    metrics:
        Flat mapping of metric names to JSON-serialisable values.
    seed_entropy:
        The integer entropy the method's random stream was seeded with, or
        ``None`` for deterministic methods (and when the caller supplied a
        live generator whose state cannot be recorded).
    elapsed_seconds:
        Wall-clock time of the evaluation call itself (dispatch excluded).
    """

    method: str
    options: tuple[tuple[str, Any], ...]
    metrics: tuple[tuple[str, Any], ...]
    seed_entropy: tuple[int, ...] | None = None
    elapsed_seconds: float = 0.0

    def __post_init__(self) -> None:
        if isinstance(self.options, Mapping):
            object.__setattr__(self, "options", _frozen_items(self.options, "options"))
        if isinstance(self.metrics, Mapping):
            object.__setattr__(self, "metrics", _frozen_items(self.metrics, "metrics"))
        if self.seed_entropy is not None:
            object.__setattr__(
                self, "seed_entropy", tuple(int(part) for part in self.seed_entropy)
            )

    def option_dict(self) -> dict[str, Any]:
        """The resolved options as a plain dictionary."""
        return dict(self.options)

    def metric_dict(self) -> dict[str, Any]:
        """The metrics as a plain dictionary (what study tables record)."""
        return dict(self.metrics)

    def __getitem__(self, key: str) -> Any:
        """Convenience access to a metric: ``result["mean_system"]``."""
        try:
            return self.metric_dict()[key]
        except KeyError:
            raise KeyError(
                f"result of method {self.method!r} has no metric {key!r}; "
                f"available: {', '.join(name for name, _ in self.metrics)}"
            ) from None

    def to_dict(self) -> dict:
        """Plain-dictionary form, with every value a pure JSON type.

        Numpy scalars and arrays in the metrics or options are converted
        (``np.float64`` -> ``float``, ``np.ndarray`` -> nested lists), so the
        output always survives ``json.dumps`` -- this is the wire form the
        evaluation service ships, and :meth:`from_dict` round-trips it.
        """
        return {
            "method": self.method,
            "options": _jsonable(self.option_dict()),
            "metrics": _jsonable(self.metric_dict()),
            "seed_entropy": None if self.seed_entropy is None else list(self.seed_entropy),
            "elapsed_seconds": float(self.elapsed_seconds),
        }

    @staticmethod
    def from_dict(data: Mapping) -> "EvaluationResult":
        """Inverse of :meth:`to_dict` (round-trips losslessly)."""
        if not isinstance(data, Mapping):
            raise ValueError(f"a result must be a mapping, got {type(data).__name__}")
        unknown = set(data) - {"method", "options", "metrics", "seed_entropy", "elapsed_seconds"}
        if unknown:
            raise ValueError(
                f"unknown result keys: {', '.join(sorted(str(key) for key in unknown))}"
            )
        seed_entropy = data.get("seed_entropy")
        return EvaluationResult(
            method=data["method"],
            options=dict(data.get("options", {})),
            metrics=dict(data.get("metrics", {})),
            seed_entropy=None if seed_entropy is None else tuple(seed_entropy),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
        )
