"""The method registry: one extensible catalogue of evaluation methods.

Every way of evaluating a :class:`~repro.core.fault_model.FaultModel` --
moments, the exact PFD distribution, the normal approximation, guaranteed
``p_max`` bounds, Monte Carlo simulation, tail quantiles -- is registered
here as a :class:`MethodDefinition`: a name, a typed option schema with
defaults, whether the method consumes randomness, and the evaluation
callable itself.  The CLI, the study subsystem and the top-level
:func:`repro.evaluate` entry point all resolve methods through the same
:class:`MethodRegistry`, so registering a method once makes it available
everywhere, with its options validated identically on every path.

Option values are *validated but never coerced*: the canonical resolved
options (:meth:`MethodRegistry.resolve_options`) are hashed into study cache
keys, so an integer given for a float option must stay an integer or every
warm cache entry would silently invalidate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

__all__ = [
    "BatchUnsupported",
    "MethodDefinition",
    "MethodRegistry",
    "OptionSpec",
    "default_registry",
    "register_batch",
    "register_method",
]


class BatchUnsupported(Exception):
    """Raised by a batched evaluator to decline a particular sweep.

    A method can support batching in general but not for every option
    combination (e.g. Monte Carlo sweeps require the independent development
    process, and very large sweeps may exceed the kernel's memory budget).
    Raising this from ``evaluate_batch`` makes :func:`repro.evaluate_sweep`
    fall back to the scalar per-variation path transparently.
    """

#: Accepted option value types, by schema name.
OPTION_TYPES = ("int", "float", "bool", "str")


@dataclass(frozen=True)
class OptionSpec:
    """One typed method option: name, type, default and documentation."""

    name: str
    type: str
    default: Any = None
    allow_none: bool = False
    help: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"option name must be a non-empty string, got {self.name!r}")
        if self.type not in OPTION_TYPES:
            raise ValueError(
                f"option {self.name!r} has unknown type {self.type!r}; "
                f"expected one of {', '.join(OPTION_TYPES)}"
            )
        if self.default is not None:
            self.validate(self.default)
        elif not self.allow_none:
            raise ValueError(f"option {self.name!r} defaults to None but allow_none is False")

    def validate(self, value: Any) -> Any:
        """Check ``value`` against the schema and return it *unchanged*.

        Integral floats pass for ``int`` options and integers pass for
        ``float`` options (matching what JSON specs and sweep axes supply),
        but the value is returned as given -- cache keys hash these values,
        so validation must never rewrite them.
        """
        if value is None:
            if self.allow_none:
                return None
            raise ValueError(f"option {self.name!r} must not be None")
        if self.type == "bool":
            if isinstance(value, bool):
                return value
        elif self.type == "str":
            if isinstance(value, str):
                return value
        elif isinstance(value, bool):
            pass  # bool is an int subclass; never accept it for numeric options
        elif self.type == "int":
            if isinstance(value, int):
                return value
            if isinstance(value, float) and value.is_integer():
                return value
        elif self.type == "float":
            if isinstance(value, (int, float)):
                if isinstance(value, float) and not math.isfinite(value):
                    raise ValueError(
                        f"option {self.name!r} must be finite, got {value!r}"
                    )
                return value
        raise ValueError(
            f"option {self.name!r} expects {self.type}"
            f"{' (or null)' if self.allow_none else ''}, got {value!r}"
        )

    def to_dict(self) -> dict:
        """JSON-friendly schema entry (used by ``repro methods``)."""
        return {
            "name": self.name,
            "type": self.type,
            "default": self.default,
            "allow_none": self.allow_none,
            "help": self.help,
        }


@dataclass(frozen=True)
class MethodDefinition:
    """One registered evaluation method.

    ``evaluate`` is called as ``evaluate(model, options, rng)`` where
    ``options`` is the fully resolved option mapping (every default filled
    in) and ``rng`` is a :class:`numpy.random.Generator` when the method
    declares ``requires_seed`` (``None`` otherwise).  It must return a flat,
    JSON-serialisable mapping of metric names to values.
    """

    name: str
    evaluate: Callable[..., Mapping[str, Any]]
    options: tuple[OptionSpec, ...] = ()
    requires_seed: bool = False
    description: str = ""
    #: Optional batched sweep evaluator ``(model, variations, options, rng)
    #: -> sequence of metric mappings`` where ``variations`` is a tuple of
    #: ``{"p_scale": float, "q_scale": float}`` model transforms.  Methods
    #: opt in via :func:`register_batch`; see :func:`repro.evaluate_sweep`.
    evaluate_batch: Callable[..., Any] | None = None

    @property
    def supports_batch(self) -> bool:
        """Whether the method opted into batched sweep evaluation."""
        return self.evaluate_batch is not None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"method name must be a non-empty string, got {self.name!r}")
        names = [option.name for option in self.options]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise ValueError(
                f"method {self.name!r} declares duplicate option(s): "
                f"{', '.join(sorted(duplicates))}"
            )

    @property
    def option_names(self) -> tuple[str, ...]:
        """Names of the options this method accepts, in declaration order."""
        return tuple(option.name for option in self.options)

    def defaults(self) -> dict[str, Any]:
        """Default value of every option."""
        return {option.name: option.default for option in self.options}

    def schema(self) -> dict:
        """JSON-friendly description of the method and its options."""
        return {
            "name": self.name,
            "description": self.description,
            "requires_seed": self.requires_seed,
            "options": [option.to_dict() for option in self.options],
        }


class MethodRegistry:
    """A named collection of :class:`MethodDefinition` entries.

    The library-wide instance (:func:`default_registry`) is what the CLI,
    the study subsystem and :func:`repro.evaluate` dispatch through; fresh
    instances can be built for tests or embedding.
    """

    def __init__(self) -> None:
        self._methods: dict[str, MethodDefinition] = {}

    def register(self, definition: MethodDefinition) -> MethodDefinition:
        """Add a method; a name can only be registered once."""
        if not isinstance(definition, MethodDefinition):
            raise TypeError(
                f"expected a MethodDefinition, got {type(definition).__name__}"
            )
        if definition.name in self._methods:
            raise ValueError(f"method {definition.name!r} is already registered")
        self._methods[definition.name] = definition
        return definition

    def unregister(self, name: str) -> MethodDefinition:
        """Remove a method by name and return its definition.

        This is the teardown seam for tests and short-lived plugin
        registrations; unknown names fail with the catalogue, like
        :meth:`get`.
        """
        definition = self.get(name)
        del self._methods[name]
        return definition

    def attach_batch(self, name: str, evaluate_batch: Callable) -> MethodDefinition:
        """Attach (or replace) the batched sweep evaluator of a registered method.

        The stored :class:`MethodDefinition` is frozen, so attaching swaps in
        a copy with ``evaluate_batch`` set; everything else (options, seed
        requirement, the scalar evaluator) is untouched.
        """
        import dataclasses

        definition = dataclasses.replace(self.get(name), evaluate_batch=evaluate_batch)
        self._methods[name] = definition
        return definition

    def get(self, name: str) -> MethodDefinition:
        """Look a method up by name; unknown names fail with the catalogue."""
        try:
            return self._methods[name]
        except KeyError:
            raise ValueError(
                f"unknown method {name!r}; available: {', '.join(self.names())}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """Registered method names, sorted."""
        return tuple(sorted(self._methods))

    def resolve_options(self, name: str, options: Mapping[str, Any] | None = None) -> dict:
        """Merge ``options`` over the method's defaults and validate each value.

        Returns the *canonical resolved options*: every option present with
        either its default or the validated override, values untouched.
        Study cache keys are derived from exactly this mapping, so the same
        evaluation always resolves to the same bytes no matter which surface
        (CLI, spec, Python call) requested it.
        """
        definition = self.get(name)
        specs = {option.name: option for option in definition.options}
        resolved = definition.defaults()
        for key, value in dict(options or {}).items():
            if key not in specs:
                raise ValueError(
                    f"method {name!r} does not accept option {key!r}; "
                    f"accepted: {', '.join(sorted(specs)) or '(none)'}"
                )
            resolved[key] = specs[key].validate(value)
        return resolved

    def __contains__(self, name: object) -> bool:
        return name in self._methods

    def __iter__(self) -> Iterator[MethodDefinition]:
        for name in self.names():
            yield self._methods[name]

    def __len__(self) -> int:
        return len(self._methods)


#: The library-wide registry.  Built-in methods are registered by
#: :mod:`repro.api.methods` when :mod:`repro.api` is imported.
_DEFAULT_REGISTRY = MethodRegistry()


def default_registry() -> MethodRegistry:
    """The registry used by the CLI, studies and :func:`repro.evaluate`."""
    # Importing the built-in methods lazily breaks the import cycle
    # (methods.py needs OptionSpec from this module) while guaranteeing the
    # built-ins are present before anything dispatches.
    from repro.api import methods as _builtin_methods  # noqa: F401

    return _DEFAULT_REGISTRY


def register_method(
    name: str,
    *,
    options: tuple[OptionSpec, ...] | list[OptionSpec] = (),
    requires_seed: bool = False,
    description: str = "",
    registry: MethodRegistry | None = None,
) -> Callable[[Callable], Callable]:
    """Decorator: register ``evaluate(model, options, rng)`` as a method.

    This is the single extension point: one registration makes the method
    available to ``repro evaluate`` / ``repro methods`` on the command line,
    to study specs, and to :func:`repro.evaluate`::

        from repro.api import OptionSpec, register_method

        @register_method(
            "mean-only",
            options=(OptionSpec("versions", "int", 2),),
            description="just the system mean",
        )
        def _mean_only(model, options, rng):
            from repro.core.moments import pfd_moments
            return {"mean": pfd_moments(model, int(options["versions"])).mean}
    """
    target = registry if registry is not None else _DEFAULT_REGISTRY

    def decorator(function: Callable) -> Callable:
        target.register(
            MethodDefinition(
                name=name,
                evaluate=function,
                options=tuple(options),
                requires_seed=requires_seed,
                description=description,
            )
        )
        return function

    return decorator


def register_batch(
    name: str, *, registry: MethodRegistry | None = None
) -> Callable[[Callable], Callable]:
    """Decorator: attach a batched sweep evaluator to a registered method.

    The decorated function is called as ``evaluate_batch(model, variations,
    options, rng)`` with the *base* (untransformed) model, a tuple of
    ``{"p_scale", "q_scale"}`` variations, the fully resolved options shared
    by every variation, and one shared random stream (``None`` for
    deterministic methods).  It must return one metric mapping per
    variation, in order, or raise :class:`BatchUnsupported` to make the
    caller fall back to per-variation scalar evaluation::

        @register_batch("exact")
        def _exact_batch(model, variations, options, rng):
            ...
    """
    target = registry if registry is not None else _DEFAULT_REGISTRY

    def decorator(function: Callable) -> Callable:
        target.attach_batch(name, function)
        return function

    return decorator
