"""Top-level evaluation entry points: one dispatch path for every consumer.

:func:`evaluate` runs a single registered method against a model and returns
a typed :class:`~repro.api.results.EvaluationResult`; :func:`evaluate_batch`
runs many requests against the same model, optionally fanning out across
worker processes (the same process-parallel pattern as the Monte Carlo
engine's ``jobs`` and the study runner).  The CLI's ``evaluate`` subcommand
and the study runner are both thin layers over these functions, so a method
registered once behaves identically everywhere.
"""

from __future__ import annotations

import time
from typing import Any, Mapping, Sequence

import numpy as np

from repro.api.registry import MethodDefinition, MethodRegistry, default_registry
from repro.api.results import EvaluationRequest, EvaluationResult
from repro.stats.rng import DEFAULT_SEED

__all__ = ["evaluate", "evaluate_batch"]


def _normalise_entropy(seed) -> tuple[int, ...] | None:
    """Turn a seed spelling into SeedSequence entropy (``None`` for a live rng)."""
    if seed is None:
        return (DEFAULT_SEED,)
    if isinstance(seed, (bool, float)):
        raise ValueError(f"seed must be an integer, a sequence of integers or a Generator, got {seed!r}")
    if isinstance(seed, (int, np.integer)):
        return (int(seed),)
    if isinstance(seed, np.random.Generator):
        return None
    if isinstance(seed, Sequence) and seed and all(
        isinstance(part, (int, np.integer)) and not isinstance(part, bool) for part in seed
    ):
        return tuple(int(part) for part in seed)
    raise ValueError(
        f"seed must be an integer, a sequence of integers or a Generator, got {seed!r}"
    )


def _run_definition(
    definition: MethodDefinition,
    model,
    resolved: dict,
    seed,
) -> EvaluationResult:
    """Evaluate a resolved method call and wrap the outcome."""
    rng = None
    entropy = None
    if definition.requires_seed:
        entropy = _normalise_entropy(seed)
        if entropy is None:
            rng = seed  # a live Generator; its state cannot be recorded
        else:
            # Matches the study runner's historical seeding exactly:
            # Generator(SeedSequence(list(entropy))) -- cached Monte Carlo
            # records stay byte-identical across the old and new dispatch.
            rng = np.random.default_rng(np.random.SeedSequence(list(entropy)))
    start = time.perf_counter()
    metrics = definition.evaluate(model, resolved, rng)
    elapsed = time.perf_counter() - start
    if not isinstance(metrics, Mapping):
        raise TypeError(
            f"method {definition.name!r} must return a mapping of metrics, "
            f"got {type(metrics).__name__}"
        )
    return EvaluationResult(
        method=definition.name,
        options=resolved,
        metrics=dict(metrics),
        seed_entropy=entropy,
        elapsed_seconds=elapsed,
    )


def evaluate(
    model,
    method: str,
    *,
    seed=None,
    registry: MethodRegistry | None = None,
    options: Mapping[str, Any] | None = None,
    **kwargs,
) -> EvaluationResult:
    """Evaluate one registered method on a fault model.

    Parameters
    ----------
    model:
        The :class:`~repro.core.fault_model.FaultModel` to evaluate.
    method:
        A registered method name (see ``repro methods`` or
        :meth:`MethodRegistry.names`).
    seed:
        Randomness for seed-consuming methods: an integer, a sequence of
        integers (SeedSequence entropy) or a live
        :class:`numpy.random.Generator`.  ``None`` uses the library default
        seed, so "no seed" still means "reproducible".  Deterministic
        methods ignore it.
    registry:
        Registry to dispatch through (default: the library-wide one).
    options:
        Method options as a mapping.  Use this spelling for options whose
        names collide with this function's own parameters (``seed``,
        ``registry``, ``options``) -- programmatic callers like the CLI
        always route through it.
    **kwargs:
        Method options as keyword arguments (the convenient spelling);
        merged over ``options``.  Unknown options and wrong types raise
        ``ValueError``.

    Examples
    --------
    >>> from repro import evaluate  # doctest: +SKIP
    >>> evaluate(model, "tail-quantile", level=0.999)["tail_quantile"]  # doctest: +SKIP
    """
    target = registry if registry is not None else default_registry()
    definition = target.get(method)
    resolved = target.resolve_options(method, {**dict(options or {}), **kwargs})
    return _run_definition(definition, model, resolved, seed)


def _evaluate_request_worker(arguments: tuple) -> dict:
    """Module-level worker (picklable) used by the parallel batch path."""
    model, method, options, seed = arguments
    return evaluate(model, method, seed=seed, options=options).to_dict()


def evaluate_batch(
    model,
    requests: Sequence,
    *,
    jobs: int = 1,
    seed=None,
    registry: MethodRegistry | None = None,
) -> list[EvaluationResult]:
    """Evaluate many methods on one model, optionally in parallel.

    Parameters
    ----------
    model:
        The fault model shared by every request.
    requests:
        Any mix of method names, ``(method, options)`` pairs, mappings with
        a ``"method"`` key and :class:`EvaluationRequest` objects.
    jobs:
        Worker processes (1 = in-process).  Results are identical for any
        ``jobs``: each request's random stream is derived from ``(seed,
        request index)``, never from pool scheduling.  ``jobs > 1`` requires
        the default registry (a custom ``registry`` object cannot be shipped
        across the process boundary) and, on spawn-start platforms
        (macOS/Windows), methods registered at *import* time -- a
        registration made interactively in ``__main__`` is invisible to
        spawned workers.
    seed:
        Base integer seed for the batch (``None`` = the library default).
    registry:
        Registry to dispatch through (default: the library-wide one);
        incompatible with ``jobs > 1``.

    Returns the results in request order.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be a positive integer, got {jobs}")
    if jobs > 1 and registry is not None:
        raise ValueError(
            "jobs > 1 requires the default registry: a custom registry object "
            "cannot be shipped to worker processes (run with jobs=1 instead)"
        )
    target = registry if registry is not None else default_registry()
    coerced = [EvaluationRequest.coerce(request) for request in requests]
    # Validate the whole batch before evaluating anything: one typo must not
    # waste the expensive requests queued ahead of it.
    for request in coerced:
        target.resolve_options(request.method, request.option_dict())
    base_seed = DEFAULT_SEED if seed is None else seed
    if _normalise_entropy(base_seed) is None:
        raise ValueError("evaluate_batch needs an integer seed (per-request streams are derived from it)")
    work = [
        (model, request.method, request.option_dict(), (*_normalise_entropy(base_seed), index))
        for index, request in enumerate(coerced)
    ]
    if jobs > 1 and len(work) > 1:
        # Worker processes re-import the default registry (guaranteed above:
        # jobs > 1 rejects custom registry objects).
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as executor:
            payloads = list(executor.map(_evaluate_request_worker, work))
        return [EvaluationResult.from_dict(payload) for payload in payloads]
    return [
        evaluate(model, method, seed=entropy, registry=target, options=options)
        for model, method, options, entropy in work
    ]
