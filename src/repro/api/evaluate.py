"""Top-level evaluation entry points: one dispatch path for every consumer.

:func:`evaluate` runs a single registered method against a model and returns
a typed :class:`~repro.api.results.EvaluationResult`; :func:`evaluate_batch`
runs many requests against the same model, optionally fanning out across
worker processes (the same process-parallel pattern as the Monte Carlo
engine's ``jobs`` and the study runner); :func:`evaluate_sweep` runs *one*
method across many model variations (``p_scale`` / ``q_scale`` sweep
points), dispatching to the method's batched kernel when it registered one
(:func:`~repro.api.registry.register_batch`) and falling back to scalar
per-variation evaluation otherwise.  The CLI's ``evaluate`` subcommand and
the study runner are thin layers over these functions, so a method
registered once behaves identically everywhere.
"""

from __future__ import annotations

import time
from typing import Any, Mapping, Sequence

import numpy as np

from repro.api.registry import (
    BatchUnsupported,
    MethodDefinition,
    MethodRegistry,
    default_registry,
)
from repro.api.results import EvaluationRequest, EvaluationResult
from repro.stats.rng import DEFAULT_SEED

__all__ = ["evaluate", "evaluate_batch", "evaluate_sweep"]


def _normalise_entropy(seed) -> tuple[int, ...] | None:
    """Turn a seed spelling into SeedSequence entropy (``None`` for a live rng)."""
    if seed is None:
        return (DEFAULT_SEED,)
    if isinstance(seed, (bool, float)):
        raise ValueError(f"seed must be an integer, a sequence of integers or a Generator, got {seed!r}")
    if isinstance(seed, (int, np.integer)):
        return (int(seed),)
    if isinstance(seed, np.random.Generator):
        return None
    if isinstance(seed, Sequence) and seed and all(
        isinstance(part, (int, np.integer)) and not isinstance(part, bool) for part in seed
    ):
        return tuple(int(part) for part in seed)
    raise ValueError(
        f"seed must be an integer, a sequence of integers or a Generator, got {seed!r}"
    )


def _run_definition(
    definition: MethodDefinition,
    model,
    resolved: dict,
    seed,
) -> EvaluationResult:
    """Evaluate a resolved method call and wrap the outcome."""
    rng = None
    entropy = None
    if definition.requires_seed:
        entropy = _normalise_entropy(seed)
        if entropy is None:
            rng = seed  # a live Generator; its state cannot be recorded
        else:
            # Matches the study runner's historical seeding exactly:
            # Generator(SeedSequence(list(entropy))) -- cached Monte Carlo
            # records stay byte-identical across the old and new dispatch.
            rng = np.random.default_rng(np.random.SeedSequence(list(entropy)))
    start = time.perf_counter()
    metrics = definition.evaluate(model, resolved, rng)
    elapsed = time.perf_counter() - start
    if not isinstance(metrics, Mapping):
        raise TypeError(
            f"method {definition.name!r} must return a mapping of metrics, "
            f"got {type(metrics).__name__}"
        )
    return EvaluationResult(
        method=definition.name,
        options=resolved,
        metrics=dict(metrics),
        seed_entropy=entropy,
        elapsed_seconds=elapsed,
    )


def evaluate(
    model,
    method: str,
    *,
    seed=None,
    registry: MethodRegistry | None = None,
    options: Mapping[str, Any] | None = None,
    **kwargs,
) -> EvaluationResult:
    """Evaluate one registered method on a fault model.

    Parameters
    ----------
    model:
        The :class:`~repro.core.fault_model.FaultModel` to evaluate.
    method:
        A registered method name (see ``repro methods`` or
        :meth:`MethodRegistry.names`).
    seed:
        Randomness for seed-consuming methods: an integer, a sequence of
        integers (SeedSequence entropy) or a live
        :class:`numpy.random.Generator`.  ``None`` uses the library default
        seed, so "no seed" still means "reproducible".  Deterministic
        methods ignore it.
    registry:
        Registry to dispatch through (default: the library-wide one).
    options:
        Method options as a mapping.  Use this spelling for options whose
        names collide with this function's own parameters (``seed``,
        ``registry``, ``options``) -- programmatic callers like the CLI
        always route through it.
    **kwargs:
        Method options as keyword arguments (the convenient spelling);
        merged over ``options``.  Unknown options and wrong types raise
        ``ValueError``.

    Examples
    --------
    >>> from repro import evaluate  # doctest: +SKIP
    >>> evaluate(model, "tail-quantile", level=0.999)["tail_quantile"]  # doctest: +SKIP
    """
    target = registry if registry is not None else default_registry()
    definition = target.get(method)
    resolved = target.resolve_options(method, {**dict(options or {}), **kwargs})
    return _run_definition(definition, model, resolved, seed)


def _evaluate_request_worker(arguments: tuple) -> dict:
    """Module-level worker (picklable) used by the parallel batch path."""
    model, method, options, seed = arguments
    return evaluate(model, method, seed=seed, options=options).to_dict()


def evaluate_batch(
    model,
    requests: Sequence,
    *,
    jobs: int = 1,
    seed=None,
    registry: MethodRegistry | None = None,
    stream_indices: Sequence[int] | None = None,
) -> list[EvaluationResult]:
    """Evaluate many methods on one model, optionally in parallel.

    Parameters
    ----------
    model:
        The fault model shared by every request.
    requests:
        Any mix of method names, ``(method, options)`` pairs, mappings with
        a ``"method"`` key and :class:`EvaluationRequest` objects.
    jobs:
        Worker processes (1 = in-process).  Results are identical for any
        ``jobs``: each request's random stream is derived from ``(seed,
        request index)``, never from pool scheduling.  Duplicate requests
        are coalesced -- identical (method, options, derived stream) work
        items evaluate once and the result fans out to every requester --
        which cannot change any value: deterministic methods ignore their
        stream, and stochastic duplicates only share work when their
        ``(seed, index)`` streams are equal.  ``jobs > 1`` requires
        the default registry (a custom ``registry`` object cannot be shipped
        across the process boundary) and, on spawn-start platforms
        (macOS/Windows), methods registered at *import* time -- a
        registration made interactively in ``__main__`` is invisible to
        spawned workers.
    seed:
        Base integer seed for the batch (``None`` = the library default).
    registry:
        Registry to dispatch through (default: the library-wide one);
        incompatible with ``jobs > 1``.
    stream_indices:
        The per-request stream indices, overriding the default positions
        ``0..len(requests)-1``.  This is how a caller that *split* a batch
        (the cluster router fanning one ``evaluate_batch`` out across
        shards) keeps every request's ``(seed, index)`` stream -- and
        therefore its result, byte for byte -- identical to the unsplit
        call: each sub-batch is sent with its requests' original global
        indices.  Must match ``requests`` in length; duplicates are legal
        (they coalesce exactly like duplicated requests).

    Returns the results in request order.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be a positive integer, got {jobs}")
    if jobs > 1 and registry is not None:
        raise ValueError(
            "jobs > 1 requires the default registry: a custom registry object "
            "cannot be shipped to worker processes (run with jobs=1 instead)"
        )
    target = registry if registry is not None else default_registry()
    coerced = [EvaluationRequest.coerce(request) for request in requests]
    # Validate the whole batch before evaluating anything: one typo must not
    # waste the expensive requests queued ahead of it.
    for request in coerced:
        target.resolve_options(request.method, request.option_dict())
    base_seed = DEFAULT_SEED if seed is None else seed
    if _normalise_entropy(base_seed) is None:
        raise ValueError("evaluate_batch needs an integer seed (per-request streams are derived from it)")
    if stream_indices is None:
        indices = list(range(len(coerced)))
    else:
        if len(stream_indices) != len(coerced):
            raise ValueError(
                f"stream_indices ({len(stream_indices)}) must match requests ({len(coerced)})"
            )
        indices = []
        for position in stream_indices:
            if isinstance(position, bool) or not isinstance(position, (int, np.integer)):
                raise ValueError(
                    f"stream_indices must be non-negative integers, got {position!r}"
                )
            if position < 0:
                raise ValueError(
                    f"stream_indices must be non-negative integers, got {position!r}"
                )
            indices.append(int(position))
    work = [
        (model, request.method, request.option_dict(), (*_normalise_entropy(base_seed), index))
        for index, request in zip(indices, coerced)
    ]
    # Coalesce duplicates: two requests produce the same result exactly when
    # they agree on method, options and the random stream their evaluation
    # consumes -- for deterministic methods the stream is irrelevant, so any
    # identical (method, options) pair shares one evaluation; stochastic
    # requests additionally need equal derived entropy.  The computed result
    # object fans out to every position, preserving request order and
    # jobs-invariance (the per-request streams never depended on scheduling).
    positions: list[int] = []
    unique_work: list[tuple] = []
    slot_by_key: dict[tuple, int] = {}
    for request, item in zip(coerced, work):
        entropy = item[3] if target.get(request.method).requires_seed else None
        key = (request.method, request.options, entropy)
        slot = slot_by_key.get(key)
        if slot is None:
            slot = slot_by_key[key] = len(unique_work)
            unique_work.append(item)
        positions.append(slot)
    if jobs > 1 and len(unique_work) > 1:
        # Worker processes re-import the default registry (guaranteed above:
        # jobs > 1 rejects custom registry objects).
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, len(unique_work))) as executor:
            payloads = list(executor.map(_evaluate_request_worker, unique_work))
        computed = [EvaluationResult.from_dict(payload) for payload in payloads]
    else:
        computed = [
            evaluate(model, method, seed=entropy, registry=target, options=options)
            for model, method, options, entropy in unique_work
        ]
    return [computed[slot] for slot in positions]


# --------------------------------------------------------------------- #
# Sweeps: one method, many model variations
# --------------------------------------------------------------------- #
def _coerce_variation(variation) -> dict:
    """Normalise one sweep variation into ``{"p_scale", "q_scale"}`` floats."""
    if not isinstance(variation, Mapping):
        raise ValueError(
            f"a sweep variation must be a mapping with p_scale/q_scale, got {variation!r}"
        )
    unknown = sorted(set(variation) - {"p_scale", "q_scale"})
    if unknown:
        raise ValueError(
            f"sweep variations accept only p_scale/q_scale, got {', '.join(unknown)}"
        )
    return {
        "p_scale": float(variation.get("p_scale", 1.0)),
        "q_scale": float(variation.get("q_scale", 1.0)),
    }


def _variation_error(model, variation: Mapping) -> str | None:
    """The error a variation would raise when applied to ``model``, if any.

    Mirrors :meth:`FaultModel.rescaled` so batched kernels can report
    per-variation failures without giving up the whole sweep.
    """
    p_scale, q_scale = variation["p_scale"], variation["q_scale"]
    if not np.isfinite(p_scale) or p_scale < 0.0:
        return f"k must be non-negative, got {p_scale}"
    if not np.isfinite(q_scale) or q_scale < 0.0:
        return f"q_scale must be non-negative, got {q_scale}"
    scaled_max = p_scale * model.p_max
    if scaled_max > 1.0:
        return (
            f"scaling by k={p_scale} pushes some p_i above 1 "
            f"(max would be {scaled_max:.4f})"
        )
    if model.strict and q_scale * model.total_impact > 1.0 + 1e-9:
        return (
            f"sum(q) exceeds 1 after q_scale={q_scale}, violating the "
            "non-overlapping failure-region assumption"
        )
    return None


def _sweep_outcome_triples(
    model,
    method: str,
    variations: Sequence,
    *,
    options: Mapping[str, Any] | None = None,
    seed=None,
    variation_seeds: Sequence | None = None,
    registry: MethodRegistry | None = None,
    subset: Sequence[int] | None = None,
) -> list[tuple[str, Any, tuple[int, ...] | None]]:
    """Core sweep dispatch: ``(status, payload, entropy)`` per requested variation.

    ``subset`` names the variation positions the caller needs (default:
    all).  A batched kernel always sees the *whole* sweep -- the shared
    structure it derives from the scale set (the Monte Carlo demand
    envelope, the exact kernel's lattice span) must not depend on which
    points a caller happens to need -- while the scalar path (no kernel, or
    the kernel declined) evaluates only the requested positions.  The third
    element records the seed entropy the point's result actually came from
    (the shared sweep entropy on the batched path, the per-variation stream
    otherwise; ``None`` for deterministic methods and live generators).
    """
    target = registry if registry is not None else default_registry()
    definition = target.get(method)
    resolved = target.resolve_options(method, options)
    coerced = [_coerce_variation(variation) for variation in variations]
    if variation_seeds is not None and len(variation_seeds) != len(coerced):
        raise ValueError(
            f"variation_seeds ({len(variation_seeds)}) must match variations ({len(coerced)})"
        )
    wanted = list(range(len(coerced))) if subset is None else [int(i) for i in subset]
    outcomes: dict[int, tuple[str, Any, tuple[int, ...] | None]] = {}
    valid: list[int] = []
    for index, variation in enumerate(coerced):
        error = _variation_error(model, variation)
        if error is None:
            valid.append(index)
        else:
            outcomes[index] = ("error", f"ValueError: {error}", None)
    if valid and definition.supports_batch:
        entropy = _normalise_entropy(seed)
        rng = None
        if definition.requires_seed:
            rng = seed if entropy is None else np.random.default_rng(
                np.random.SeedSequence(list(entropy))
            )
        try:
            metric_rows = definition.evaluate_batch(
                model, tuple(coerced[index] for index in valid), resolved, rng
            )
        except BatchUnsupported:
            metric_rows = None
        if metric_rows is not None:
            rows = list(metric_rows)
            if len(rows) != len(valid):
                raise TypeError(
                    f"batched evaluator of {method!r} returned {len(rows)} records "
                    f"for {len(valid)} variations"
                )
            shared = entropy if definition.requires_seed else None
            for index, metrics in zip(valid, rows):
                if not isinstance(metrics, Mapping):
                    raise TypeError(
                        f"batched evaluator of {method!r} must yield metric mappings, "
                        f"got {type(metrics).__name__}"
                    )
                outcomes[index] = ("ok", dict(metrics), shared)
            return [outcomes[index] for index in wanted]
    # Scalar path (no batched kernel, or it declined): one transformed model
    # per *requested* variation -- unrequested points are never evaluated.
    entropy = _normalise_entropy(seed) if definition.requires_seed else None
    for index in wanted:
        if index in outcomes:
            continue
        variation = coerced[index]
        point_entropy: tuple[int, ...] | None = None
        if definition.requires_seed:
            if variation_seeds is not None:
                point_seed = tuple(int(part) for part in variation_seeds[index])
                point_entropy = point_seed
            elif entropy is None:
                point_seed = seed  # a live Generator, consumed sequentially
            else:
                point_seed = (*entropy, index)
                point_entropy = point_seed
        else:
            point_seed = None
        try:
            transformed = model.rescaled(variation["p_scale"], variation["q_scale"])
            result = _run_definition(definition, transformed, resolved, point_seed)
        except Exception as error:  # noqa: BLE001 - reported per variation
            outcomes[index] = ("error", f"{type(error).__name__}: {error}", None)
        else:
            outcomes[index] = ("ok", result.metric_dict(), point_entropy)
    return [outcomes[index] for index in wanted]


def evaluate_sweep_outcomes(
    model,
    method: str,
    variations: Sequence,
    *,
    options: Mapping[str, Any] | None = None,
    seed=None,
    variation_seeds: Sequence | None = None,
    registry: MethodRegistry | None = None,
    subset: Sequence[int] | None = None,
) -> list[tuple[str, Any]]:
    """Per-variation outcomes of a sweep: ``("ok", metrics)`` or ``("error", message)``.

    The salvage-friendly core behind :func:`evaluate_sweep` (which raises on
    the first error) and the study runner's group dispatch (which must
    report one bad sweep point without discarding its siblings).

    When the method registered a batched kernel, the *valid* variations are
    evaluated in one batched call sharing a single random stream derived
    from ``seed`` -- for stochastic methods this is the common-random-numbers
    mode: every point scored against the same sampled developments (see
    :mod:`repro.montecarlo.sweep`).  Otherwise each variation is evaluated
    on its own transformed model; stochastic methods then draw from
    ``variation_seeds[i]`` when given (the study runner passes its
    content-keyed per-point entropies, keeping scalar-mode results bitwise
    reproducible) and from the child streams ``(seed, i)`` otherwise.

    ``subset`` restricts the *returned* (and, on the scalar path, the
    evaluated) positions; batched kernels still see the whole sweep so
    their shared structure is independent of the caller's cache state.
    Outcomes come back in ``subset`` order.
    """
    return [
        (status, payload)
        for status, payload, _ in _sweep_outcome_triples(
            model,
            method,
            variations,
            options=options,
            seed=seed,
            variation_seeds=variation_seeds,
            registry=registry,
            subset=subset,
        )
    ]


def evaluate_sweep(
    model,
    method: str,
    variations: Sequence,
    *,
    seed=None,
    registry: MethodRegistry | None = None,
    options: Mapping[str, Any] | None = None,
    **kwargs,
) -> list[EvaluationResult]:
    """Evaluate one method across many model variations, batched when possible.

    Parameters
    ----------
    model:
        The base :class:`~repro.core.fault_model.FaultModel`; every
        variation applies on top of it.
    method:
        A registered method name.  Methods whose definition carries a
        batched kernel (``supports_batch``; currently ``exact``,
        ``tail-quantile`` and ``montecarlo``) evaluate the whole sweep in
        vectorised passes; any other method falls back to per-variation
        scalar evaluation with no semantic difference.
    variations:
        Sweep points: mappings with optional ``p_scale`` (every ``p_i``
        multiplied, the Appendix B process-quality knob) and ``q_scale``
        (every ``q_i`` multiplied) keys, both defaulting to 1.0.
    seed:
        Randomness for seed-consuming methods.  Batched stochastic methods
        share *one* stream derived from it across the whole sweep (common
        random numbers: every point scored against the same sampled
        developments -- faster, and cross-point comparisons have lower
        variance, but points are dependent and the values differ from
        per-point independent streams).  The scalar fallback derives one
        child stream per variation from ``(seed, index)``, matching
        :func:`evaluate_batch`.
    options, **kwargs:
        Method options, shared by every variation (same spelling rules as
        :func:`evaluate`).

    Returns one :class:`EvaluationResult` per variation, in input order;
    ``elapsed_seconds`` is amortised (total sweep time / points) on the
    batched path.  Raises on the first invalid variation.

    Examples
    --------
    >>> from repro import evaluate_sweep  # doctest: +SKIP
    >>> results = evaluate_sweep(model, "exact",
    ...                          [{"p_scale": k} for k in (0.25, 0.5, 1.0)])  # doctest: +SKIP
    """
    target = registry if registry is not None else default_registry()
    definition = target.get(method)
    resolved = target.resolve_options(method, {**dict(options or {}), **kwargs})
    start = time.perf_counter()
    outcomes = _sweep_outcome_triples(
        model, method, variations, options=resolved, seed=seed, registry=target
    )
    elapsed = time.perf_counter() - start
    results: list[EvaluationResult] = []
    for index, (status, payload, entropy) in enumerate(outcomes):
        if status == "error":
            raise ValueError(f"sweep variation {index}: {payload}")
        results.append(
            EvaluationResult(
                method=definition.name,
                options=resolved,
                metrics=dict(payload),
                # The entropy the point's stream was actually derived from:
                # the shared sweep entropy on the batched path, the (seed,
                # index) child on the scalar fallback -- either reproduces
                # the point via ``evaluate(..., seed=result.seed_entropy)``
                # or the batched sweep via ``evaluate_sweep(..., seed=...)``.
                seed_entropy=entropy,
                elapsed_seconds=elapsed / max(len(outcomes), 1),
            )
        )
    return results
