"""The unified evaluation API.

One extensible surface for every way of evaluating a fault model:

* :mod:`~repro.api.registry` -- :class:`MethodRegistry` and
  :class:`MethodDefinition`: named methods with typed option schemas,
  defaults and seed requirements; :func:`register_method` is the single
  extension point that makes a method available to the CLI, study specs and
  the Python API at once;
* :mod:`~repro.api.results` -- :class:`EvaluationResult` /
  :class:`EvaluationRequest`: typed, frozen value objects with lossless
  ``to_dict``/``from_dict`` round trips;
* :mod:`~repro.api.methods` -- the built-in methods (``moments``, ``exact``,
  ``normal``, ``bounds``, ``montecarlo``, ``tail-quantile``);
* :mod:`~repro.api.evaluate` -- :func:`evaluate` and :func:`evaluate_batch`,
  the entry points everything else (CLI, studies, benchmarks) dispatches
  through.
"""

from repro.api.evaluate import evaluate, evaluate_batch, evaluate_sweep
from repro.api.registry import (
    BatchUnsupported,
    MethodDefinition,
    MethodRegistry,
    OptionSpec,
    default_registry,
    register_batch,
    register_method,
)
from repro.api.results import EvaluationRequest, EvaluationResult

# Importing the built-in methods registers them on the default registry.
from repro.api import methods as _builtin_methods  # noqa: F401  (import for side effect)

__all__ = [
    "BatchUnsupported",
    "EvaluationRequest",
    "EvaluationResult",
    "MethodDefinition",
    "MethodRegistry",
    "OptionSpec",
    "default_registry",
    "evaluate",
    "evaluate_batch",
    "evaluate_sweep",
    "register_batch",
    "register_method",
]
