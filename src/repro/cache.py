"""Content-addressed on-disk cache for evaluation results.

Every evaluation has a *canonical payload* (base model, resolved parameters,
normalised method options, seed entropy, cache format version).  Its SHA-256
digest is the cache key: two requests that mean the same evaluation hash the
same no matter which surface (a study spec, the evaluation service, a Python
call) they came from, so

* re-running a study against the same cache directory recomputes nothing;
* editing one sweep axis leaves every unchanged point's key (and cached
  record) intact, so only the new points are computed;
* renaming a study, reordering axes or moving a model file does not
  invalidate anything;
* the evaluation service's disk tier (``repro serve --cache-dir``) shares
  this format, so deterministic-method entries warmed by a study are served
  to service traffic without recomputation.

Entries are one JSON file per digest, sharded by the first two hex digits,
written atomically (temp file + ``os.replace``) so parallel writers and
crashed runs never leave a corrupt entry behind.

This module started life as ``repro.studies.cache`` and was promoted when
the evaluation service grew a disk cache tier; the old import path remains
as a re-export.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

__all__ = ["CACHE_FORMAT_VERSION", "ResultCache", "canonical_json", "payload_digest"]

#: Bump to invalidate every existing cache entry (e.g. when a method's
#: numerical meaning changes without its options changing).
CACHE_FORMAT_VERSION = 1


def canonical_json(payload) -> str:
    """Serialise ``payload`` into the canonical (hashable) JSON form.

    Keys are sorted, separators are minimal and NaN/Infinity are rejected, so
    equal payloads always produce equal bytes.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)


def payload_digest(payload) -> str:
    """SHA-256 hex digest of the canonical form of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of content-addressed per-evaluation result records."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, digest: str) -> Path:
        """Where the entry for ``digest`` lives (whether or not it exists)."""
        return self.root / digest[:2] / f"{digest}.json"

    def load(self, digest: str) -> dict | None:
        """Return the cached entry, or ``None`` on miss / unreadable entry.

        A file that parses but is not an entry-shaped object (a truncated or
        foreign JSON document) is also treated as a miss, so a damaged cache
        degrades to recomputation rather than crashing the caller.
        """
        from repro import telemetry

        path = self.path_for(digest)
        with telemetry.span("cache.read", digest=digest[:12]) as read_span:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    entry = json.load(handle)
            except (OSError, json.JSONDecodeError):
                read_span.set(hit=False)
                return None
            if not isinstance(entry, dict) or not isinstance(entry.get("metrics"), dict):
                read_span.set(hit=False)
                return None
            read_span.set(hit=True)
            return entry

    def store(self, digest: str, entry: dict) -> None:
        """Atomically write ``entry`` under ``digest``."""
        from repro import telemetry

        with telemetry.span("cache.write", digest=digest[:12]):
            path = self.path_for(digest)
            path.parent.mkdir(parents=True, exist_ok=True)
            descriptor, temp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{digest[:8]}-", suffix=".tmp"
            )
            try:
                with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                    json.dump(entry, handle, sort_keys=True)
                os.replace(temp_name, path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise

    def info(self) -> dict:
        """Inspect the cache: entry count, total bytes and resolved path.

        Walks the shard directories once; stray non-entry files (editor
        backups, the temp files of a crashed write) are not counted as
        entries but their bytes are included, since they occupy the
        directory either way.
        """
        entries = 0
        total_bytes = 0
        for path in self.root.glob("*/*"):
            if not path.is_file():
                continue
            try:
                total_bytes += path.stat().st_size
            except OSError:
                continue
            if path.suffix == ".json":
                entries += 1
        return {
            "path": str(self.root.resolve()),
            "entries": entries,
            "bytes": total_bytes,
        }

    def clear(self) -> int:
        """Delete every cache entry; returns the number of entries removed.

        Only entry files and their (now empty) shard directories are
        removed -- the cache root itself and any foreign files in it are
        left alone, so pointing the CLI at the wrong directory cannot
        destroy anything but cache entries.
        """
        removed = 0
        for shard in sorted(self.root.glob("*")):
            if not shard.is_dir() or len(shard.name) != 2:
                continue
            for path in shard.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
            # Stray temp files from crashed writes go with their shard.
            for path in shard.glob(".*.tmp"):
                try:
                    path.unlink()
                except OSError:
                    continue
            try:
                shard.rmdir()
            except OSError:
                pass  # foreign files keep the shard alive
        return removed

    def __contains__(self, digest: str) -> bool:
        return self.path_for(digest).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))
