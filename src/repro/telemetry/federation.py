"""Metrics federation: merge every shard's scrape into one fleet snapshot.

PR 7 made registries *exactly* mergeable (fixed histogram bucket bounds,
integer counts, ``repr(float)`` sums in the text exposition), and PR 8's
router already visits every shard on the probe schedule.  Federation is the
composition of the two: the router scrapes ``/metrics?format=prom`` from
each shard (and each peer router) alongside its health probes, parses the
text back into snapshot form, and a :class:`MetricsFederation` keeps the
latest scrape per target.  The fleet view is then pure arithmetic::

    roll-up = merge_snapshots(router-local, scrape(shard-1), ..., scrape(peer-N))

which is byte-for-byte the snapshot a single combined registry would have
produced (``tests/telemetry/test_federation.py`` pins this partitioned-
merge invariance with hypothesis).  The router serves the result at
``/metrics?scope=fleet`` in JSON (roll-up at the top level -- a strict
superset of the PR-6/7 local schema -- plus a ``shards`` table of the
per-target ingredients) and in the Prometheus text format (roll-up series
plus per-target ``repro_fleet_target_*`` gauges carrying ``target=``/
``role=`` labels).

Scrapes are snapshots of *monotonic* state, so a stale entry is merely
old, never wrong; staleness is surfaced as ``age_seconds`` per target
rather than hidden by eviction.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Mapping

from repro.telemetry.metrics import (
    histogram_summary,
    merge_snapshots,
    parse_prometheus,
    render_prometheus,
)

__all__ = ["MetricsFederation"]

#: Snapshot keys that carry metric state; everything else in a per-target
#: entry (role, age) is annotation and ignored by merges.
_METRIC_KEYS = ("counters", "gauges", "histograms")


class MetricsFederation:
    """Latest-scrape-per-target bookkeeping plus exact fleet roll-ups."""

    def __init__(self, clock: Callable[[], float] = time.time) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        #: target -> {"snapshot", "role", "updated"}
        self._targets: dict[str, dict] = {}
        self.scrapes = 0

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def update(self, target: str, snapshot: Mapping, *, role: str = "shard") -> None:
        """Adopt a freshly parsed scrape of ``target``."""
        entry = {
            "snapshot": {key: snapshot.get(key, {}) for key in _METRIC_KEYS},
            "role": role,
            "updated": self._clock(),
        }
        with self._lock:
            self._targets[target] = entry
            self.scrapes += 1

    def update_from_prometheus(self, target: str, text: str, *, role: str = "shard") -> None:
        """Adopt a raw ``/metrics?format=prom`` body scraped from ``target``."""
        self.update(target, parse_prometheus(text), role=role)

    def forget(self, target: str) -> None:
        with self._lock:
            self._targets.pop(target, None)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def targets(self) -> dict[str, dict]:
        """Per-target entries (shallow copies), keyed by target address."""
        with self._lock:
            return {target: dict(entry) for target, entry in self._targets.items()}

    def fleet_snapshot(self, local: Mapping | None = None) -> dict:
        """The roll-up: every scraped target merged with the local snapshot."""
        entries = self.targets()
        snapshots = [entry["snapshot"] for entry in entries.values()]
        if local is not None:
            snapshots.append(local)
        return merge_snapshots(*snapshots)

    def document(self, local: Mapping | None = None, *, self_role: str = "router") -> dict:
        """The ``/metrics?scope=fleet`` JSON body.

        The top level is the roll-up in exactly the local ``/metrics``
        shape (counters and gauges flat, ``histograms`` summarised), so
        every consumer of the PR-6/7 schema reads a fleet scope unchanged.
        The additive ``targets`` table carries the per-target ingredients
        -- the roll-up equals their merge, which CI pins exactly.  (Named
        ``targets``, not ``shards``: the router already serves a ``shards``
        *gauge* in the flat namespace.)
        """
        now = self._clock()
        entries = self.targets()
        rollup = self.fleet_snapshot(local)
        shards: dict[str, dict] = {}
        for target, entry in entries.items():
            snapshot = entry["snapshot"]
            shards[target] = {
                "role": entry["role"],
                "updated": entry["updated"],
                "age_seconds": round(max(0.0, now - entry["updated"]), 6),
                "counters": dict(snapshot.get("counters", {})),
                "gauges": dict(snapshot.get("gauges", {})),
                "histograms": {
                    name: histogram_summary(data)
                    for name, data in snapshot.get("histograms", {}).items()
                },
            }
        if local is not None:
            shards["self"] = {
                "role": self_role,
                "updated": now,
                "age_seconds": 0.0,
                "counters": dict(local.get("counters", {})),
                "gauges": dict(local.get("gauges", {})),
                "histograms": {
                    name: histogram_summary(data)
                    for name, data in local.get("histograms", {}).items()
                },
            }
        return {
            **rollup.get("counters", {}),
            **rollup.get("gauges", {}),
            "histograms": {
                name: histogram_summary(data)
                for name, data in rollup.get("histograms", {}).items()
            },
            "scope": "fleet",
            "target_count": len(shards),
            "targets": shards,
        }

    def prometheus(self, local: Mapping | None = None, prefix: str = "repro_") -> str:
        """The ``/metrics?scope=fleet&format=prom`` body.

        Roll-up series first (plain, so the fleet scope round-trips through
        :func:`parse_prometheus` like a local scrape), then per-target
        presence/staleness gauges with ``target=``/``role=`` labels -- the
        only labelled series besides histogram ``le`` buckets.
        """
        now = self._clock()
        lines = [render_prometheus(self.fleet_snapshot(local), prefix=prefix).rstrip("\n")]
        entries = self.targets()
        if local is not None:
            entries["self"] = {"role": "router", "updated": now}
        lines.append(f"# TYPE {prefix}fleet_target_up gauge")
        for target in sorted(entries):
            role = entries[target]["role"]
            lines.append(
                f'{prefix}fleet_target_up{{target="{target}",role="{role}"}} 1'
            )
        lines.append(f"# TYPE {prefix}fleet_target_scrape_age_seconds gauge")
        for target in sorted(entries):
            age = max(0.0, now - entries[target]["updated"])
            lines.append(
                f'{prefix}fleet_target_scrape_age_seconds{{target="{target}"}} '
                f"{round(age, 6)}"
            )
        return "\n".join(lines) + "\n"
