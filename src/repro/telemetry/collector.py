"""Cross-process trace collection: a span shipper and its collector sink.

PR 7's tracing writes JSONL files -- one per process, stitched by hand.  In
a fleet (N shards x W workers behind R routers) that means dozens of files
on as many hosts, so this module moves trace events over the wire instead:

* :class:`SpanShipper` -- a :func:`repro.telemetry.tracing.configure` sink
  installed on shards and pool workers.  ``shipper(event)`` appends to a
  **bounded queue and returns immediately**: the request path never blocks
  on trace shipping, and when the queue is full the event is *dropped and
  counted* (``spans_dropped``), never queued unboundedly.  A daemon thread
  drains the queue in batches and POSTs them to a collector; successful
  shipments count into ``spans_shipped``, failed batches into
  ``spans_dropped`` -- the two counters are the loss accounting the smoke
  run asserts on (``shipped + dropped == emitted``, ``dropped == 0``).
* :class:`TraceCollector` -- the receiving side, owned by routers behind
  ``POST /v1/traces``: validates each event, keeps a bounded in-memory ring
  and optionally appends to a JSONL file, which then feeds
  ``repro trace summarize`` exactly like a local trace file -- except it
  holds the *whole* router->shard->worker tree for each routed request.

Workers join automatically: :func:`configure_shipping` exports the
collector endpoint to ``REPRO_TRACE_COLLECTOR``, and
``tracing._load_env`` arms a fresh shipper in every pool worker process.

Everything here is stdlib (``http.client`` for the POSTs) and touches no
seeded RNG stream, preserving the determinism contract.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
from collections import deque
from typing import Callable, Iterable
from urllib.parse import urlsplit

from repro.telemetry.tracing import ENV_VAR, configure

__all__ = [
    "ENV_COLLECTOR",
    "SpanShipper",
    "TraceCollector",
    "configure_shipping",
    "split_endpoint",
]

#: Environment variable carrying the collector ``host:port`` to spawned
#: worker processes (the shipping analogue of ``REPRO_TRACE_FILE``).
ENV_COLLECTOR = "REPRO_TRACE_COLLECTOR"

#: Keys an event must carry to be accepted by a collector: the minimum for
#: ``repro trace summarize`` to place it in a tree.
_REQUIRED_KEYS = ("name", "trace", "span", "dur_ms")


def split_endpoint(endpoint: str) -> tuple[str, int]:
    """``host:port`` (scheme optional) -> ``(host, port)``."""
    if "//" not in endpoint:
        endpoint = f"http://{endpoint}"
    parts = urlsplit(endpoint)
    if not parts.hostname or not parts.port:
        raise ValueError(f"collector endpoint needs host:port, got {endpoint!r}")
    return parts.hostname, parts.port


def _global_registry():
    # Lazy: repro.telemetry may still be mid-import when tracing._load_env
    # pulls this module in a worker process.
    from repro import telemetry

    return telemetry.global_registry()


class SpanShipper:
    """A tracing sink that batches span events to a collector endpoint.

    The calling contract is the writer protocol of
    :func:`repro.telemetry.tracing.configure`: ``shipper(event)`` must be
    cheap and non-blocking.  It takes one lock, appends (or drops) and
    returns; all I/O happens on a daemon thread that wakes every
    ``flush_interval`` seconds or as soon as a full batch is queued.
    """

    def __init__(
        self,
        endpoint: str,
        *,
        capacity: int = 4096,
        batch_size: int = 256,
        flush_interval: float = 0.25,
        timeout: float = 5.0,
        registry=None,
        transport: Callable[[list], bool] | None = None,
    ) -> None:
        if capacity <= 0 or batch_size <= 0:
            raise ValueError("capacity and batch_size must be positive")
        self.endpoint = endpoint
        self.host, self.port = split_endpoint(endpoint)
        self.capacity = int(capacity)
        self.batch_size = int(batch_size)
        self.flush_interval = float(flush_interval)
        self.timeout = float(timeout)
        self._registry = registry
        self._transport = transport if transport is not None else self._post
        self._queue: deque = deque()
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._connection: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------ #
    # The hot path: called by tracing._emit for every finished span
    # ------------------------------------------------------------------ #
    def __call__(self, event: dict) -> None:
        with self._lock:
            if len(self._queue) >= self.capacity:
                self._count("spans_dropped")
                return
            self._queue.append(event)
            depth = len(self._queue)
        if self._thread is None:
            self._ensure_thread()
        if depth >= self.batch_size:
            self._wake.set()

    def _count(self, name: str, amount: int = 1) -> None:
        registry = self._registry if self._registry is not None else _global_registry()
        registry.inc(name, amount)

    def _ensure_thread(self) -> None:
        # Lazily started so a shipper armed before a process-pool fork does
        # not leave a dead thread handle in the children.
        with self._lock:
            if self._thread is not None or self._stop.is_set():
                return
            self._thread = threading.Thread(
                target=self._run, name="repro-span-shipper", daemon=True
            )
            self._thread.start()

    # ------------------------------------------------------------------ #
    # The drain side (daemon thread)
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(self.flush_interval)
            self._wake.clear()
            self.flush()
        self.flush()

    def flush(self) -> int:
        """Ship everything queued right now; returns the number shipped."""
        shipped = 0
        while True:
            with self._lock:
                if not self._queue:
                    return shipped
                batch = [
                    self._queue.popleft()
                    for _ in range(min(self.batch_size, len(self._queue)))
                ]
            try:
                delivered = bool(self._transport(batch))
            except Exception:
                delivered = False
            if not delivered:
                # A torn keep-alive socket (the collector closes idle
                # connections between batches) fails exactly once and
                # succeeds on the fresh connection: one retry separates
                # that from a genuinely dead collector.
                try:
                    delivered = bool(self._transport(batch))
                except Exception:
                    delivered = False
            if delivered:
                self._count("spans_shipped", len(batch))
                shipped += len(batch)
            else:
                # A dead collector degrades to counted loss, never blocking
                # or unbounded growth; the next batch retries the socket.
                self._count("spans_dropped", len(batch))
                self._drop_connection()
        return shipped

    def _post(self, batch: list) -> bool:
        body = json.dumps({"events": batch}, separators=(",", ":")).encode("utf-8")
        connection = self._connection
        if connection is None:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._connection = connection
        try:
            connection.request(
                "POST",
                "/v1/traces",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            response.read()
        except (OSError, http.client.HTTPException):
            self._drop_connection()
            raise
        return 200 <= response.status < 300

    def _drop_connection(self) -> None:
        connection, self._connection = self._connection, None
        if connection is not None:
            try:
                connection.close()
            except OSError:
                pass

    def close(self, timeout: float = 5.0) -> None:
        """Stop the drain thread after a final flush (idempotent)."""
        self._stop.set()
        self._wake.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout)
        else:
            self.flush()
        self._drop_connection()


class TraceCollector:
    """The receiving side of span shipping (``POST /v1/traces``).

    Keeps the most recent ``capacity`` events in memory (a deque ring: old
    events age out, ingestion never fails for space) and, when ``path`` is
    given, appends every accepted event to a JSONL file with the exact
    on-disk schema of ``REPRO_TRACE_FILE`` -- so the collector file drops
    straight into ``repro trace summarize``.
    """

    def __init__(self, path: str | os.PathLike | None = None, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=int(capacity))
        self.path = os.fspath(path) if path is not None else None
        self._stream = open(self.path, "a", encoding="utf-8") if self.path else None
        self.batches = 0
        self.received = 0
        self.rejected = 0

    def ingest(self, payload) -> tuple[int, int]:
        """Accept a shipped payload; returns ``(accepted, rejected)``.

        The payload is ``{"events": [...]}`` (a bare list also works).
        Events missing the summarize-critical keys are rejected and
        counted, not fatal: one malformed event must not sink its batch.
        """
        if isinstance(payload, dict):
            events = payload.get("events")
        else:
            events = payload
        if not isinstance(events, list):
            raise ValueError("trace payload must be a list or {'events': [...]}")
        accepted: list[dict] = []
        rejected = 0
        for event in events:
            if isinstance(event, dict) and all(key in event for key in _REQUIRED_KEYS):
                accepted.append(event)
            else:
                rejected += 1
        with self._lock:
            self.batches += 1
            self.received += len(accepted)
            self.rejected += rejected
            self._events.extend(accepted)
            if self._stream is not None and accepted:
                for event in accepted:
                    self._stream.write(
                        json.dumps(event, separators=(",", ":")) + "\n"
                    )
                self._stream.flush()
        return len(accepted), rejected

    def events(self) -> list[dict]:
        """A copy of the in-memory ring, oldest first."""
        with self._lock:
            return list(self._events)

    def stats(self) -> dict:
        with self._lock:
            return {
                "batches": self.batches,
                "received": self.received,
                "rejected": self.rejected,
                "buffered": len(self._events),
                "path": self.path,
            }

    def close(self) -> None:
        with self._lock:
            if self._stream is not None:
                try:
                    self._stream.close()
                except OSError:
                    pass
                self._stream = None


def configure_shipping(
    endpoint: str, *, export_env: bool = True, **options
) -> SpanShipper:
    """Arm tracing with a :class:`SpanShipper` posting to ``endpoint``.

    The shipping analogue of ``telemetry.configure(trace_file=...)``:
    ``export_env=True`` mirrors the endpoint into ``REPRO_TRACE_COLLECTOR``
    so worker processes spawned from now on ship to the same collector
    (each arming its own shipper via ``tracing._load_env``).
    """
    shipper = SpanShipper(endpoint, **options)
    configure(sink=shipper)
    if export_env:
        os.environ[ENV_COLLECTOR] = endpoint
        # A stale file path would win over the collector in _load_env.
        os.environ.pop(ENV_VAR, None)
    return shipper
