"""Span-based tracing: named timed sections emitting structured JSONL events.

Production code is sprinkled with cheap, named spans::

    from repro import telemetry
    with telemetry.span("batcher.dispatch", group_size=4):
        ...

A span does nothing until tracing is configured -- the disabled path is one
``None`` check returning a shared no-op object, mirroring the
:func:`repro.faults.hit` idiom, so spans can stay in hot paths.  Enable via
the API or the ``REPRO_TRACE_FILE`` environment variable::

    telemetry.configure(trace_file="service.trace.jsonl")
    # or, from outside the process:
    REPRO_TRACE_FILE=service.trace.jsonl repro serve ...

Configuring through :func:`configure` also exports the path to
``os.environ`` (disable with ``export_env=False``), so worker *processes*
spawned afterwards -- the service's ``--workers`` pool, the study runner's
job pool -- trace into the same file when they import this module.  Events
are single JSON lines appended under an ``O_APPEND`` file handle, so
interleaved multi-process writes stay line-atomic for typical event sizes.

Every event carries a **trace id** -- propagated from the enclosing request
(the server stamps one per HTTP request, honouring an incoming
``x-repro-trace-id`` header) -- and a span id / parent span id, so
``repro trace summarize`` can reassemble the tree: HTTP parse, admission,
batch-window wait, group dispatch, worker kernel, cache write, response.
Ids come from :func:`os.urandom`, never from a seeded RNG stream, so
tracing cannot perturb a reproducible result.

Event schema (one JSON object per line)::

    {"ts": 1699...,          # epoch seconds at span end (float)
     "name": "server.request",
     "trace": "f3a9...",     # 16-hex trace id shared by one request/operation
     "span": "09bc...",      # 16-hex id of this span
     "parent": "77aa...",    # id of the enclosing span, or null
     "dur_ms": 1.84,         # wall-clock duration in milliseconds
     "pid": 12345,           # emitting process (workers differ from server)
     "attrs": {...}}         # span-specific attributes (JSON-safe)
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from typing import Any, Callable, TextIO

__all__ = [
    "Span",
    "configure",
    "current_span_id",
    "current_trace_id",
    "disable",
    "enabled",
    "new_trace_id",
    "record",
    "set_trace_id",
    "span",
]

#: Environment variable holding the cross-process trace-file configuration.
ENV_VAR = "REPRO_TRACE_FILE"

# Current trace id and enclosing span id.  Contextvars follow asyncio tasks,
# so concurrent requests in the server keep distinct trace contexts.  NOTE:
# they do NOT cross ``run_in_executor`` / process-pool boundaries -- worker
# jobs receive their trace id explicitly in the job arguments.
_trace_id: contextvars.ContextVar[str | None] = contextvars.ContextVar("repro_trace", default=None)
_span_id: contextvars.ContextVar[str | None] = contextvars.ContextVar("repro_span", default=None)

_lock = threading.Lock()
_writer: Callable[[dict], None] | None = None
_stream: TextIO | None = None


def new_trace_id() -> str:
    """A fresh 16-hex id from OS entropy (never a seeded RNG stream)."""
    return os.urandom(8).hex()


def current_trace_id() -> str | None:
    """The trace id of the current (asyncio/thread) context, if any."""
    return _trace_id.get()


def current_span_id() -> str | None:
    """The enclosing span id of the current context, if any.

    This is what crosses process/network hops: a router forwards it in the
    ``x-repro-parent-span`` header (and the server passes it into worker
    jobs) so the receiving side can parent its root span explicitly,
    stitching one routed request into a single tree.
    """
    return _span_id.get()


def set_trace_id(trace_id: str | None) -> contextvars.Token:
    """Bind the current context to ``trace_id``; returns the reset token."""
    return _trace_id.set(trace_id)


def enabled() -> bool:
    return _writer is not None


class _NoopSpan:
    """The shared disabled-path span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attrs) -> None:
        return None


_NOOP = _NoopSpan()


class Span:
    """One live timed section; created by :func:`span` when tracing is on."""

    __slots__ = (
        "name", "attrs", "trace", "span_id", "_start",
        "_parent_token", "_trace_token", "_parent_override",
    )

    def __init__(
        self,
        name: str,
        trace: str | None,
        attrs: dict,
        parent: str | None = None,
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.trace = trace if trace is not None else (_trace_id.get() or new_trace_id())
        self.span_id = new_trace_id()
        self._start = 0.0
        self._parent_token: contextvars.Token | None = None
        self._trace_token: contextvars.Token | None = None
        self._parent_override = parent

    def __enter__(self) -> "Span":
        # Bind this span as the context's parent for anything opened inside
        # it, and pin the trace id so nested spans inherit it.
        self._trace_token = _trace_id.set(self.trace)
        self._parent_token = _span_id.set(self.span_id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        if self._parent_token is not None:
            _span_id.reset(self._parent_token)
        if self._trace_token is not None:
            _trace_id.reset(self._trace_token)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        parent = self._parent_override
        if parent is None:
            parent = _span_id.get()
        _emit(
            name=self.name,
            trace=self.trace,
            span_id=self.span_id,
            parent=parent,
            duration_seconds=duration,
            attrs=self.attrs,
        )

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-span (status code, group size)."""
        self.attrs.update(attrs)


def span(name: str, *, trace_id: str | None = None, parent_id: str | None = None, **attrs):
    """Open a named span; a shared no-op when tracing is disabled.

    ``trace_id`` overrides the context's trace id (the explicit-propagation
    path for worker jobs); ``parent_id`` overrides the context's enclosing
    span (the explicit-propagation path for cross-process hops -- a span id
    carried by a header or a job envelope); attributes land in the event's
    ``attrs``.
    """
    if _writer is None:
        return _NOOP
    return Span(name, trace_id, attrs, parent=parent_id)


def record(
    name: str, duration_seconds: float, *, trace_id: str | None = None, **attrs
) -> None:
    """Emit a span event for an interval measured elsewhere.

    For durations that cannot wrap a ``with`` block -- the batcher stamps
    each job at submit and only learns the window wait at flush time.
    """
    if _writer is None:
        return
    trace = trace_id if trace_id is not None else (_trace_id.get() or new_trace_id())
    _emit(
        name=name,
        trace=trace,
        span_id=new_trace_id(),
        parent=_span_id.get() if trace_id is None else None,
        duration_seconds=duration_seconds,
        attrs=attrs,
    )


def _emit(
    *,
    name: str,
    trace: str,
    span_id: str,
    parent: str | None,
    duration_seconds: float,
    attrs: dict,
) -> None:
    writer = _writer
    if writer is None:
        return
    event = {
        "ts": time.time(),
        "name": name,
        "trace": trace,
        "span": span_id,
        "parent": parent,
        "dur_ms": round(duration_seconds * 1000.0, 6),
        "pid": os.getpid(),
        "attrs": attrs,
    }
    try:
        writer(event)
    except Exception:
        # Telemetry must never take down the traced operation; a full disk
        # or closed sink degrades to dropped events, not failures.
        pass


def configure(
    trace_file: str | os.PathLike | None = None,
    *,
    sink: Callable[[dict], None] | None = None,
    export_env: bool = True,
) -> None:
    """Enable tracing into ``trace_file`` (JSONL) or a callable ``sink``.

    Exactly one destination must be given.  ``export_env=True`` (default,
    file destinations only) mirrors the path into ``REPRO_TRACE_FILE`` so
    worker processes spawned from now on trace into the same file.  The
    file is opened in append mode: one server run and its workers share it.
    """
    global _writer, _stream
    if (trace_file is None) == (sink is None):
        raise ValueError("configure() needs exactly one of trace_file and sink")
    with _lock:
        _close_stream_locked()
        _close_writer_locked()
        if sink is not None:
            _writer = sink
            return
        path = os.fspath(trace_file)
        stream = open(path, "a", encoding="utf-8")
        _stream = stream

        def _write_line(event: dict, _stream: TextIO = stream) -> None:
            _stream.write(json.dumps(event, separators=(",", ":")) + "\n")
            _stream.flush()

        _writer = _write_line
        if export_env:
            os.environ[ENV_VAR] = os.path.abspath(path)


def disable(*, export_env: bool = True) -> None:
    """Disable tracing and (by default) clear the exported env vars."""
    global _writer
    with _lock:
        _close_stream_locked()
        _close_writer_locked()
        _writer = None
        if export_env:
            os.environ.pop(ENV_VAR, None)
            os.environ.pop("REPRO_TRACE_COLLECTOR", None)


def _close_stream_locked() -> None:
    global _stream
    if _stream is not None:
        try:
            _stream.close()
        except OSError:
            pass
        _stream = None


def _close_writer_locked() -> None:
    """Release a sink that owns resources (a span shipper's thread/socket)."""
    global _writer
    close = getattr(_writer, "close", None)
    if callable(close):
        try:
            close()
        except Exception:
            pass
    _writer = None


def _load_env() -> None:
    """Enable tracing from the environment (worker-process startup path).

    ``REPRO_TRACE_FILE`` wins when both are set (its semantics predate the
    collector); otherwise ``REPRO_TRACE_COLLECTOR`` arms a span shipper
    posting to that ``host:port`` -- this is how process-pool workers join
    the fleet's trace collection without any plumbing through the pool.
    """
    path = os.environ.get(ENV_VAR)
    if path:
        try:
            configure(path, export_env=False)
        except OSError:
            # An unwritable path in a worker degrades to no tracing there --
            # unlike faults, lost telemetry cannot make a test vacuously pass.
            pass
        return
    endpoint = os.environ.get("REPRO_TRACE_COLLECTOR")
    if not endpoint:
        return
    try:
        from repro.telemetry.collector import configure_shipping

        configure_shipping(endpoint, export_env=False)
    except Exception:
        pass


_load_env()


def event_attrs(event: dict) -> dict:
    """The ``attrs`` of a parsed trace event (tolerates missing key)."""
    attrs = event.get("attrs")
    return attrs if isinstance(attrs, dict) else {}
