"""Typed metrics: counters, gauges and fixed-bucket latency histograms.

A :class:`MetricsRegistry` is a named collection of metric instruments
behind **one lock**, so a snapshot is a single consistent pass: every value
in one ``/metrics`` response was read at the same instant, never a counter
from before an increment next to a gauge from after it.

Three instrument types, mirroring the Prometheus data model (the registry
renders the classic text exposition format via :func:`render_prometheus`):

* :class:`Counter` -- a monotonically increasing total;
* :class:`Gauge` -- a point-in-time value (queue depth, in-flight requests),
  with a ``set_max`` high-water-mark helper;
* :class:`Histogram` -- observations bucketed by **fixed upper bounds**, plus
  running count/sum/min/max and an optional *exemplar* (the trace id of the
  slowest traced observation, so a bad p99 links straight to a stitched
  trace).  Fixed buckets make histograms *merge-able*:
  adding two registries' bucket counts is exact, which is how
  ``ProcessPoolExecutor`` workers report their kernel timings back with
  their job results (snapshot before, snapshot after, ship the
  :func:`subtract`-ed delta, :meth:`MetricsRegistry.merge` on arrival).
  Quantiles (p50/p95/p99) are derived from the buckets by linear
  interpolation -- resolution is bucket-width, which is the documented
  trade for mergeability.

Snapshots are plain JSON-safe dicts, so they pickle across process
boundaries and serialise into ``/metrics`` unchanged.  The whole module is
stdlib-only and never touches any random state, so instrumenting a code
path cannot perturb a seeded result.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "render_prometheus",
    "subtract_snapshots",
]

#: Default latency bucket upper bounds in **seconds**: 1 ms to ~100 s in
#: roughly x2.5 steps.  Wide enough for a cache hit (sub-ms) and a cold
#: million-replication Monte Carlo point (tens of seconds) on one scale.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
)


class Counter:
    """A monotonically increasing total. Mutate only via the owning registry."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0


class Gauge:
    """A point-in-time value (queue depth, in-flight count, high-water mark)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0


class Histogram:
    """Fixed-bucket latency histogram with running count/sum/min/max.

    ``buckets`` are inclusive upper bounds in ascending order; an implicit
    ``+Inf`` bucket catches everything above the last bound.  ``counts`` has
    ``len(buckets) + 1`` entries (the last is the overflow bucket).
    """

    __slots__ = (
        "name", "help", "buckets", "counts", "count", "sum", "min", "max", "exemplar",
    )

    def __init__(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
    ) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name!r} bucket bounds must be strictly increasing")
        self.name = name
        self.help = help
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        #: Trace id + value of the slowest *traced* observation, or None.
        self.exemplar: dict | None = None

    def _observe(self, value: float, trace_id: str | None = None) -> None:
        value = float(value)
        index = _bucket_index(self.buckets, value)
        self.counts[index] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if trace_id is not None and (
            self.exemplar is None or value >= self.exemplar["value"]
        ):
            self.exemplar = {"trace": trace_id, "value": value}

    def snapshot(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "exemplar": dict(self.exemplar) if self.exemplar else None,
        }


def _bucket_index(buckets: tuple[float, ...], value: float) -> int:
    """Index of the first bucket whose upper bound holds ``value``.

    Linear scan: default histograms have 16 bounds and observations land in
    the low buckets in the common case, so this beats ``bisect`` setup cost
    and keeps the module trivially portable.
    """
    for index, bound in enumerate(buckets):
        if value <= bound:
            return index
    return len(buckets)


def histogram_quantile(snapshot: Mapping[str, Any], quantile: float) -> float | None:
    """Estimate a quantile from a histogram snapshot by linear interpolation.

    Returns ``None`` for an empty histogram.  Resolution is bucket width;
    the overflow bucket reports the last finite bound (there is no upper
    edge to interpolate toward), clamped by the observed ``max`` when known.
    """
    if not 0.0 <= quantile <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {quantile}")
    count = snapshot["count"]
    if not count:
        return None
    target = quantile * count
    cumulative = 0
    buckets = snapshot["buckets"]
    observed_max = snapshot.get("max")
    for index, bucket_count in enumerate(snapshot["counts"]):
        if not bucket_count:
            continue
        if cumulative + bucket_count >= target:
            if index >= len(buckets):  # overflow bucket
                return observed_max if observed_max is not None else buckets[-1]
            lower = buckets[index - 1] if index else 0.0
            upper = buckets[index]
            fraction = (target - cumulative) / bucket_count
            estimate = lower + (upper - lower) * max(0.0, min(1.0, fraction))
            if observed_max is not None:
                estimate = min(estimate, observed_max)
            return estimate
        cumulative += bucket_count
    return observed_max if observed_max is not None else buckets[-1]


class MetricsRegistry:
    """A named, lock-consistent collection of counters, gauges and histograms.

    All mutation and the whole-registry snapshot share one lock, so
    ``snapshot()`` is a *consistent cut*: no value in it can be newer than
    another.  Instruments are created on first use (``counter(name)`` etc.)
    or eagerly via :meth:`register_counters`; re-requesting a name returns
    the existing instrument, and requesting it as a different type raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    # Instrument registration
    # ------------------------------------------------------------------ #
    def _check_free(self, name: str, kind: str) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if other_kind != kind and name in table:
                raise ValueError(f"metric {name!r} is already registered as a {other_kind}")

    def counter(self, name: str, help: str = "") -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_free(name, "counter")
                instrument = self._counters[name] = Counter(name, help)
            return instrument

    def gauge(self, name: str, help: str = "") -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_free(name, "gauge")
                instrument = self._gauges[name] = Gauge(name, help)
            return instrument

    def histogram(
        self, name: str, buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS, help: str = ""
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_free(name, "histogram")
                instrument = self._histograms[name] = Histogram(name, buckets, help)
            return instrument

    def register_counters(self, names: Iterable[str]) -> None:
        """Eagerly create counters so they appear in snapshots at zero."""
        for name in names:
            self.counter(name)

    # ------------------------------------------------------------------ #
    # Mutation (always under the registry lock)
    # ------------------------------------------------------------------ #
    def inc(self, name: str, amount: int = 1) -> None:
        instrument = self._counters.get(name) or self.counter(name)
        with self._lock:
            instrument.value += amount

    def set_gauge(self, name: str, value) -> None:
        instrument = self._gauges.get(name) or self.gauge(name)
        with self._lock:
            instrument.value = value

    def add_gauge(self, name: str, amount: int) -> None:
        instrument = self._gauges.get(name) or self.gauge(name)
        with self._lock:
            instrument.value += amount

    def set_max(self, name: str, value) -> None:
        """Raise a gauge to ``value`` if it is below it (high-water mark)."""
        instrument = self._gauges.get(name) or self.gauge(name)
        with self._lock:
            if value > instrument.value:
                instrument.value = value

    def observe(self, name: str, value: float, trace_id: str | None = None) -> None:
        instrument = self._histograms.get(name) or self.histogram(name)
        with self._lock:
            instrument._observe(value, trace_id)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def __getitem__(self, name: str):
        """Current value of a counter or gauge (test and debugging sugar)."""
        with self._lock:
            if name in self._counters:
                return self._counters[name].value
            if name in self._gauges:
                return self._gauges[name].value
        raise KeyError(name)

    def __contains__(self, name: str) -> bool:
        return name in self._counters or name in self._gauges or name in self._histograms

    def snapshot(self) -> dict:
        """One consistent cut of the whole registry, as a JSON-safe dict.

        Every value is read under a single lock acquisition, so counters
        and gauges in one snapshot are mutually consistent -- the queue
        gauge can never show a request the inflight gauge already released.
        """
        with self._lock:
            return {
                "counters": {name: c.value for name, c in self._counters.items()},
                "gauges": {name: g.value for name, g in self._gauges.items()},
                "histograms": {name: h.snapshot() for name, h in self._histograms.items()},
            }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a snapshot (e.g. a worker process's delta) into this registry.

        Counters and histogram counts/sums add; gauges take the maximum
        (a worker's gauge is a high-water mark by the time it arrives);
        histogram min/max combine when the delta knows them.
        """
        for name, value in snapshot.get("counters", {}).items():
            instrument = self.counter(name)
            with self._lock:
                instrument.value += value
        for name, value in snapshot.get("gauges", {}).items():
            instrument = self.gauge(name)
            with self._lock:
                current = instrument.value
                try:
                    if current is None or value > current:
                        instrument.value = value
                except TypeError:
                    # Non-numeric gauge (config string, None): latest wins.
                    instrument.value = value
        for name, data in snapshot.get("histograms", {}).items():
            instrument = self.histogram(name, buckets=data["buckets"])
            with self._lock:
                if tuple(data["buckets"]) != instrument.buckets:
                    raise ValueError(
                        f"cannot merge histogram {name!r}: bucket bounds differ"
                    )
                for index, count in enumerate(data["counts"]):
                    instrument.counts[index] += count
                instrument.count += data["count"]
                instrument.sum += data["sum"]
                for edge, better in (("min", min), ("max", max)):
                    incoming = data.get(edge)
                    if incoming is not None:
                        current = getattr(instrument, edge)
                        setattr(
                            instrument,
                            edge,
                            incoming if current is None else better(current, incoming),
                        )
                exemplar = data.get("exemplar")
                if exemplar is not None and (
                    instrument.exemplar is None
                    or exemplar["value"] >= instrument.exemplar["value"]
                ):
                    instrument.exemplar = dict(exemplar)


def merge_snapshots(*snapshots: Mapping[str, Any]) -> dict:
    """Merge snapshots into a fresh combined snapshot (none are mutated)."""
    combined = MetricsRegistry()
    for snapshot in snapshots:
        combined.merge(snapshot)
    return combined.snapshot()


def subtract_snapshots(after: Mapping[str, Any], before: Mapping[str, Any]) -> dict:
    """The delta ``after - before``: what happened between two snapshots.

    Counters and histogram counts/sums subtract; gauges keep their ``after``
    value; histogram min/max of just the window are unknowable from two
    cumulative snapshots, so the delta carries ``None`` for both (merge
    treats ``None`` as "no information").  Zero-valued counters and empty
    histograms are dropped, so an idle worker ships an empty delta.
    """
    delta: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    before_counters = before.get("counters", {})
    for name, value in after.get("counters", {}).items():
        changed = value - before_counters.get(name, 0)
        if changed:
            delta["counters"][name] = changed
    for name, value in after.get("gauges", {}).items():
        if value != before.get("gauges", {}).get(name, 0):
            delta["gauges"][name] = value
    before_histograms = before.get("histograms", {})
    for name, data in after.get("histograms", {}).items():
        previous = before_histograms.get(
            name, {"counts": [0] * len(data["counts"]), "count": 0, "sum": 0.0}
        )
        count = data["count"] - previous["count"]
        if not count:
            continue
        delta["histograms"][name] = {
            "buckets": list(data["buckets"]),
            "counts": [now - then for now, then in zip(data["counts"], previous["counts"])],
            "count": count,
            "sum": data["sum"] - previous["sum"],
            "min": None,
            "max": None,
            # The exemplar rides the delta only when the window changed it.
            "exemplar": (
                data.get("exemplar")
                if data.get("exemplar") != previous.get("exemplar")
                else None
            ),
        }
    return delta


def histogram_summary(snapshot: Mapping[str, Any]) -> dict:
    """A histogram snapshot with derived p50/p95/p99 attached (for JSON)."""
    return {
        **{key: snapshot[key] for key in ("buckets", "counts", "count", "sum", "min", "max")},
        "exemplar": snapshot.get("exemplar"),
        "p50": histogram_quantile(snapshot, 0.50),
        "p95": histogram_quantile(snapshot, 0.95),
        "p99": histogram_quantile(snapshot, 0.99),
    }


def _format_value(value: float) -> str:
    """Prometheus number spelling: integers without a trailing ``.0``."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(snapshot: Mapping[str, Any], prefix: str = "repro_") -> str:
    """Render a registry snapshot in the Prometheus text exposition format.

    Counters and gauges become single samples; histograms become the
    classic ``_bucket{le=...}`` (cumulative), ``_sum`` and ``_count``
    series.  Non-numeric gauges (configuration strings, ``None``) are
    skipped -- Prometheus samples are numbers; booleans render as 0/1.
    """
    lines: list[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = f"{prefix}{name}"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        if not isinstance(value, (bool, int, float)) or value is None:
            continue
        metric = f"{prefix}{name}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, data in sorted(snapshot.get("histograms", {}).items()):
        metric = f"{prefix}{name}"
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(data["buckets"], data["counts"]):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{_format_value(float(bound))}"}} {cumulative}')
        cumulative += data["counts"][-1]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {_format_value(data['sum'])}")
        lines.append(f"{metric}_count {data['count']}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str, prefix: str = "repro_") -> dict:
    """Parse :func:`render_prometheus` output back into a snapshot-like dict.

    Supports the subset this module emits: the only *structural* label is
    ``le`` (histogram buckets); any other labelled sample -- e.g. the
    per-shard series a fleet scope adds -- is preserved verbatim under a
    ``"labeled"`` key instead of being mistaken for a bucket.  Exists so
    tests can pin a lossless round trip, and so the CI smoke job can
    sanity-check a scrape without a Prometheus server.
    """
    snapshot: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    types: dict[str, str] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            metric, _, kind = rest.partition(" ")
            types[metric] = kind
            continue
        if line.startswith("#"):
            continue
        sample, _, raw = line.rpartition(" ")
        value = float(raw)
        if "{" in sample:
            metric, _, label = sample.partition("{")
            if not (metric.endswith("_bucket") and label.startswith('le="')):
                snapshot.setdefault("labeled", {})[sample] = (
                    int(value) if value.is_integer() else value
                )
                continue
            base = metric[: metric.rindex("_bucket")]
            name = base[len(prefix):]
            entry = snapshot["histograms"].setdefault(
                name, {"buckets": [], "cumulative": []}
            )
            bound = label[len('le="'):-2]
            if bound != "+Inf":
                entry["buckets"].append(float(bound))
            entry["cumulative"].append(value)
            continue
        if sample.endswith("_sum") and types.get(sample[: -len("_sum")]) == "histogram":
            name = sample[len(prefix):-len("_sum")]
            snapshot["histograms"].setdefault(name, {})["sum"] = value
            continue
        if sample.endswith("_count") and types.get(sample[: -len("_count")]) == "histogram":
            name = sample[len(prefix):-len("_count")]
            snapshot["histograms"].setdefault(name, {})["count"] = int(value)
            continue
        name = sample[len(prefix):]
        kind = types.get(sample, "gauge")
        target = "counters" if kind == "counter" else "gauges"
        parsed = int(value) if value.is_integer() else value
        snapshot[target][name] = parsed
    for entry in snapshot["histograms"].values():
        cumulative = entry.pop("cumulative", [])
        counts = [
            int(now - then) for now, then in zip(cumulative, [0.0] + cumulative[:-1])
        ]
        entry["counts"] = counts
        entry.setdefault("min", None)
        entry.setdefault("max", None)
        entry.setdefault("exemplar", None)
    return snapshot
