"""Offline trace analysis: turn a JSONL trace capture into timing breakdowns.

Reads the event stream written by :mod:`repro.telemetry.tracing` (from
``repro serve --trace-file`` or ``repro study run --trace-file``) and
renders two views:

* a **per-span-name table** -- count, total, mean, p50/p95/p99 and max
  duration for every span name in the capture (exact percentiles: the
  raw durations are all on disk, no bucketing needed offline);
* a **per-request breakdown** -- for each trace that contains a root
  ``server.request`` span, where its wall-clock went: queue wait,
  batch-window wait, worker kernel time, cache probes and writes.

Since the observability plane ships spans across processes, one capture
(or several -- :func:`summarize_files` concatenates router, shard and
collector files before analysis) can hold the *whole* fleet-side story of
a routed request.  When a trace carries a ``router.request`` root, that
root becomes the request's wall clock and the breakdown gains **per-hop**
columns: time inside the router (``router_ms``), inside the shard server
(``shard_ms``), inside the worker kernel (``kernel_ms``), and the residual
between consecutive hops (``network_ms`` -- wire time plus anything not
spanned).  :func:`build_trace_tree` reassembles the parent-linked span
tree for one trace, which the stitched-trace golden test walks
router->shard->worker.

Everything here is read-only analysis over plain dicts, shared by the
``repro trace summarize`` CLI and the tests.
"""

from __future__ import annotations

import json
import os
from collections import defaultdict
from typing import Any, Iterable, Mapping

__all__ = [
    "build_trace_tree",
    "format_summary",
    "load_events",
    "summarize_events",
    "summarize_file",
    "summarize_files",
]

#: Span names folded into the per-request breakdown columns.  Each column
#: sums every matching span within the request's trace.
_REQUEST_COMPONENTS = {
    "queue_wait_ms": ("server.queue_wait",),
    "window_wait_ms": ("batcher.window_wait",),
    "kernel_ms": ("worker.kernel",),
    "cache_ms": ("server.cache_probe", "cache.read", "cache.write"),
}


def load_events(path: str | os.PathLike) -> list[dict]:
    """Parse a JSONL trace file, skipping blank or malformed lines.

    Malformed lines are tolerated (a torn multi-process write loses one
    event, not the analysis) but counted: the returned list's events are
    valid dicts only.
    """
    events: list[dict] = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict) and "name" in event and "dur_ms" in event:
                events.append(event)
    return events


def _percentile(durations: list[float], quantile: float) -> float:
    """Exact percentile by linear interpolation over sorted raw durations."""
    if len(durations) == 1:
        return durations[0]
    position = quantile * (len(durations) - 1)
    lower = int(position)
    fraction = position - lower
    if lower + 1 >= len(durations):
        return durations[-1]
    return durations[lower] + (durations[lower + 1] - durations[lower]) * fraction


def summarize_events(events: Iterable[Mapping[str, Any]]) -> dict:
    """Aggregate parsed trace events into span tables and request breakdowns."""
    events = list(events)
    by_name: dict[str, list[float]] = defaultdict(list)
    by_trace: dict[str, list[Mapping[str, Any]]] = defaultdict(list)
    for event in events:
        by_name[str(event["name"])].append(float(event["dur_ms"]))
        trace = event.get("trace")
        if trace:
            by_trace[str(trace)].append(event)

    spans = {}
    for name, durations in sorted(by_name.items()):
        durations.sort()
        total = sum(durations)
        spans[name] = {
            "count": len(durations),
            "total_ms": total,
            "mean_ms": total / len(durations),
            "p50_ms": _percentile(durations, 0.50),
            "p95_ms": _percentile(durations, 0.95),
            "p99_ms": _percentile(durations, 0.99),
            "max_ms": durations[-1],
        }

    requests = []
    stitched = 0
    for trace, trace_events in by_trace.items():
        router_roots = [e for e in trace_events if e["name"] == "router.request"]
        server_roots = [e for e in trace_events if e["name"] == "server.request"]
        roots = router_roots or server_roots
        if not roots:
            continue
        root = roots[0]
        attrs = root.get("attrs") or {}
        breakdown: dict[str, Any] = {
            "trace": trace,
            "dur_ms": float(root["dur_ms"]),
            "path": attrs.get("path"),
            "status": attrs.get("status"),
        }
        for column, names in _REQUEST_COMPONENTS.items():
            breakdown[column] = sum(
                float(event["dur_ms"]) for event in trace_events if event["name"] in names
            )
        # Per-hop columns: only meaningful once a trace crosses processes
        # (router events stitched next to shard/worker events).
        router_ms = sum(float(e["dur_ms"]) for e in router_roots)
        shard_ms = sum(float(e["dur_ms"]) for e in server_roots)
        breakdown["router_ms"] = router_ms
        breakdown["shard_ms"] = shard_ms
        if router_roots and server_roots:
            stitched += 1
            # Residual between hop envelopes: wire plus unspanned time.
            breakdown["network_ms"] = max(0.0, router_ms - shard_ms)
        else:
            breakdown["network_ms"] = 0.0
        requests.append(breakdown)
    requests.sort(key=lambda entry: entry["dur_ms"], reverse=True)

    return {
        "events": len(events),
        "traces": len(by_trace),
        "stitched": stitched,
        "spans": spans,
        "requests": requests,
    }


def summarize_file(path: str | os.PathLike) -> dict:
    return summarize_events(load_events(path))


def summarize_files(paths: Iterable[str | os.PathLike]) -> dict:
    """Stitch several captures (router + shards + collector) into one summary."""
    events: list[dict] = []
    for path in paths:
        events.extend(load_events(path))
    return summarize_events(events)


def build_trace_tree(events: Iterable[Mapping[str, Any]], trace: str) -> list[dict]:
    """The parent-linked span tree of one trace, roots first.

    Events whose ``parent`` is absent from the capture become roots (their
    parent finished in an uncaptured process), so a partially shipped trace
    still renders as a forest instead of vanishing.  Children are ordered
    by timestamp; each node carries ``name``/``span``/``dur_ms``/``pid``
    and its nested ``children``.
    """
    trace_events = sorted(
        (e for e in events if e.get("trace") == trace and e.get("span")),
        key=lambda e: e.get("ts", 0.0),
    )
    nodes = {
        e["span"]: {
            "name": e.get("name"),
            "span": e["span"],
            "parent": e.get("parent"),
            "dur_ms": float(e.get("dur_ms", 0.0)),
            "pid": e.get("pid"),
            "attrs": e.get("attrs") or {},
            "children": [],
        }
        for e in trace_events
    }
    roots = []
    for node in nodes.values():
        parent = node["parent"]
        if parent is not None and parent in nodes:
            nodes[parent]["children"].append(node)
        else:
            roots.append(node)
    return roots


def _row(columns: Iterable[Any], widths: Iterable[int]) -> str:
    cells = []
    for value, width in zip(columns, widths):
        text = f"{value:.3f}" if isinstance(value, float) else str(value)
        cells.append(text.rjust(width) if isinstance(value, (int, float)) else text.ljust(width))
    return "  ".join(cells).rstrip()


def format_summary(summary: Mapping[str, Any], *, top: int = 10) -> str:
    """Render a summary as the ``repro trace summarize`` report text."""
    header_line = f"events: {summary['events']}    traces: {summary['traces']}"
    if summary.get("stitched"):
        header_line += f"    stitched: {summary['stitched']}"
    lines = [header_line, ""]
    spans = summary["spans"]
    if spans:
        header = ("span", "count", "total_ms", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms")
        name_width = max(len(header[0]), *(len(name) for name in spans))
        widths = (name_width, 7, 10, 9, 9, 9, 9, 9)
        lines.append(_row(header, widths))
        for name, stats in spans.items():
            lines.append(
                _row(
                    (
                        name,
                        stats["count"],
                        stats["total_ms"],
                        stats["mean_ms"],
                        stats["p50_ms"],
                        stats["p95_ms"],
                        stats["p99_ms"],
                        stats["max_ms"],
                    ),
                    widths,
                )
            )
    requests = summary["requests"]
    if requests:
        lines.append("")
        lines.append(f"slowest requests (top {min(top, len(requests))} of {len(requests)}):")
        stitched = bool(summary.get("stitched"))
        header = (
            "trace", "dur_ms", "queue_wait_ms", "window_wait_ms", "kernel_ms",
            "cache_ms",
        )
        widths: tuple[int, ...] = (16, 9, 13, 14, 9, 9)
        if stitched:
            header += ("router_ms", "shard_ms", "network_ms")
            widths += (10, 9, 11)
        header += ("status", "path")
        widths += (6, 24)
        lines.append(_row(header, widths))
        for entry in requests[:top]:
            columns = [
                entry["trace"],
                entry["dur_ms"],
                entry["queue_wait_ms"],
                entry["window_wait_ms"],
                entry["kernel_ms"],
                entry["cache_ms"],
            ]
            if stitched:
                columns += [
                    entry.get("router_ms", 0.0),
                    entry.get("shard_ms", 0.0),
                    entry.get("network_ms", 0.0),
                ]
            columns += [
                "" if entry["status"] is None else entry["status"],
                entry["path"] or "",
            ]
            lines.append(_row(columns, widths))
    return "\n".join(lines)
