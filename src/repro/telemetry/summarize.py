"""Offline trace analysis: turn a JSONL trace capture into timing breakdowns.

Reads the event stream written by :mod:`repro.telemetry.tracing` (from
``repro serve --trace-file`` or ``repro study run --trace-file``) and
renders two views:

* a **per-span-name table** -- count, total, mean, p50/p95/p99 and max
  duration for every span name in the capture (exact percentiles: the
  raw durations are all on disk, no bucketing needed offline);
* a **per-request breakdown** -- for each trace that contains a root
  ``server.request`` span, where its wall-clock went: queue wait,
  batch-window wait, worker kernel time, cache probes and writes.

Everything here is read-only analysis over plain dicts, shared by the
``repro trace summarize`` CLI and the tests.
"""

from __future__ import annotations

import json
import os
from collections import defaultdict
from typing import Any, Iterable, Mapping

__all__ = ["format_summary", "load_events", "summarize_events", "summarize_file"]

#: Span names folded into the per-request breakdown columns.  Each column
#: sums every matching span within the request's trace.
_REQUEST_COMPONENTS = {
    "queue_wait_ms": ("server.queue_wait",),
    "window_wait_ms": ("batcher.window_wait",),
    "kernel_ms": ("worker.kernel",),
    "cache_ms": ("server.cache_probe", "cache.read", "cache.write"),
}


def load_events(path: str | os.PathLike) -> list[dict]:
    """Parse a JSONL trace file, skipping blank or malformed lines.

    Malformed lines are tolerated (a torn multi-process write loses one
    event, not the analysis) but counted: the returned list's events are
    valid dicts only.
    """
    events: list[dict] = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict) and "name" in event and "dur_ms" in event:
                events.append(event)
    return events


def _percentile(durations: list[float], quantile: float) -> float:
    """Exact percentile by linear interpolation over sorted raw durations."""
    if len(durations) == 1:
        return durations[0]
    position = quantile * (len(durations) - 1)
    lower = int(position)
    fraction = position - lower
    if lower + 1 >= len(durations):
        return durations[-1]
    return durations[lower] + (durations[lower + 1] - durations[lower]) * fraction


def summarize_events(events: Iterable[Mapping[str, Any]]) -> dict:
    """Aggregate parsed trace events into span tables and request breakdowns."""
    events = list(events)
    by_name: dict[str, list[float]] = defaultdict(list)
    by_trace: dict[str, list[Mapping[str, Any]]] = defaultdict(list)
    for event in events:
        by_name[str(event["name"])].append(float(event["dur_ms"]))
        trace = event.get("trace")
        if trace:
            by_trace[str(trace)].append(event)

    spans = {}
    for name, durations in sorted(by_name.items()):
        durations.sort()
        total = sum(durations)
        spans[name] = {
            "count": len(durations),
            "total_ms": total,
            "mean_ms": total / len(durations),
            "p50_ms": _percentile(durations, 0.50),
            "p95_ms": _percentile(durations, 0.95),
            "p99_ms": _percentile(durations, 0.99),
            "max_ms": durations[-1],
        }

    requests = []
    for trace, trace_events in by_trace.items():
        roots = [event for event in trace_events if event["name"] == "server.request"]
        if not roots:
            continue
        root = roots[0]
        attrs = root.get("attrs") or {}
        breakdown: dict[str, Any] = {
            "trace": trace,
            "dur_ms": float(root["dur_ms"]),
            "path": attrs.get("path"),
            "status": attrs.get("status"),
        }
        for column, names in _REQUEST_COMPONENTS.items():
            breakdown[column] = sum(
                float(event["dur_ms"]) for event in trace_events if event["name"] in names
            )
        requests.append(breakdown)
    requests.sort(key=lambda entry: entry["dur_ms"], reverse=True)

    return {
        "events": len(events),
        "traces": len(by_trace),
        "spans": spans,
        "requests": requests,
    }


def summarize_file(path: str | os.PathLike) -> dict:
    return summarize_events(load_events(path))


def _row(columns: Iterable[Any], widths: Iterable[int]) -> str:
    cells = []
    for value, width in zip(columns, widths):
        text = f"{value:.3f}" if isinstance(value, float) else str(value)
        cells.append(text.rjust(width) if isinstance(value, (int, float)) else text.ljust(width))
    return "  ".join(cells).rstrip()


def format_summary(summary: Mapping[str, Any], *, top: int = 10) -> str:
    """Render a summary as the ``repro trace summarize`` report text."""
    lines = [f"events: {summary['events']}    traces: {summary['traces']}", ""]
    spans = summary["spans"]
    if spans:
        header = ("span", "count", "total_ms", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms")
        name_width = max(len(header[0]), *(len(name) for name in spans))
        widths = (name_width, 7, 10, 9, 9, 9, 9, 9)
        lines.append(_row(header, widths))
        for name, stats in spans.items():
            lines.append(
                _row(
                    (
                        name,
                        stats["count"],
                        stats["total_ms"],
                        stats["mean_ms"],
                        stats["p50_ms"],
                        stats["p95_ms"],
                        stats["p99_ms"],
                        stats["max_ms"],
                    ),
                    widths,
                )
            )
    requests = summary["requests"]
    if requests:
        lines.append("")
        lines.append(f"slowest requests (top {min(top, len(requests))} of {len(requests)}):")
        header = (
            "trace", "dur_ms", "queue_wait_ms", "window_wait_ms", "kernel_ms",
            "cache_ms", "status", "path",
        )
        widths = (16, 9, 13, 14, 9, 9, 6, 24)
        lines.append(_row(header, widths))
        for entry in requests[:top]:
            lines.append(
                _row(
                    (
                        entry["trace"],
                        entry["dur_ms"],
                        entry["queue_wait_ms"],
                        entry["window_wait_ms"],
                        entry["kernel_ms"],
                        entry["cache_ms"],
                        "" if entry["status"] is None else entry["status"],
                        entry["path"] or "",
                    ),
                    widths,
                )
            )
    return "\n".join(lines)
