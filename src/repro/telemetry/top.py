"""``repro top``: a stdlib-only live terminal view of the fleet.

Polls a router's ``/metrics?scope=fleet`` (falling back to the local scope
when federation is off or the target is a plain shard) and ``/v1/slo``,
and renders one screenful: throughput and error rate over the last poll
interval, fleet latency quantiles with the slowest-trace exemplar, the
cache-tier mix, admission state, per-shard rows and SLO burn.  Rendering
is a pure function of two samples (:func:`render_dashboard`), so tests and
``--once`` share the exact code path with the live loop; live mode merely
redraws with ANSI clear-home between polls.  No curses, no third-party
deps -- a dumb pipe gets plain text.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Callable, Mapping

__all__ = ["fetch_sample", "render_dashboard", "run_top"]


def _get_json(host: str, port: int, path: str, timeout: float) -> dict | None:
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        body = response.read()
        if response.status != 200:
            return None
        return json.loads(body.decode("utf-8"))
    except (OSError, ValueError, http.client.HTTPException):
        return None
    finally:
        connection.close()


def fetch_sample(
    host: str, port: int, *, scope: str = "fleet", timeout: float = 5.0
) -> dict:
    """One poll: the metrics document (+SLO report when served) + a stamp."""
    metrics = _get_json(host, port, f"/metrics?scope={scope}", timeout)
    used_scope = scope
    if metrics is None and scope != "local":
        # Federation off, or the target is a bare shard: degrade to local.
        metrics = _get_json(host, port, "/metrics", timeout)
        used_scope = "local"
    slo = _get_json(host, port, "/v1/slo", timeout)
    return {
        "at": time.time(),
        "scope": used_scope,
        "metrics": metrics,
        "slo": slo,
        "target": f"{host}:{port}",
    }


def _rate(
    sample: Mapping, previous: Mapping | None, counter: str
) -> float | None:
    """Per-second delta of a roll-up counter between two samples."""
    if not previous or not previous.get("metrics") or not sample.get("metrics"):
        return None
    elapsed = sample["at"] - previous["at"]
    if elapsed <= 0.0:
        return None
    now = sample["metrics"].get(counter, 0)
    then = previous["metrics"].get(counter, 0)
    if not isinstance(now, (int, float)) or not isinstance(then, (int, float)):
        return None
    return max(0.0, (now - then) / elapsed)


def _ms(value) -> str:
    if not isinstance(value, (int, float)):
        return "-"
    return f"{value * 1000.0:.1f}ms"


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _bytes(value) -> str:
    if not isinstance(value, (int, float)) or value <= 0:
        return "-"
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024.0
    return "-"


def render_dashboard(
    sample: Mapping[str, Any], previous: Mapping[str, Any] | None = None
) -> str:
    """One screenful of fleet state; pure so ``--once`` and tests share it."""
    metrics = sample.get("metrics")
    lines: list[str] = []
    if not metrics:
        return f"repro top -- {sample.get('target', '?')}: no /metrics response\n"
    targets = metrics.get("targets") if isinstance(metrics.get("targets"), dict) else {}
    healthy = metrics.get("healthy_shards")
    total_shards = metrics.get("shards") if isinstance(metrics.get("shards"), int) else None
    header = f"repro top -- {sample.get('target', '?')} scope={sample.get('scope', '?')}"
    if targets:
        header += f" targets={len(targets)}"
    if isinstance(healthy, int):
        header += f" healthy={healthy}"
        if isinstance(total_shards, int):
            header += f"/{total_shards}"
    lines.append(header)

    requests = metrics.get("requests_total", 0)
    errors = metrics.get("errors_total", 0)
    rate = _rate(sample, previous, "requests_total")
    error_rate = _rate(sample, previous, "errors_total")
    throughput = (
        f"throughput {rate:.1f} req/s (errors {error_rate or 0.0:.1f}/s)"
        if rate is not None
        else f"requests {requests} (errors {errors})"
    )
    lines.append(throughput)

    histograms = metrics.get("histograms", {})
    request_seconds = histograms.get("request_seconds") or {}
    if request_seconds.get("count"):
        latency = (
            f"latency p50 {_ms(request_seconds.get('p50'))}"
            f"  p95 {_ms(request_seconds.get('p95'))}"
            f"  p99 {_ms(request_seconds.get('p99'))}"
            f"  max {_ms(request_seconds.get('max'))}"
            f"  n={request_seconds.get('count')}"
        )
        lines.append(latency)
        exemplar = request_seconds.get("exemplar")
        if isinstance(exemplar, dict):
            lines.append(
                f"slowest trace {exemplar.get('trace')} ({_ms(exemplar.get('value'))})"
                "  -> repro trace summarize <trace-file>"
            )

    tiers = (
        ("lru", "cache_hits_lru"),
        ("disk", "cache_hits_disk"),
        ("remote", "cache_hits_remote"),
        ("router", "router_cache_hits"),
        ("miss", "cache_misses"),
    )
    tier_counts = [(label, metrics.get(name, 0)) for label, name in tiers]
    tier_total = sum(count for _, count in tier_counts)
    if tier_total:
        mix = "  ".join(
            f"{label} {count} ({100.0 * count / tier_total:.0f}%)"
            for label, count in tier_counts
            if count
        )
        lines.append(f"cache mix: {mix}")

    admission = []
    for label, name in (
        ("inflight", "inflight_requests"),
        ("running", "running_requests"),
        ("queued", "queued_requests"),
        ("draining", "draining"),
    ):
        value = metrics.get(name)
        if isinstance(value, (int, float)):
            admission.append(f"{label} {_fmt(value)}")
    shipped, dropped = metrics.get("spans_shipped", 0), metrics.get("spans_dropped", 0)
    if shipped or dropped:
        admission.append(f"spans {shipped} shipped/{dropped} dropped")
    if admission:
        lines.append("  ".join(admission))

    if targets:
        lines.append("")
        lines.append(
            f"{'target':<24} {'role':<7} {'age':>6} {'requests':>9} "
            f"{'errors':>7} {'p99':>9} {'rss':>9}"
        )
        for target in sorted(targets):
            entry = targets[target]
            counters = entry.get("counters", {})
            gauges = entry.get("gauges", {})
            hist = entry.get("histograms", {}).get("request_seconds") or {}
            lines.append(
                f"{target:<24} {entry.get('role', '?'):<7} "
                f"{entry.get('age_seconds', 0):>5.1f}s "
                f"{counters.get('requests_total', 0):>9} "
                f"{counters.get('errors_total', 0):>7} "
                f"{_ms(hist.get('p99')):>9} "
                f"{_bytes(gauges.get('process_rss_bytes')):>9}"
            )

    slo = sample.get("slo")
    if isinstance(slo, dict) and slo.get("objectives"):
        lines.append("")
        lines.append("slo:")
        for row in slo["objectives"]:
            scope_row = row.get("window") or row.get("cumulative")
            if not isinstance(scope_row, dict):
                lines.append(f"  {row.get('name', '?'):<22} (no data)")
                continue
            marker = "ok" if scope_row.get("met") else "BREACH"
            compliance = scope_row.get("compliance")
            lines.append(
                f"  {row.get('name', '?'):<22} "
                f"compliance {compliance if compliance is not None else '-'} "
                f"burn {scope_row.get('burn_rate', 0)}x "
                f"budget left {scope_row.get('budget_remaining', 1.0)} "
                f"[{marker}]"
            )
    return "\n".join(lines) + "\n"


def run_top(
    host: str,
    port: int,
    *,
    interval: float = 2.0,
    once: bool = False,
    iterations: int | None = None,
    scope: str = "fleet",
    timeout: float = 5.0,
    out: Callable[[str], None] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """The ``repro top`` loop; returns a process exit code.

    ``--once`` (or ``iterations``) bounds the loop for CI; live mode
    clears the screen between redraws and exits cleanly on Ctrl-C.
    """
    emit = out if out is not None else lambda text: print(text, end="", flush=True)
    previous = None
    count = 0
    limit = 1 if once else iterations
    try:
        while True:
            sample = fetch_sample(host, port, scope=scope, timeout=timeout)
            screen = render_dashboard(sample, previous)
            if once or iterations is not None:
                emit(screen)
            else:
                emit("\x1b[2J\x1b[H" + screen)
            if sample.get("metrics") is None and (once or iterations is not None):
                return 1
            previous = sample
            count += 1
            if limit is not None and count >= limit:
                return 0
            sleep(interval)
    except KeyboardInterrupt:
        return 0
