"""Observability for the reproduction: metrics, tracing spans, summaries.

Two independent facilities with one design contract -- **deterministic-safe
and near-free when idle**:

* :mod:`repro.telemetry.metrics` -- typed counters, gauges and fixed-bucket
  latency histograms in a lock-consistent :class:`MetricsRegistry`;
  snapshots merge across processes, so pool workers ship their kernel
  timings back with their job results.
* :mod:`repro.telemetry.tracing` -- named spans emitting JSONL trace
  events with propagated trace ids; one ``None`` check when disabled
  (the :func:`repro.faults.hit` idiom), armed via
  ``configure(trace_file=...)`` or the ``REPRO_TRACE_FILE`` env var that
  :func:`configure` exports to spawned worker pools.

Neither facility ever touches a seeded RNG stream or a result payload:
with telemetry on or off, every evaluation produces byte-identical results
and cache digests (pinned in ``tests/telemetry/test_determinism.py``).

Besides per-server registries (each :class:`~repro.service.server.EvaluationServer`
owns one), the module keeps a **process-global registry** for code that has
no registry in scope -- kernel spans, cache tiers, the study runner.  In a
pool worker, deltas of this registry are what travel back to the parent.
"""

from __future__ import annotations

import os
import platform
import time

from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    histogram_quantile,
    histogram_summary,
    merge_snapshots,
    parse_prometheus,
    render_prometheus,
    subtract_snapshots,
)
from repro.telemetry.tracing import (
    Span,
    configure,
    current_span_id,
    current_trace_id,
    disable,
    enabled,
    new_trace_id,
    record,
    set_trace_id,
    span,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "MetricsRegistry",
    "Span",
    "configure",
    "current_span_id",
    "current_trace_id",
    "disable",
    "enabled",
    "global_registry",
    "histogram_quantile",
    "histogram_summary",
    "merge_snapshots",
    "new_trace_id",
    "parse_prometheus",
    "record",
    "render_prometheus",
    "reset_global_registry",
    "set_process_gauges",
    "set_trace_id",
    "span",
    "subtract_snapshots",
]

_global_registry = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-global registry (kernel, cache and study instrumentation).

    In the server process its snapshot is merged into ``/metrics``; in a
    pool worker, per-job deltas of it are shipped back with job results.
    """
    return _global_registry


def reset_global_registry() -> MetricsRegistry:
    """Replace the process-global registry with a fresh one (tests only)."""
    global _global_registry
    _global_registry = MetricsRegistry()
    return _global_registry


#: Stamped at import: how long *this process* has been alive, as opposed to
#: the server/router ``uptime_seconds`` gauge which measures serving time.
_PROCESS_START = time.time()


def _rss_bytes() -> int | None:
    """Resident set size, best effort: /proc (exact) then getrusage (peak)."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as stream:
            return int(stream.read().split()[1]) * (os.sysconf("SC_PAGESIZE"))
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS.
        return usage * 1024 if platform.system() == "Linux" else usage
    except Exception:
        return None


def set_process_gauges(registry: MetricsRegistry) -> None:
    """Refresh the build/process gauges every registry exposes.

    Called on each ``/metrics`` render, so fleet views can spot a leaking
    shard (``process_rss_bytes``), a spinning one (``process_cpu_seconds``)
    or a silently restarted one (``process_uptime_seconds`` snapping back
    to zero).  ``build_info`` follows the Prometheus idiom of a constant
    ``1`` sample; the version/python strings ride as non-numeric gauges,
    visible in the JSON scope and skipped by the text exposition.
    """
    from repro import __version__

    rss = _rss_bytes()
    if rss is not None:
        registry.set_gauge("process_rss_bytes", rss)
    times = os.times()
    registry.set_gauge("process_cpu_seconds", round(times.user + times.system, 3))
    registry.set_gauge(
        "process_uptime_seconds", round(time.time() - _PROCESS_START, 3)
    )
    registry.set_gauge("build_info", 1)
    registry.set_gauge("build_version", __version__)
    registry.set_gauge("build_python", platform.python_version())
