"""Declarative SLOs evaluated from federated metrics: budgets and burn rates.

PR 9's chaos soak asserted reliability ad hoc ("errors == 0", "p99 ratio
< 20x").  This module replaces those with the vocabulary operators actually
use -- an **objective** ("99.9% of requests succeed", "99% of requests
finish under 500 ms, judged over a 5-minute window"), its **error budget**
(the tolerated bad fraction, ``1 - target``), and the **burn rate** (how
fast the fleet is consuming that budget: ``bad_fraction / budget``, the
dimensionless multiple of sustainable consumption -- 1.0 means "exactly on
budget", 10 means "the whole window's budget gone in a tenth of it").

Two layers:

* :func:`evaluate_objectives` -- a pure function from objectives plus one
  metrics snapshot (local or federated; both carry ``requests_total``/
  ``errors_total`` counters and ``request_seconds`` histograms) to report
  rows.  Latency compliance interpolates inside the bucket containing the
  threshold, the same arithmetic as ``histogram_quantile``.
* :class:`SLOEngine` -- windowing on top: the router feeds it a fleet
  snapshot per probe-merge beat, the engine keeps a time-stamped ring of
  reduced measurements and reports both *cumulative* (since start) and
  *windowed* (last ``window_seconds``) compliance, serving ``/v1/slo``.

:func:`gate` turns a report into a pass/fail verdict ("the degraded phase
may burn at most X" -- the chaos-soak and loadgen gates).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Callable, Iterable, Mapping

__all__ = [
    "DEFAULT_OBJECTIVES",
    "Objective",
    "SLOEngine",
    "evaluate_objectives",
    "gate",
    "load_objectives",
    "parse_objectives",
]


class Objective:
    """One declarative objective: availability or a latency threshold."""

    __slots__ = ("name", "kind", "target", "histogram", "threshold_s", "window_s")

    def __init__(
        self,
        name: str,
        kind: str,
        target: float,
        *,
        histogram: str = "request_seconds",
        threshold_ms: float | None = None,
        window_seconds: float = 300.0,
    ) -> None:
        if kind not in ("availability", "latency"):
            raise ValueError(f"objective kind must be availability|latency, got {kind!r}")
        if not 0.0 < float(target) < 1.0:
            raise ValueError(f"objective target must be in (0, 1), got {target}")
        if kind == "latency" and (threshold_ms is None or float(threshold_ms) <= 0.0):
            raise ValueError("latency objectives need a positive threshold_ms")
        if float(window_seconds) <= 0.0:
            raise ValueError("window_seconds must be positive")
        self.name = str(name)
        self.kind = kind
        self.target = float(target)
        self.histogram = str(histogram)
        self.threshold_s = float(threshold_ms) / 1000.0 if threshold_ms else None
        self.window_s = float(window_seconds)

    @property
    def budget(self) -> float:
        """The error budget: the tolerated bad fraction."""
        return 1.0 - self.target

    def describe(self) -> dict:
        description: dict = {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "error_budget": round(self.budget, 12),
            "window_seconds": self.window_s,
        }
        if self.kind == "latency":
            description["histogram"] = self.histogram
            description["threshold_ms"] = self.threshold_s * 1000.0
        return description


#: The stock fleet objectives: three nines of availability, and 99% of
#: requests under 500 ms -- generous enough that a healthy soak passes and
#: a crashed-shard window shows a visible (gated) burn.
DEFAULT_OBJECTIVES = (
    Objective("availability", "availability", 0.999),
    Objective("latency-p99-500ms", "latency", 0.99, threshold_ms=500.0),
)


def parse_objectives(data) -> tuple[Objective, ...]:
    """Objectives from config JSON: a list of dicts or ``{"objectives": [...]}``."""
    if isinstance(data, Mapping):
        data = data.get("objectives")
    if not isinstance(data, list) or not data:
        raise ValueError("SLO config must be a non-empty list of objectives")
    objectives = []
    for entry in data:
        if not isinstance(entry, Mapping):
            raise ValueError(f"objective entries must be objects, got {entry!r}")
        known = {"name", "kind", "target", "histogram", "threshold_ms", "window_seconds"}
        unknown = set(entry) - known
        if unknown:
            raise ValueError(f"unknown objective fields: {sorted(unknown)}")
        kwargs = {key: entry[key] for key in ("histogram", "threshold_ms", "window_seconds") if key in entry}
        objectives.append(
            Objective(
                entry.get("name", entry.get("kind", "objective")),
                entry.get("kind", "availability"),
                entry.get("target", 0.999),
                **kwargs,
            )
        )
    return tuple(objectives)


def load_objectives(path) -> tuple[Objective, ...]:
    """Objectives from a JSON file (the ``repro route --slo-config`` format)."""
    with open(path, "r", encoding="utf-8") as stream:
        return parse_objectives(json.load(stream))


def _count_at_or_below(histogram: Mapping[str, Any], threshold: float) -> float:
    """Observations <= ``threshold``, interpolating inside the split bucket."""
    buckets = histogram.get("buckets", [])
    counts = histogram.get("counts", [])
    good = 0.0
    lower = 0.0
    for bound, count in zip(buckets, counts):
        if threshold >= bound:
            good += count
        else:
            if threshold > lower and bound > lower:
                good += count * (threshold - lower) / (bound - lower)
            return good
        lower = bound
    # Threshold beyond the last finite bound: overflow observations count
    # as bad (their true values are unknown, >= the last bound).
    return good


def _measure(objective: Objective, snapshot: Mapping[str, Any]) -> tuple[float, float]:
    """Reduce a snapshot to ``(bad, total)`` for one objective."""
    if objective.kind == "availability":
        counters = snapshot.get("counters", {})
        total = float(counters.get("requests_total", 0))
        bad = float(counters.get("errors_total", 0))
        return min(bad, total), total
    histogram = snapshot.get("histograms", {}).get(objective.histogram)
    if not histogram or not histogram.get("count"):
        return 0.0, 0.0
    total = float(histogram["count"])
    good = _count_at_or_below(histogram, objective.threshold_s)
    return max(0.0, total - good), total


def _row(
    objective: Objective,
    bad: float,
    total: float,
    *,
    window_seconds: float | None = None,
) -> dict:
    """One report row: compliance, budget consumption, burn rate."""
    row: dict = {
        "total": round(total, 6),
        "bad": round(bad, 6),
        "compliance": None,
        "met": True,
        "burn_rate": 0.0,
        "budget_consumed": 0.0,
        "budget_remaining": 1.0,
    }
    if window_seconds is not None:
        row["window_seconds"] = round(window_seconds, 3)
    if total <= 0.0:
        return row
    bad_fraction = bad / total
    compliance = 1.0 - bad_fraction
    burn_rate = bad_fraction / objective.budget
    # Budget consumed relative to the objective's window: burning at rate r
    # for a fraction w/W of the window consumes r*w/W of the budget.
    if window_seconds is not None:
        consumed = burn_rate * min(1.0, window_seconds / objective.window_s)
    else:
        consumed = burn_rate
    row.update(
        compliance=round(compliance, 9),
        met=compliance >= objective.target,
        burn_rate=round(burn_rate, 6),
        budget_consumed=round(consumed, 6),
        budget_remaining=round(1.0 - consumed, 6),
    )
    return row


def evaluate_objectives(
    objectives: Iterable[Objective],
    snapshot: Mapping[str, Any],
    *,
    window_seconds: float | None = None,
) -> list[dict]:
    """Evaluate objectives against one metrics snapshot (local or fleet)."""
    rows = []
    for objective in objectives:
        bad, total = _measure(objective, snapshot)
        rows.append(
            {
                **objective.describe(),
                **_row(objective, bad, total, window_seconds=window_seconds),
            }
        )
    return rows


def gate(
    rows: Iterable[Mapping[str, Any]], *, max_burn_rate: float
) -> dict:
    """Pass/fail verdict: every objective's burn rate within the allowance."""
    violations = [
        {
            "name": row.get("name"),
            "burn_rate": row.get("burn_rate"),
            "max_burn_rate": max_burn_rate,
        }
        for row in rows
        if (row.get("burn_rate") or 0.0) > max_burn_rate
    ]
    return {
        "passed": not violations,
        "max_burn_rate": max_burn_rate,
        "violations": violations,
    }


class SLOEngine:
    """Windowed SLO evaluation over a stream of (fleet) snapshots.

    ``observe(snapshot)`` reduces the snapshot to per-objective ``(bad,
    total)`` cumulative pairs and appends them to a time-stamped ring;
    ``report()`` differences the newest sample against the oldest one
    inside each objective's window, yielding *windowed* burn rates next to
    the *cumulative* ones.  Reductions are tiny (two floats per objective),
    so the ring holds minutes of history at probe cadence for free.
    """

    def __init__(
        self,
        objectives: Iterable[Objective] | None = None,
        *,
        clock: Callable[[], float] = time.time,
        max_samples: int = 4096,
    ) -> None:
        self.objectives = tuple(objectives) if objectives else DEFAULT_OBJECTIVES
        if not self.objectives:
            raise ValueError("SLOEngine needs at least one objective")
        self._clock = clock
        self._lock = threading.Lock()
        self._samples: deque = deque(maxlen=int(max_samples))

    def observe(self, snapshot: Mapping[str, Any]) -> None:
        measures = {
            objective.name: _measure(objective, snapshot)
            for objective in self.objectives
        }
        with self._lock:
            self._samples.append((self._clock(), measures))

    def report(self) -> dict:
        """The ``/v1/slo`` body: cumulative and windowed rows per objective."""
        with self._lock:
            samples = list(self._samples)
        now = self._clock()
        if not samples:
            return {
                "objectives": [
                    {**objective.describe(), "cumulative": None, "window": None}
                    for objective in self.objectives
                ],
                "samples": 0,
            }
        latest_ts, latest = samples[-1]
        rows = []
        for objective in self.objectives:
            bad, total = latest.get(objective.name, (0.0, 0.0))
            cumulative = _row(objective, bad, total)
            window = None
            baseline = None
            for ts, measures in samples:
                if ts >= latest_ts - objective.window_s:
                    baseline = (ts, measures)
                    break
            if baseline is not None and baseline[0] < latest_ts:
                base_bad, base_total = baseline[1].get(objective.name, (0.0, 0.0))
                window = _row(
                    objective,
                    max(0.0, bad - base_bad),
                    max(0.0, total - base_total),
                    window_seconds=latest_ts - baseline[0],
                )
            rows.append(
                {**objective.describe(), "cumulative": cumulative, "window": window}
            )
        return {
            "objectives": rows,
            "samples": len(samples),
            "updated_age_seconds": round(max(0.0, now - latest_ts), 6),
        }
