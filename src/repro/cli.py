"""Command-line interface.

``python -m repro`` exposes the assessor-facing outputs of the model without
writing any code:

* ``assess`` -- read a fault model from a JSON file (or use a built-in
  scenario) and print the full assessment report;
* ``gain`` -- print the diversity-gain summary as JSON;
* ``pmax-table`` -- print the Section 5.1 table for arbitrary ``p_max`` values;
* ``simulate`` -- legacy alias (emits a ``DeprecationWarning``; prefer
  ``evaluate --method montecarlo``): run the Monte Carlo engine over a model
  and print the paired single-versus-1-out-of-2 summary as JSON.
  ``--chunk-size`` bounds
  peak memory without changing the sampled values (the chunked path is
  bitwise-identical to the in-memory path for the same ``--seed``);
  ``--jobs`` fans the replications out across worker processes (a distinct,
  statistically equivalent random stream); ``--stream`` switches to the
  constant-memory accumulator summaries recommended for very large
  ``--replications``;
* ``evaluate`` -- run any registered evaluation method (``repro methods``
  lists them) on a model and print the typed result as JSON; methods and
  their options resolve through the :class:`repro.api.MethodRegistry`, so a
  method registered via :func:`repro.api.register_method` is immediately
  available here with no CLI changes;
* ``methods`` -- list the registered evaluation methods with their typed
  option schemas;
* ``study run`` / ``study show`` -- execute (or preview) a declarative
  parameter-sweep study (:mod:`repro.studies`): a JSON spec names a base
  scenario or model, sweep axes and methods; the runner evaluates the points
  in parallel against a content-addressed result cache and writes the tidy
  result table as JSON/JSONL/CSV;
* ``serve`` -- run the evaluation service (:mod:`repro.service`): an asyncio
  HTTP server that micro-batches concurrent requests into batched kernel
  calls, with an LRU response cache optionally layered on a disk cache
  (``--cache-dir``) and on other shards' caches (``--cache-peer``);
* ``route`` -- run the shard router (:mod:`repro.cluster`): a consistent-hash
  front that spreads traffic across several ``serve`` shards, fails over
  around dead or saturated ones and fans batches out with order-preserving
  reassembly;
* ``loadgen`` -- drive a ``serve`` or ``route`` endpoint with deterministic
  open-loop traffic (cold/warm/duplicate-heavy phases) and print throughput
  and latency percentiles as JSON;
* ``cache info`` / ``cache clear`` -- inspect or empty a content-addressed
  result cache directory (shared by ``study run`` and ``serve``);
* ``trace summarize`` -- render per-span timing tables and per-request
  breakdowns from one or more telemetry trace captures (``repro serve
  --trace-file`` / ``repro study run --trace-file`` / a router's
  ``--collector-file``); several files are stitched into one fleet view;
* ``top`` -- live terminal dashboard over a router or shard ``/metrics``
  endpoint (throughput, latency percentiles, cache mix, shard health, SLO
  burn); ``--once`` prints a single frame for scripts and CI;
* ``scenarios`` -- list the built-in scenarios with their descriptions.

The JSON model format is the output of :meth:`repro.core.fault_model.FaultModel.to_dict`::

    {"p": [0.05, 0.02], "q": [1e-4, 5e-4], "names": ["fault a", "fault b"]}

Bad input (a missing or malformed model file, an invalid spec, out-of-range
parameters) exits with status 2 and a one-line ``error:`` message on stderr.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.api import default_registry
from repro.api import evaluate as api_evaluate
from repro.assessment.report import assess
from repro.core.bounds import pmax_gain_table
from repro.core.fault_model import FaultModel
from repro.core.gain import diversity_gain_summary
from repro.experiments.scenarios import SCENARIOS, get_scenario, scenario_names
from repro.studies.results import TABLE_FORMATS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reliability of 1-out-of-2 diverse systems via the fault-creation-process "
            "model (Popov & Strigini, DSN 2001)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    assess_parser = subparsers.add_parser("assess", help="print a full assessment report")
    _add_model_arguments(assess_parser)
    assess_parser.add_argument(
        "--confidence", type=float, default=0.99, help="confidence level for all bounds (default 0.99)"
    )
    assess_parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON instead of text"
    )

    gain_parser = subparsers.add_parser("gain", help="print the diversity-gain summary as JSON")
    _add_model_arguments(gain_parser)
    gain_parser.add_argument(
        "--confidence", type=float, default=0.99, help="confidence level for the bound ratio"
    )

    table_parser = subparsers.add_parser(
        "pmax-table", help="print the Section 5.1 table of guaranteed bound reductions"
    )
    table_parser.add_argument(
        "pmax", type=float, nargs="*", default=[0.5, 0.1, 0.01], help="p_max values (default: the paper's)"
    )

    simulate_parser = subparsers.add_parser(
        "simulate",
        help="run the Monte Carlo engine and print the paired simulation summary as JSON",
    )
    _add_model_arguments(simulate_parser)
    simulate_parser.add_argument(
        "--replications",
        type=int,
        default=100_000,
        help="number of simulated developments (default 100000)",
    )
    simulate_parser.add_argument(
        "--seed", type=int, default=None, help="random seed (default: the library seed)"
    )
    simulate_parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help=(
            "draw fault matrices at most this many rows at a time; bounds peak memory at "
            "O(chunk_size * n) and is bitwise-identical to the in-memory path for the same seed"
        ),
    )
    simulate_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "shard replications across this many worker processes (reproducible per "
            "(seed, jobs), but a distinct stream from the sequential path)"
        ),
    )
    simulate_parser.add_argument(
        "--stream",
        action="store_true",
        help=(
            "summarise into constant-memory streaming accumulators instead of retaining "
            "every sample (recommended for 10^7+ replications)"
        ),
    )

    evaluate_parser = subparsers.add_parser(
        "evaluate",
        help="run one registered evaluation method and print the typed result as JSON",
    )
    _add_model_arguments(evaluate_parser)
    evaluate_parser.add_argument(
        "--method",
        required=True,
        help="registered method name (see 'repro methods')",
    )
    evaluate_parser.add_argument(
        "--set",
        dest="options",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help=(
            "method option override (repeatable); VALUE is parsed as JSON "
            "(so 0.999, 50000, true, null), falling back to a plain string"
        ),
    )
    evaluate_parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="random seed for seed-consuming methods (default: the library seed)",
    )

    subparsers.add_parser(
        "methods", help="list registered evaluation methods with their option schemas"
    )

    study_parser = subparsers.add_parser(
        "study", help="run or preview a declarative parameter-sweep study"
    )
    study_subparsers = study_parser.add_subparsers(dest="study_command", required=True)

    study_run = study_subparsers.add_parser(
        "run", help="execute a study spec and write its result table"
    )
    study_run.add_argument("spec", help="path to a JSON study spec")
    study_run.add_argument(
        "--cache-dir",
        default=".repro-study-cache",
        help=(
            "content-addressed result cache directory (default .repro-study-cache); "
            "'none' disables caching"
        ),
    )
    study_run.add_argument(
        "--output-dir",
        default="study-output",
        help="directory for the result table and summary (default study-output)",
    )
    study_run.add_argument(
        "--formats",
        default=",".join(TABLE_FORMATS),
        help=f"comma-separated table formats to write (default {','.join(TABLE_FORMATS)})",
    )
    study_run.add_argument(
        "--jobs", type=int, default=1, help="worker processes for uncached points (default 1)"
    )
    study_run.add_argument(
        "--force", action="store_true", help="recompute every point even on a cache hit"
    )
    study_run.add_argument(
        "--no-batch",
        action="store_true",
        help=(
            "dispatch one task per point with per-point independent random streams "
            "instead of the batched fast path (grouped p_scale/q_scale sweeps sharing "
            "one demand stream); digests and cache behaviour are identical either way"
        ),
    )
    study_run.add_argument(
        "--keep-going",
        action="store_true",
        help=(
            "do not abort on a failing point: finish the study, emit typed error "
            "rows (status/error_type/error columns) for the failures and report "
            "their count in the summary; a warm re-run recomputes only the "
            "failed points"
        ),
    )
    study_run.add_argument(
        "--quiet", action="store_true", help="suppress the progress line on stderr"
    )
    study_run.add_argument(
        "--trace-file",
        default=None,
        help=(
            "capture telemetry spans into this JSONL file (exported to worker "
            "processes; analyse with 'repro trace summarize')"
        ),
    )

    study_show = study_subparsers.add_parser(
        "show", help="expand a study spec and print its evaluation plan"
    )
    study_show.add_argument("spec", help="path to a JSON study spec")
    study_show.add_argument(
        "--points", type=int, default=10, help="number of sample points to print (default 10)"
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the evaluation service (async micro-batching HTTP server)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=8000, help="TCP port (default 8000)")
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "evaluation worker processes; 0 (the default) evaluates in server-side "
            "threads instead of a process pool"
        ),
    )
    serve_parser.add_argument(
        "--batch-window-ms",
        type=float,
        default=5.0,
        help=(
            "micro-batching window: how long the first request of a batchable group "
            "waits for companions (added latency ceiling; default 5)"
        ),
    )
    serve_parser.add_argument(
        "--cache-dir",
        default="none",
        help=(
            "disk tier for the response cache (the content-addressed study-cache "
            "format); 'none' (the default) keeps the cache in memory only"
        ),
    )
    serve_parser.add_argument(
        "--lru-size",
        type=int,
        default=1024,
        help="in-process response cache capacity in entries (default 1024)",
    )
    serve_parser.add_argument(
        "--no-batch",
        action="store_true",
        help=(
            "disable micro-batching: every request takes the scalar repro.evaluate "
            "path (per-request independent streams, no shared-kernel grouping)"
        ),
    )
    serve_parser.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help=(
            "admission control: evaluation requests allowed to run concurrently "
            "(default 64)"
        ),
    )
    serve_parser.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help=(
            "backpressure: admitted requests allowed to wait for a running slot "
            "before the server answers 429 with Retry-After (default 256)"
        ),
    )
    serve_parser.add_argument(
        "--request-timeout-ms",
        type=float,
        default=0.0,
        help=(
            "default per-request deadline in milliseconds; overrun requests answer "
            "504 (a request's own timeout_ms overrides this; 0, the default, "
            "disables the server-wide deadline)"
        ),
    )
    serve_parser.add_argument(
        "--trace-file",
        default=None,
        help=(
            "capture telemetry spans into this JSONL file (exported to worker "
            "processes; analyse with 'repro trace summarize')"
        ),
    )
    serve_parser.add_argument(
        "--ship-traces",
        default=None,
        metavar="HOST:PORT",
        help=(
            "ship telemetry spans to a router's POST /v1/traces collector "
            "instead of a local file (batched, bounded queue, never blocks "
            "the request path); mutually exclusive with --trace-file"
        ),
    )
    serve_parser.add_argument(
        "--slow-request-ms",
        type=float,
        default=None,
        help=(
            "log any request slower than this many milliseconds to stderr with "
            "its trace id (default: no slow-request log)"
        ),
    )
    serve_parser.add_argument(
        "--cache-peer",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help=(
            "another shard whose GET /v1/cache/<digest> surface backs this "
            "server's response cache (repeatable); on a local LRU + disk miss "
            "the peers are probed in order before computing"
        ),
    )

    route_parser = subparsers.add_parser(
        "route",
        help="run the shard router (consistent-hash front for 'repro serve' shards)",
    )
    route_parser.add_argument(
        "--shard",
        action="append",
        default=None,
        metavar="HOST:PORT[@WEIGHT]",
        help=(
            "a backend 'repro serve' instance (repeatable; at least one "
            "required); an optional @WEIGHT scales its share of the ring "
            "(e.g. big-box:8001@2 owns twice the keyspace)"
        ),
    )
    route_parser.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    route_parser.add_argument("--port", type=int, default=8100, help="TCP port (default 8100)")
    route_parser.add_argument(
        "--replicas",
        type=int,
        default=64,
        help="virtual nodes per shard on the hash ring (default 64)",
    )
    route_parser.add_argument(
        "--probe-interval-ms",
        type=float,
        default=500.0,
        help=(
            "how often ejected shards are probed via /healthz; also the "
            "saturation cooldown when a shard sends no Retry-After (default 500)"
        ),
    )
    route_parser.add_argument(
        "--lru-size",
        type=int,
        default=1024,
        help="router-side read-through cache capacity in entries (default 1024)",
    )
    route_parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="extra full ring walks before giving up on a request (default 2)",
    )
    route_parser.add_argument(
        "--replication",
        type=int,
        default=1,
        metavar="R",
        help=(
            "replicate each batch-group key across the first R distinct "
            "healthy shards: computed results fan out (write-all) to every "
            "replica's cache, and reads fail over to the next replica that "
            "already holds the warm entry (default 1: no replication)"
        ),
    )
    route_parser.add_argument(
        "--peer-router",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help=(
            "another router behind the same shard set (repeatable); their "
            "GET /v1/health/peers views are merged last-writer-wins once per "
            "probe interval so both routers agree on ejections"
        ),
    )
    route_parser.add_argument(
        "--trace-file",
        default=None,
        help=(
            "capture telemetry spans into this JSONL file (analyse with "
            "'repro trace summarize')"
        ),
    )
    route_parser.add_argument(
        "--collector-file",
        default=None,
        metavar="PATH",
        help=(
            "also append spans received on POST /v1/traces (from shards "
            "running --ship-traces) to this JSONL file; without it the "
            "collector keeps a bounded in-memory ring only"
        ),
    )
    route_parser.add_argument(
        "--slo-config",
        default=None,
        metavar="PATH",
        help=(
            "JSON file of SLO objectives evaluated at GET /v1/slo (default: "
            "built-in 99.9%% availability + 99%% of requests under 500 ms)"
        ),
    )
    route_parser.add_argument(
        "--no-federation",
        action="store_true",
        help=(
            "do not scrape shard/peer /metrics after health probes; "
            "/metrics?scope=fleet answers 400 and /v1/slo sees only the "
            "router's own metrics"
        ),
    )

    loadgen_parser = subparsers.add_parser(
        "loadgen",
        help="drive a service or router with deterministic open-loop traffic",
    )
    loadgen_parser.add_argument("--host", default="127.0.0.1", help="target address (default 127.0.0.1)")
    loadgen_parser.add_argument("--port", type=int, default=8000, help="target port (default 8000)")
    loadgen_parser.add_argument("--seed", type=int, default=0, help="workload seed (default 0)")
    loadgen_parser.add_argument(
        "--distinct",
        type=int,
        default=16,
        help="distinct payloads (each its own batch group; default 16)",
    )
    loadgen_parser.add_argument(
        "--duplicate-factor",
        type=int,
        default=4,
        help="repeats per payload in the duplicate-heavy phase (default 4)",
    )
    loadgen_parser.add_argument(
        "--rate", type=float, default=50.0, help="offered requests per second (default 50)"
    )
    loadgen_parser.add_argument(
        "--workers", type=int, default=8, help="concurrent client threads (default 8)"
    )
    loadgen_parser.add_argument(
        "--replications",
        type=int,
        default=2_000,
        help="Monte Carlo replications per payload (default 2000)",
    )
    loadgen_parser.add_argument(
        "--phases",
        default="cold,warm,duplicates",
        help="comma-separated subset of cold,warm,duplicates (default all three)",
    )
    loadgen_parser.add_argument(
        "--soak-seconds",
        type=float,
        default=None,
        metavar="S",
        help=(
            "chaos-soak mode: self-host a replicated cluster (ignoring "
            "--host/--port) and drive open-loop load for S seconds, checking "
            "every response byte-identical against in-process ground truth"
        ),
    )
    loadgen_parser.add_argument(
        "--kill-shard-at",
        type=float,
        default=None,
        metavar="S",
        help=(
            "soak mode: kill the busiest shard S seconds into the soak "
            "(requires --soak-seconds)"
        ),
    )
    loadgen_parser.add_argument(
        "--restart-shard-at",
        type=float,
        default=None,
        metavar="S",
        help=(
            "soak mode: restart the killed shard on the same port S seconds "
            "into the soak (requires --kill-shard-at)"
        ),
    )
    loadgen_parser.add_argument(
        "--shards",
        type=int,
        default=3,
        help="soak mode: in-process shard count (default 3)",
    )
    loadgen_parser.add_argument(
        "--replication",
        type=int,
        default=2,
        metavar="R",
        help="soak mode: router replication factor (default 2)",
    )
    loadgen_parser.add_argument(
        "--slo-max-burn",
        type=float,
        default=None,
        metavar="X",
        help=(
            "soak mode: evaluate the built-in SLOs per phase and fail (exit "
            "1) if any phase burns error budget faster than X times the "
            "sustainable rate (e.g. 2.0: the degraded phase may consume "
            "budget at most twice as fast as the objective allows)"
        ),
    )

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or clear a content-addressed result cache directory"
    )
    cache_subparsers = cache_parser.add_subparsers(dest="cache_command", required=True)
    cache_info = cache_subparsers.add_parser(
        "info", help="print entry count, total bytes and resolved path as JSON"
    )
    cache_info.add_argument(
        "--cache-dir",
        default=".repro-study-cache",
        help="cache directory to inspect (default .repro-study-cache)",
    )
    cache_clear = cache_subparsers.add_parser(
        "clear", help="delete every cache entry (requires --yes)"
    )
    cache_clear.add_argument(
        "--cache-dir",
        default=".repro-study-cache",
        help="cache directory to clear (default .repro-study-cache)",
    )
    cache_clear.add_argument(
        "--yes",
        action="store_true",
        help="confirm the deletion (refused otherwise)",
    )

    trace_parser = subparsers.add_parser(
        "trace", help="analyse telemetry trace captures (JSONL span files)"
    )
    trace_subparsers = trace_parser.add_subparsers(dest="trace_command", required=True)
    trace_summarize = trace_subparsers.add_parser(
        "summarize",
        help="per-span timing tables and per-request breakdowns from a trace file",
    )
    trace_summarize.add_argument(
        "file",
        nargs="+",
        help=(
            "trace JSONL file(s) (from --trace-file or a router's "
            "--collector-file); several files are stitched into one summary, "
            "so 'summarize router.jsonl collector.jsonl' reassembles "
            "router->shard->worker trees"
        ),
    )
    trace_summarize.add_argument(
        "--top", type=int, default=10, help="slowest requests to list (default 10)"
    )
    trace_summarize.add_argument(
        "--json", action="store_true", help="emit the summary as JSON instead of tables"
    )

    top_parser = subparsers.add_parser(
        "top",
        help="live terminal dashboard over a router or shard /metrics endpoint",
    )
    top_parser.add_argument("--host", default="127.0.0.1", help="target address (default 127.0.0.1)")
    top_parser.add_argument("--port", type=int, default=8100, help="target port (default 8100)")
    top_parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes (default 2)",
    )
    top_parser.add_argument(
        "--once",
        action="store_true",
        help="print one frame (no screen clearing) and exit; for scripts and CI",
    )
    top_parser.add_argument(
        "--scope",
        default="fleet",
        choices=("fleet", "local"),
        help=(
            "metrics scope to request; 'fleet' (default) falls back to "
            "'local' automatically against a bare shard"
        ),
    )
    top_parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="stop after this many refreshes (default: run until interrupted)",
    )

    subparsers.add_parser(
        "scenarios", help="list built-in scenarios with their descriptions"
    )
    return parser


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--model", type=str, help="path to a JSON fault-model file")
    group.add_argument(
        "--scenario", type=str, choices=scenario_names(), help="use a built-in scenario"
    )


def _load_model(arguments: argparse.Namespace) -> FaultModel:
    if arguments.scenario is not None:
        return get_scenario(arguments.scenario)
    try:
        with open(arguments.model, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except json.JSONDecodeError as error:
        raise ValueError(f"model file {arguments.model!r} is not valid JSON: {error}") from error
    if not isinstance(data, dict):
        raise ValueError(
            f"model file {arguments.model!r} must contain a JSON object, "
            f"got {type(data).__name__}"
        )
    try:
        return FaultModel.from_dict(data)
    except KeyError as error:
        raise ValueError(
            f"model file {arguments.model!r} is missing required key {error}"
        ) from error


# --------------------------------------------------------------------- #
# Command handlers
# --------------------------------------------------------------------- #
def _handle_scenarios(arguments: argparse.Namespace) -> int:
    width = max(len(name) for name in scenario_names())
    for name in scenario_names():
        print(f"{name.ljust(width)}  {SCENARIOS[name].description}")
    return 0


def _handle_pmax_table(arguments: argparse.Namespace) -> int:
    print(f"{'p_max':>10s}  {'bound reduction':>16s}  {'improvement':>12s}")
    for row in pmax_gain_table(arguments.pmax):
        print(f"{row.p_max:>10.4g}  {row.gain_factor:>16.4f}  {row.improvement_factor:>11.2f}x")
    return 0


def _handle_assess(arguments: argparse.Namespace) -> int:
    report = assess(_load_model(arguments), confidence=arguments.confidence)
    if arguments.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0


def _handle_gain(arguments: argparse.Namespace) -> int:
    summary = diversity_gain_summary(_load_model(arguments), confidence=arguments.confidence)
    print(json.dumps(summary.as_dict(), indent=2))
    return 0


def _parse_option_assignments(assignments: Sequence[str]) -> dict:
    """Parse repeated ``--set KEY=VALUE`` flags into an option mapping.

    Values are parsed as JSON so numbers, booleans and ``null`` arrive typed;
    anything that is not valid JSON is kept as a plain string.  Type and name
    validation is the registry's job, not the parser's.
    """
    options: dict = {}
    for assignment in assignments:
        key, separator, raw = assignment.partition("=")
        key = key.strip()
        if not separator or not key:
            raise ValueError(
                f"option {assignment!r} must have the form KEY=VALUE (e.g. level=0.999)"
            )
        try:
            options[key] = json.loads(raw)
        except json.JSONDecodeError:
            options[key] = raw
    return options


def _handle_evaluate(arguments: argparse.Namespace) -> int:
    model = _load_model(arguments)
    options = _parse_option_assignments(arguments.options)
    # Pass options as a mapping, not **kwargs: an option named like one of
    # evaluate()'s own parameters (e.g. "seed") must reach the registry's
    # "does not accept option" error, not collide with the signature.
    result = api_evaluate(model, arguments.method, seed=arguments.seed, options=options)
    print(json.dumps(result.to_dict(), indent=2))
    return 0


def _handle_methods(arguments: argparse.Namespace) -> int:
    def render_default(value) -> str:
        return json.dumps(value)

    for definition in default_registry():
        seed_note = " (consumes the seed)" if definition.requires_seed else ""
        print(f"{definition.name}{seed_note}")
        if definition.description:
            print(f"  {definition.description}")
        for option in definition.options:
            kind = option.type + ("|null" if option.allow_none else "")
            line = f"  --set {option.name}=...  {kind}, default {render_default(option.default)}"
            if option.help:
                line += f"  -- {option.help}"
            print(line)
    return 0


def _handle_simulate(arguments: argparse.Namespace) -> int:
    import warnings

    from repro.montecarlo.engine import MonteCarloEngine

    warnings.warn(
        "'repro simulate' is a legacy alias; prefer "
        "'repro evaluate --method montecarlo' (registry-dispatched)",
        DeprecationWarning,
        stacklevel=2,
    )
    # Default warning filters hide DeprecationWarning outside __main__, so
    # real CLI users would never see the migration hint; say it on stderr
    # too (stdout stays untouched for JSON consumers).
    print(
        "note: 'repro simulate' is a legacy alias; prefer "
        "'repro evaluate --method montecarlo'",
        file=sys.stderr,
    )
    model = _load_model(arguments)
    engine = MonteCarloEngine(model, chunk_size=arguments.chunk_size, jobs=arguments.jobs)
    if arguments.stream:
        result = engine.simulate_paired_streaming(arguments.replications, rng=arguments.seed)
    else:
        result = engine.simulate_paired(arguments.replications, rng=arguments.seed)
    print(json.dumps(result.summary(), indent=2))
    return 0


def _handle_study(arguments: argparse.Namespace) -> int:
    from repro.studies import StudySpec, plan_study, run_study

    spec = StudySpec.from_file(arguments.spec)
    if arguments.study_command == "show":
        planned = plan_study(spec)
        distinct = len({entry.digest for entry in planned})
        print(f"study:       {spec.name}")
        if spec.description:
            print(f"description: {spec.description}")
        base = dict(spec.base)
        base_label = (
            f"scenario {base['scenario']!r}"
            if "scenario" in base
            else f"inline model ({len(base['model']['p'])} faults)"
        )
        print(f"base:        {base_label}")
        print(f"seed:        {spec.seed}")
        for axis in spec.grid:
            print(f"grid axis:   {axis.name} ({len(axis.values)} values: {_preview(axis.values)})")
        for axis in spec.zipped:
            print(f"zip axis:    {axis.name} ({len(axis.values)} values: {_preview(axis.values)})")
        for method in spec.methods:
            options = ", ".join(f"{key}={value}" for key, value in method.options)
            print(f"method:      {method.name} ({options})")
        print(f"points:      {len(planned)} ({distinct} distinct evaluations)")
        for entry in planned[: arguments.points]:
            params = ", ".join(f"{key}={value}" for key, value in entry.point.params)
            print(f"  {entry.digest[:12]}  {entry.point.method.name:<10s}  {params}")
        if len(planned) > arguments.points:
            print(f"  ... {len(planned) - arguments.points} more")
        return 0

    formats = tuple(part.strip() for part in arguments.formats.split(",") if part.strip())
    unknown = sorted(set(formats) - set(TABLE_FORMATS))
    if unknown or not formats:
        # Fail before running the study; discovering this only at save time
        # would waste the whole evaluation.
        problem = f"unknown table format(s) {', '.join(unknown)}" if unknown else "no table format given"
        raise ValueError(f"{problem}; available: {', '.join(TABLE_FORMATS)}")
    cache_dir = None if arguments.cache_dir.lower() == "none" else arguments.cache_dir

    if arguments.trace_file is not None:
        # Exported to the environment so study worker processes trace into
        # the same file.
        from repro import telemetry

        telemetry.configure(arguments.trace_file)

    def progress(done: int, total: int, computed: int) -> None:
        if not arguments.quiet:
            print(f"\r{done}/{total} evaluations ({computed} computed)", end="", file=sys.stderr)

    result = run_study(
        spec,
        cache_dir=cache_dir,
        jobs=arguments.jobs,
        force=arguments.force,
        progress=progress,
        batch=not arguments.no_batch,
        keep_going=arguments.keep_going,
    )
    if not arguments.quiet:
        print(file=sys.stderr)
    written = result.save(arguments.output_dir, formats=formats)
    summary = dict(result.summary)
    summary["files"] = {kind: str(path) for kind, path in written.items()}
    print(json.dumps(summary, indent=2))
    return 0


def _handle_serve(arguments: argparse.Namespace) -> int:
    import asyncio

    from repro.service import EvaluationServer

    if not 0 < arguments.port < 65536:
        raise ValueError(f"port must be in 1..65535, got {arguments.port}")
    if arguments.request_timeout_ms < 0.0:
        raise ValueError(
            f"--request-timeout-ms must be >= 0 (0 disables the deadline), "
            f"got {arguments.request_timeout_ms:g}"
        )
    if arguments.slow_request_ms is not None and arguments.slow_request_ms < 0.0:
        raise ValueError(
            f"--slow-request-ms must be >= 0, got {arguments.slow_request_ms:g}"
        )
    cache_dir = None if arguments.cache_dir.lower() == "none" else arguments.cache_dir
    if arguments.trace_file is not None and arguments.ship_traces is not None:
        raise ValueError(
            "--trace-file and --ship-traces are mutually exclusive: spans go "
            "to a local file or to a collector, not both"
        )
    if arguments.trace_file is not None:
        # Exported to the environment so pool workers trace into the same
        # file as the server process.
        from repro import telemetry

        telemetry.configure(arguments.trace_file)
    elif arguments.ship_traces is not None:
        # Likewise exported, so pool workers ship to the same collector.
        from repro.telemetry.collector import configure_shipping

        configure_shipping(arguments.ship_traces)
    server = EvaluationServer(
        workers=arguments.workers,
        batch_window_ms=arguments.batch_window_ms,
        batch=not arguments.no_batch,
        cache_dir=cache_dir,
        lru_size=arguments.lru_size,
        max_inflight=arguments.max_inflight,
        max_queue=arguments.max_queue,
        request_timeout_ms=arguments.request_timeout_ms or None,
        slow_request_ms=arguments.slow_request_ms,
        cache_peers=tuple(arguments.cache_peer or ()),
    )
    try:
        asyncio.run(server.serve_forever(arguments.host, arguments.port))
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    except OSError as error:
        raise ValueError(f"cannot bind {arguments.host}:{arguments.port}: {error}") from error
    return 0


def _handle_route(arguments: argparse.Namespace) -> int:
    import asyncio

    from repro.cluster import ShardRouter

    if not arguments.shard:
        raise ValueError("route needs at least one --shard HOST:PORT")
    if not 0 < arguments.port < 65536:
        raise ValueError(f"port must be in 1..65535, got {arguments.port}")
    if arguments.probe_interval_ms <= 0.0:
        raise ValueError(
            f"--probe-interval-ms must be positive, got {arguments.probe_interval_ms:g}"
        )
    if arguments.retries < 0:
        raise ValueError(f"--retries must be >= 0, got {arguments.retries}")
    if arguments.lru_size < 0:
        raise ValueError(
            f"--lru-size must be >= 0 (0 disables the router cache), "
            f"got {arguments.lru_size}"
        )
    if not 1 <= arguments.replication <= len(arguments.shard):
        raise ValueError(
            f"--replication must be in 1..{len(arguments.shard)} (the shard "
            f"count), got {arguments.replication}"
        )
    if arguments.trace_file is not None:
        from repro import telemetry

        telemetry.configure(arguments.trace_file)
    collector = None
    if arguments.collector_file is not None:
        from repro.telemetry.collector import TraceCollector

        collector = TraceCollector(arguments.collector_file)
    slo_objectives = None
    if arguments.slo_config is not None:
        from repro.telemetry.slo import load_objectives

        slo_objectives = load_objectives(arguments.slo_config)
    router = ShardRouter(
        arguments.shard,
        replicas=arguments.replicas,
        replication=arguments.replication,
        probe_interval_ms=arguments.probe_interval_ms,
        lru_size=arguments.lru_size,
        retries=arguments.retries,
        peer_routers=tuple(arguments.peer_router or ()),
        federate=not arguments.no_federation,
        collector=collector,
        slo_objectives=slo_objectives,
    )
    try:
        asyncio.run(router.serve_forever(arguments.host, arguments.port))
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    except OSError as error:
        raise ValueError(f"cannot bind {arguments.host}:{arguments.port}: {error}") from error
    return 0


def _handle_loadgen(arguments: argparse.Namespace) -> int:
    from repro.cluster.loadgen import run_loadgen, run_soak

    if arguments.soak_seconds is None and (
        arguments.kill_shard_at is not None or arguments.restart_shard_at is not None
    ):
        raise ValueError("--kill-shard-at/--restart-shard-at require --soak-seconds")
    if arguments.slo_max_burn is not None and arguments.soak_seconds is None:
        raise ValueError("--slo-max-burn requires --soak-seconds")
    if arguments.slo_max_burn is not None and arguments.slo_max_burn <= 0.0:
        raise ValueError(
            f"--slo-max-burn must be positive, got {arguments.slo_max_burn:g}"
        )
    if arguments.soak_seconds is not None:
        # The soak self-hosts its cluster; validation of the chaos timeline
        # (kill before restart, both inside the soak) lives in run_soak.
        record = run_soak(
            seed=arguments.seed,
            distinct=arguments.distinct,
            shards=arguments.shards,
            replication=arguments.replication,
            rate=arguments.rate,
            workers=arguments.workers,
            soak_seconds=arguments.soak_seconds,
            kill_shard_at=arguments.kill_shard_at,
            restart_shard_at=arguments.restart_shard_at,
            replications=arguments.replications,
            slo_max_burn=arguments.slo_max_burn,
        )
        print(json.dumps(record, indent=2))
        gate = (record.get("slo") or {}).get("gate")
        if gate is not None and not gate["passed"]:
            print(
                f"error: SLO burn-rate gate failed: {gate['violations']}",
                file=sys.stderr,
            )
            return 1
        return 0
    if not 0 < arguments.port < 65536:
        raise ValueError(f"port must be in 1..65535, got {arguments.port}")
    phases = tuple(phase.strip() for phase in arguments.phases.split(",") if phase.strip())
    if not phases:
        raise ValueError("--phases needs at least one of cold,warm,duplicates")
    record = run_loadgen(
        arguments.host,
        arguments.port,
        seed=arguments.seed,
        distinct=arguments.distinct,
        duplicate_factor=arguments.duplicate_factor,
        rate=arguments.rate,
        workers=arguments.workers,
        replications=arguments.replications,
        phases=phases,
    )
    print(json.dumps(record, indent=2))
    return 0


def _handle_cache(arguments: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.cache import ResultCache

    directory = Path(arguments.cache_dir)
    if directory.exists() and not directory.is_dir():
        raise ValueError(f"{arguments.cache_dir!r} is not a directory")
    if not directory.exists():
        # Inspecting or clearing a cache that was never created is fine --
        # and must not create it as a side effect.
        if arguments.cache_command == "info":
            print(json.dumps(
                {"path": str(directory.resolve()), "entries": 0, "bytes": 0, "exists": False},
                indent=2,
            ))
            return 0
        raise ValueError(f"cache directory {arguments.cache_dir!r} does not exist")
    cache = ResultCache(directory)
    if arguments.cache_command == "info":
        print(json.dumps({**cache.info(), "exists": True}, indent=2))
        return 0
    if not arguments.yes:
        entries = cache.info()["entries"]
        raise ValueError(
            f"refusing to clear {entries} cache entr{'y' if entries == 1 else 'ies'} "
            f"under {arguments.cache_dir!r} without --yes"
        )
    removed = cache.clear()
    print(json.dumps({"path": str(directory.resolve()), "removed": removed}, indent=2))
    return 0


def _handle_trace(arguments: argparse.Namespace) -> int:
    from repro.telemetry.summarize import format_summary, summarize_files

    if arguments.top < 1:
        raise ValueError(f"--top must be >= 1, got {arguments.top}")
    summary = summarize_files(arguments.file)
    if arguments.json:
        print(json.dumps(summary, indent=2))
    else:
        print(format_summary(summary, top=arguments.top))
    return 0


def _handle_top(arguments: argparse.Namespace) -> int:
    from repro.telemetry.top import run_top

    if not 0 < arguments.port < 65536:
        raise ValueError(f"port must be in 1..65535, got {arguments.port}")
    if arguments.interval <= 0.0:
        raise ValueError(f"--interval must be positive, got {arguments.interval:g}")
    if arguments.iterations is not None and arguments.iterations < 1:
        raise ValueError(f"--iterations must be >= 1, got {arguments.iterations}")
    try:
        return run_top(
            arguments.host,
            arguments.port,
            interval=arguments.interval,
            once=arguments.once,
            iterations=arguments.iterations,
            scope=arguments.scope,
        )
    except KeyboardInterrupt:
        return 0


def _preview(values: Sequence) -> str:
    rendered = [f"{value:.6g}" if isinstance(value, float) else str(value) for value in values]
    if len(rendered) <= 4:
        return ", ".join(rendered)
    return f"{rendered[0]}, {rendered[1]}, ..., {rendered[-1]}"


_HANDLERS = {
    "scenarios": _handle_scenarios,
    "pmax-table": _handle_pmax_table,
    "assess": _handle_assess,
    "gain": _handle_gain,
    "evaluate": _handle_evaluate,
    "methods": _handle_methods,
    "simulate": _handle_simulate,
    "study": _handle_study,
    "serve": _handle_serve,
    "route": _handle_route,
    "loadgen": _handle_loadgen,
    "cache": _handle_cache,
    "trace": _handle_trace,
    "top": _handle_top,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code (0 success, 2 bad input)."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    handler = _HANDLERS.get(arguments.command)
    if handler is None:  # unreachable with required=True; defensive
        print(f"error: unknown command {arguments.command!r}", file=sys.stderr)
        return 2
    try:
        return handler(arguments)
    except FileNotFoundError as error:
        print(f"error: file not found: {error.filename or error}", file=sys.stderr)
        return 2
    except (IsADirectoryError, PermissionError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
