"""Command-line interface.

``python -m repro`` exposes the assessor-facing outputs of the model without
writing any code:

* ``assess`` -- read a fault model from a JSON file (or use a built-in
  scenario) and print the full assessment report;
* ``gain`` -- print the diversity-gain summary as JSON;
* ``pmax-table`` -- print the Section 5.1 table for arbitrary ``p_max`` values;
* ``simulate`` -- run the Monte Carlo engine over a model and print the
  paired single-versus-1-out-of-2 summary as JSON.  ``--chunk-size`` bounds
  peak memory without changing the sampled values (the chunked path is
  bitwise-identical to the in-memory path for the same ``--seed``);
  ``--jobs`` fans the replications out across worker processes (a distinct,
  statistically equivalent random stream); ``--stream`` switches to the
  constant-memory accumulator summaries recommended for very large
  ``--replications``;
* ``scenarios`` -- list the built-in scenarios.

The JSON model format is the output of :meth:`repro.core.fault_model.FaultModel.to_dict`::

    {"p": [0.05, 0.02], "q": [1e-4, 5e-4], "names": ["fault a", "fault b"]}
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.assessment.report import assess
from repro.core.bounds import pmax_gain_table
from repro.core.fault_model import FaultModel
from repro.core.gain import diversity_gain_summary
from repro.experiments.scenarios import high_quality_scenario, many_small_faults_scenario

__all__ = ["main", "build_parser"]

#: Built-in scenarios addressable from the command line.
SCENARIOS = {
    "high-quality": high_quality_scenario,
    "many-small-faults": many_small_faults_scenario,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reliability of 1-out-of-2 diverse systems via the fault-creation-process "
            "model (Popov & Strigini, DSN 2001)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    assess_parser = subparsers.add_parser("assess", help="print a full assessment report")
    _add_model_arguments(assess_parser)
    assess_parser.add_argument(
        "--confidence", type=float, default=0.99, help="confidence level for all bounds (default 0.99)"
    )
    assess_parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON instead of text"
    )

    gain_parser = subparsers.add_parser("gain", help="print the diversity-gain summary as JSON")
    _add_model_arguments(gain_parser)
    gain_parser.add_argument(
        "--confidence", type=float, default=0.99, help="confidence level for the bound ratio"
    )

    table_parser = subparsers.add_parser(
        "pmax-table", help="print the Section 5.1 table of guaranteed bound reductions"
    )
    table_parser.add_argument(
        "pmax", type=float, nargs="*", default=[0.5, 0.1, 0.01], help="p_max values (default: the paper's)"
    )

    simulate_parser = subparsers.add_parser(
        "simulate",
        help="run the Monte Carlo engine and print the paired simulation summary as JSON",
    )
    _add_model_arguments(simulate_parser)
    simulate_parser.add_argument(
        "--replications",
        type=int,
        default=100_000,
        help="number of simulated developments (default 100000)",
    )
    simulate_parser.add_argument(
        "--seed", type=int, default=None, help="random seed (default: the library seed)"
    )
    simulate_parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help=(
            "draw fault matrices at most this many rows at a time; bounds peak memory at "
            "O(chunk_size * n) and is bitwise-identical to the in-memory path for the same seed"
        ),
    )
    simulate_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "shard replications across this many worker processes (reproducible per "
            "(seed, jobs), but a distinct stream from the sequential path)"
        ),
    )
    simulate_parser.add_argument(
        "--stream",
        action="store_true",
        help=(
            "summarise into constant-memory streaming accumulators instead of retaining "
            "every sample (recommended for 10^7+ replications)"
        ),
    )

    subparsers.add_parser("scenarios", help="list built-in scenarios")
    return parser


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--model", type=str, help="path to a JSON fault-model file")
    group.add_argument(
        "--scenario", type=str, choices=sorted(SCENARIOS), help="use a built-in scenario"
    )


def _load_model(arguments: argparse.Namespace) -> FaultModel:
    if arguments.scenario is not None:
        return SCENARIOS[arguments.scenario]()
    with open(arguments.model, "r", encoding="utf-8") as handle:
        return FaultModel.from_dict(json.load(handle))


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)

    if arguments.command == "scenarios":
        for name in sorted(SCENARIOS):
            print(name)
        return 0

    if arguments.command == "pmax-table":
        print(f"{'p_max':>10s}  {'bound reduction':>16s}  {'improvement':>12s}")
        for row in pmax_gain_table(arguments.pmax):
            print(f"{row.p_max:>10.4g}  {row.gain_factor:>16.4f}  {row.improvement_factor:>11.2f}x")
        return 0

    model = _load_model(arguments)
    if arguments.command == "assess":
        report = assess(model, confidence=arguments.confidence)
        if arguments.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            print(report.render())
        return 0

    if arguments.command == "gain":
        summary = diversity_gain_summary(model, confidence=arguments.confidence)
        print(json.dumps(summary.as_dict(), indent=2))
        return 0

    if arguments.command == "simulate":
        from repro.montecarlo.engine import MonteCarloEngine

        engine = MonteCarloEngine(
            model, chunk_size=arguments.chunk_size, jobs=arguments.jobs
        )
        if arguments.stream:
            result = engine.simulate_paired_streaming(
                arguments.replications, rng=arguments.seed
            )
        else:
            result = engine.simulate_paired(arguments.replications, rng=arguments.seed)
        print(json.dumps(result.summary(), indent=2))
        return 0

    parser.error(f"unknown command {arguments.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
