"""Demand-space substrate (Section 2.1 and Fig. 2 of the paper).

The paper models the operation of a protection system as a series of *demands*
drawn from a *demand space*; a design fault corresponds to a *failure region*,
a subset of the demand space on which the version fails; the fault's
contribution ``q_i`` to unreliability is the probability, under the
operational profile, that a demand falls inside its failure region.

This subpackage provides concrete demand spaces, geometric failure regions of
the kinds reported in the literature the paper cites (boxes, balls, arrays of
isolated points, unions of such shapes), operational profiles over those
spaces, and the machinery to compute or estimate ``q_i`` as the profile measure
of a region.
"""

from repro.demandspace.measure import estimate_region_probability, region_probability
from repro.demandspace.profiles import (
    EmpiricalProfile,
    GridProfile,
    MixtureProfile,
    OperationalProfile,
    ProductProfile,
    TruncatedNormalMarginal,
    UniformMarginal,
)
from repro.demandspace.regions import (
    BallRegion,
    BoxRegion,
    EmptyRegion,
    FailureRegion,
    HalfSpaceRegion,
    PointSetRegion,
    UnionRegion,
)
from repro.demandspace.space import ContinuousDemandSpace, DemandSpace, DiscreteDemandSpace

__all__ = [
    "BallRegion",
    "BoxRegion",
    "ContinuousDemandSpace",
    "DemandSpace",
    "DiscreteDemandSpace",
    "EmptyRegion",
    "EmpiricalProfile",
    "FailureRegion",
    "GridProfile",
    "HalfSpaceRegion",
    "MixtureProfile",
    "OperationalProfile",
    "PointSetRegion",
    "ProductProfile",
    "TruncatedNormalMarginal",
    "UniformMarginal",
    "UnionRegion",
    "estimate_region_probability",
    "region_probability",
]
