"""Probability measure of failure regions under operational profiles.

The fault-creation model's ``q_i`` parameter is "the probability of a demand
which is part of that failure region being presented to the system in
operation" (Table 1).  This module computes it:

* analytically where the geometry allows it (boxes under product profiles,
  arbitrary regions under grid or empirical profiles);
* by Monte Carlo estimation with a standard-error report otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.demandspace.profiles import (
    EmpiricalProfile,
    GridProfile,
    OperationalProfile,
    ProductProfile,
)
from repro.demandspace.regions import BoxRegion, EmptyRegion, FailureRegion, UnionRegion

__all__ = ["RegionProbabilityEstimate", "region_probability", "estimate_region_probability"]


@dataclass(frozen=True)
class RegionProbabilityEstimate:
    """A Monte Carlo estimate of a region probability.

    Attributes
    ----------
    value:
        Point estimate of the probability.
    standard_error:
        Binomial standard error of the estimate.
    sample_size:
        Number of simulated demands used.
    """

    value: float
    standard_error: float
    sample_size: int

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-theory confidence interval (clipped to ``[0, 1]``)."""
        low = max(0.0, self.value - z * self.standard_error)
        high = min(1.0, self.value + z * self.standard_error)
        return (low, high)


def region_probability(region: FailureRegion, profile: OperationalProfile) -> float | None:
    """Analytic probability of ``region`` under ``profile`` when available.

    Returns ``None`` when no closed form is implemented for the combination,
    in which case callers should fall back to
    :func:`estimate_region_probability`.

    Closed forms implemented:

    * any region under a :class:`GridProfile` or :class:`EmpiricalProfile`
      (finite summation);
    * :class:`EmptyRegion` under any profile (probability 0);
    * :class:`BoxRegion` under a :class:`ProductProfile` (product of marginal
      interval probabilities);
    * :class:`UnionRegion` of *disjoint* boxes under a :class:`ProductProfile`
      (inclusion-exclusion is not attempted; overlapping unions return
      ``None``).
    """
    if isinstance(region, EmptyRegion):
        return 0.0
    if isinstance(profile, GridProfile):
        return profile.region_probability(region)
    if isinstance(profile, EmpiricalProfile):
        return profile.region_probability(region)
    if isinstance(profile, ProductProfile):
        if isinstance(region, BoxRegion):
            return profile.box_probability(region.lower, region.upper)
        if isinstance(region, UnionRegion) and all(
            isinstance(component, BoxRegion) for component in region.components
        ):
            boxes = [component for component in region.components if isinstance(component, BoxRegion)]
            if _boxes_pairwise_disjoint(boxes):
                return float(
                    sum(profile.box_probability(box.lower, box.upper) for box in boxes)
                )
            return None
    return None


def estimate_region_probability(
    region: FailureRegion,
    profile: OperationalProfile,
    rng: np.random.Generator,
    sample_size: int = 100_000,
) -> RegionProbabilityEstimate:
    """Monte Carlo estimate of the probability of ``region`` under ``profile``.

    Parameters
    ----------
    region:
        Failure region whose probability is wanted.
    profile:
        Operational profile generating demands.
    rng:
        Random generator.
    sample_size:
        Number of simulated demands.
    """
    if sample_size < 1:
        raise ValueError(f"sample_size must be positive, got {sample_size}")
    demands = profile.sample(rng, sample_size)
    hits = region.contains(demands)
    value = float(np.mean(hits))
    standard_error = float(np.sqrt(max(value * (1.0 - value), 0.0) / sample_size))
    return RegionProbabilityEstimate(value=value, standard_error=standard_error, sample_size=sample_size)


def _boxes_pairwise_disjoint(boxes: list[BoxRegion]) -> bool:
    """True when no two boxes overlap on a set of positive volume."""
    for first_index in range(len(boxes)):
        for second_index in range(first_index + 1, len(boxes)):
            first, second = boxes[first_index], boxes[second_index]
            if first.dimension != second.dimension:
                raise ValueError("all boxes in a union must share the same dimension")
            overlaps = np.all(
                (first.lower < second.upper) & (second.lower < first.upper)
            )
            if overlaps:
                return False
    return True
