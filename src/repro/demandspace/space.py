"""Demand spaces.

A *demand* is the complete stimulus presented to the protection system when the
controlled plant enters a state requiring intervention; the *demand space* is
the set of all possible demands (the paper's Section 2.1 deliberately renames
the traditional "input space" to avoid confusion with individual input
variables).  Two concrete demand spaces are provided:

* :class:`ContinuousDemandSpace` -- an axis-aligned box in ``d`` dimensions,
  each dimension being one sensed plant variable (as in the paper's Fig. 2,
  where demands are readings of two variables ``var1`` and ``var2``).
* :class:`DiscreteDemandSpace` -- an explicit finite set of demand identifiers,
  useful for exhaustive enumeration in tests and for point-like failure
  regions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DemandSpace", "ContinuousDemandSpace", "DiscreteDemandSpace"]


class DemandSpace:
    """Abstract base class for demand spaces.

    Concrete subclasses expose the dimensionality of a demand and a membership
    test so that failure regions and operational profiles can validate that
    they live in the same space.
    """

    @property
    def dimension(self) -> int:
        """Number of coordinates describing a single demand."""
        raise NotImplementedError

    def contains(self, demands: np.ndarray) -> np.ndarray:
        """Boolean membership of each row of ``demands`` in the space."""
        raise NotImplementedError


@dataclass(frozen=True)
class ContinuousDemandSpace(DemandSpace):
    """An axis-aligned box ``[lower_1, upper_1] x ... x [lower_d, upper_d]``.

    Parameters
    ----------
    lower, upper:
        Arrays of per-dimension bounds, with ``lower < upper`` element-wise.
    names:
        Optional variable names (e.g. ``("pressure", "temperature")``) used for
        reporting; defaults to ``var1 .. vard`` in the spirit of Fig. 2.
    """

    lower: np.ndarray
    upper: np.ndarray
    names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        lower = np.atleast_1d(np.asarray(self.lower, dtype=float))
        upper = np.atleast_1d(np.asarray(self.upper, dtype=float))
        if lower.shape != upper.shape or lower.ndim != 1:
            raise ValueError("lower and upper must be 1-D arrays of the same length")
        if lower.size == 0:
            raise ValueError("demand space must have at least one dimension")
        if np.any(lower >= upper):
            raise ValueError("each lower bound must be strictly below the upper bound")
        names = tuple(self.names) if self.names else tuple(f"var{i + 1}" for i in range(lower.size))
        if len(names) != lower.size:
            raise ValueError(f"expected {lower.size} names, got {len(names)}")
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)
        object.__setattr__(self, "names", names)

    @property
    def dimension(self) -> int:
        return int(self.lower.size)

    @property
    def widths(self) -> np.ndarray:
        """Per-dimension widths of the box."""
        return self.upper - self.lower

    def volume(self) -> float:
        """Lebesgue volume of the box."""
        return float(np.prod(self.widths))

    def contains(self, demands: np.ndarray) -> np.ndarray:
        demands = self._as_demand_matrix(demands)
        return np.all((demands >= self.lower) & (demands <= self.upper), axis=1)

    def _as_demand_matrix(self, demands: np.ndarray) -> np.ndarray:
        array = np.asarray(demands, dtype=float)
        if array.ndim == 1:
            array = array.reshape(1, -1)
        if array.ndim != 2 or array.shape[1] != self.dimension:
            raise ValueError(
                f"demands must have shape (m, {self.dimension}), got {array.shape}"
            )
        return array

    def grid(self, points_per_dimension: int) -> np.ndarray:
        """A regular grid of demands covering the box.

        Returns an array of shape ``(points_per_dimension**d, d)``; used for
        deterministic numerical integration of region probabilities in low
        dimension and for plots of failure-region layouts.
        """
        if points_per_dimension < 2:
            raise ValueError("points_per_dimension must be at least 2")
        axes = [
            np.linspace(self.lower[i], self.upper[i], points_per_dimension)
            for i in range(self.dimension)
        ]
        mesh = np.meshgrid(*axes, indexing="ij")
        return np.stack([m.ravel() for m in mesh], axis=1)

    def sample_uniform(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` demands uniformly from the box."""
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        return self.lower + rng.random((size, self.dimension)) * self.widths

    @staticmethod
    def unit_square() -> "ContinuousDemandSpace":
        """The two-dimensional unit square, the canonical Fig. 2 demand space."""
        return ContinuousDemandSpace(np.array([0.0, 0.0]), np.array([1.0, 1.0]))

    @staticmethod
    def unit_cube(dimension: int) -> "ContinuousDemandSpace":
        """The ``dimension``-dimensional unit cube."""
        if dimension < 1:
            raise ValueError("dimension must be positive")
        return ContinuousDemandSpace(np.zeros(dimension), np.ones(dimension))


@dataclass(frozen=True)
class DiscreteDemandSpace(DemandSpace):
    """A finite demand space of explicitly enumerated demand points.

    Parameters
    ----------
    points:
        Array of shape ``(m, d)`` whose rows are the possible demands.
    """

    points: np.ndarray

    def __post_init__(self) -> None:
        points = np.asarray(self.points, dtype=float)
        if points.ndim == 1:
            points = points.reshape(-1, 1)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("points must be a non-empty 2-D array")
        object.__setattr__(self, "points", points)

    @property
    def dimension(self) -> int:
        return int(self.points.shape[1])

    @property
    def size(self) -> int:
        """Number of distinct demands in the space."""
        return int(self.points.shape[0])

    def contains(self, demands: np.ndarray) -> np.ndarray:
        demands = np.asarray(demands, dtype=float)
        if demands.ndim == 1:
            demands = demands.reshape(1, -1)
        matches = np.zeros(demands.shape[0], dtype=bool)
        for index in range(demands.shape[0]):
            matches[index] = bool(np.any(np.all(np.isclose(self.points, demands[index]), axis=1)))
        return matches

    def index_of(self, demand: np.ndarray) -> int:
        """Index of ``demand`` in the enumeration, or ``-1`` when absent."""
        demand = np.asarray(demand, dtype=float).reshape(1, -1)
        hits = np.where(np.all(np.isclose(self.points, demand), axis=1))[0]
        return int(hits[0]) if hits.size else -1
