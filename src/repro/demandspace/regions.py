"""Failure regions in the demand space.

A design fault makes a version fail on every demand in its *failure region*
(Section 2.1).  The literature surveyed by the paper (Bishop & Pullen; Ammann &
Knight; Hatton & Roberts) reports failure regions with simple connected shapes
(blobs, stripes) as well as non-intuitive, non-connected shapes such as arrays
of isolated points.  The region classes here cover those shapes:

* :class:`BoxRegion` -- axis-aligned boxes (stripes when thin in one dimension);
* :class:`BallRegion` -- Euclidean balls (blobs);
* :class:`HalfSpaceRegion` -- threshold-style regions (``a . x >= b``);
* :class:`PointSetRegion` -- finite arrays of isolated failure points;
* :class:`UnionRegion` -- unions of any of the above, for non-connected regions;
* :class:`EmptyRegion` -- the degenerate region of a fault with no effect.

Every region answers a vectorised membership test, and where the geometry
allows it an analytic probability under simple profiles (see
:mod:`repro.demandspace.measure`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "FailureRegion",
    "BoxRegion",
    "BallRegion",
    "HalfSpaceRegion",
    "PointSetRegion",
    "UnionRegion",
    "EmptyRegion",
]


class FailureRegion:
    """Abstract base class for failure regions.

    Subclasses implement :meth:`contains` for arrays of demands.  Regions are
    immutable value objects.
    """

    def contains(self, demands: np.ndarray) -> np.ndarray:
        """Boolean array: does each row of ``demands`` fall inside the region?"""
        raise NotImplementedError

    def union(self, other: "FailureRegion") -> "FailureRegion":
        """The union of this region with ``other``."""
        return UnionRegion((self, other))

    @staticmethod
    def _as_matrix(demands: np.ndarray, dimension: int | None = None) -> np.ndarray:
        array = np.asarray(demands, dtype=float)
        if array.ndim == 1:
            array = array.reshape(1, -1)
        if array.ndim != 2:
            raise ValueError(f"demands must be a 2-D array, got shape {array.shape}")
        if dimension is not None and array.shape[1] != dimension:
            raise ValueError(
                f"demands must have {dimension} columns, got {array.shape[1]}"
            )
        return array


@dataclass(frozen=True)
class EmptyRegion(FailureRegion):
    """The empty failure region (a potential fault with no failure points)."""

    def contains(self, demands: np.ndarray) -> np.ndarray:
        demands = self._as_matrix(demands)
        return np.zeros(demands.shape[0], dtype=bool)


@dataclass(frozen=True)
class BoxRegion(FailureRegion):
    """An axis-aligned box ``[lower_1, upper_1] x ... x [lower_d, upper_d]``."""

    lower: np.ndarray
    upper: np.ndarray

    def __post_init__(self) -> None:
        lower = np.atleast_1d(np.asarray(self.lower, dtype=float))
        upper = np.atleast_1d(np.asarray(self.upper, dtype=float))
        if lower.shape != upper.shape or lower.ndim != 1:
            raise ValueError("lower and upper must be 1-D arrays of equal length")
        if np.any(lower > upper):
            raise ValueError("lower bounds must not exceed upper bounds")
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)

    @property
    def dimension(self) -> int:
        """Dimensionality of the box."""
        return int(self.lower.size)

    def volume(self) -> float:
        """Lebesgue volume of the box."""
        return float(np.prod(self.upper - self.lower))

    def contains(self, demands: np.ndarray) -> np.ndarray:
        demands = self._as_matrix(demands, self.dimension)
        return np.all((demands >= self.lower) & (demands <= self.upper), axis=1)


@dataclass(frozen=True)
class BallRegion(FailureRegion):
    """A Euclidean ball of given centre and radius."""

    center: np.ndarray
    radius: float

    def __post_init__(self) -> None:
        center = np.atleast_1d(np.asarray(self.center, dtype=float))
        if center.ndim != 1:
            raise ValueError("center must be a 1-D array")
        if self.radius < 0.0:
            raise ValueError(f"radius must be non-negative, got {self.radius}")
        object.__setattr__(self, "center", center)

    @property
    def dimension(self) -> int:
        """Dimensionality of the ball."""
        return int(self.center.size)

    def volume(self) -> float:
        """Lebesgue volume of the ball (d-dimensional sphere volume formula)."""
        from scipy.special import gamma

        d = self.dimension
        return float(np.pi ** (d / 2.0) / gamma(d / 2.0 + 1.0) * self.radius**d)

    def contains(self, demands: np.ndarray) -> np.ndarray:
        demands = self._as_matrix(demands, self.dimension)
        distances_sq = np.sum((demands - self.center) ** 2, axis=1)
        return distances_sq <= self.radius**2


@dataclass(frozen=True)
class HalfSpaceRegion(FailureRegion):
    """The half-space ``normal . x >= offset``.

    Models threshold-style faults, e.g. "fails whenever the pressure reading
    exceeds a mis-set trip level".
    """

    normal: np.ndarray
    offset: float

    def __post_init__(self) -> None:
        normal = np.atleast_1d(np.asarray(self.normal, dtype=float))
        if normal.ndim != 1 or normal.size == 0:
            raise ValueError("normal must be a non-empty 1-D array")
        if np.allclose(normal, 0.0):
            raise ValueError("normal must be non-zero")
        object.__setattr__(self, "normal", normal)

    @property
    def dimension(self) -> int:
        """Dimensionality of the half-space."""
        return int(self.normal.size)

    def contains(self, demands: np.ndarray) -> np.ndarray:
        demands = self._as_matrix(demands, self.dimension)
        return demands @ self.normal >= self.offset


@dataclass(frozen=True)
class PointSetRegion(FailureRegion):
    """A finite set of isolated failure points, with an optional match tolerance.

    With ``tolerance == 0`` the region has zero measure under any continuous
    profile but non-zero measure under a discrete profile; with a positive
    tolerance each point becomes a small cube of half-width ``tolerance``,
    which is how arrays of near-point failure regions are reported in practice.
    """

    points: np.ndarray
    tolerance: float = 0.0

    def __post_init__(self) -> None:
        points = np.asarray(self.points, dtype=float)
        if points.ndim == 1:
            points = points.reshape(-1, 1)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("points must be a non-empty 2-D array")
        if self.tolerance < 0.0:
            raise ValueError(f"tolerance must be non-negative, got {self.tolerance}")
        object.__setattr__(self, "points", points)

    @property
    def dimension(self) -> int:
        """Dimensionality of the points."""
        return int(self.points.shape[1])

    def contains(self, demands: np.ndarray) -> np.ndarray:
        demands = self._as_matrix(demands, self.dimension)
        result = np.zeros(demands.shape[0], dtype=bool)
        for point in self.points:
            result |= np.all(np.abs(demands - point) <= self.tolerance, axis=1)
        return result


@dataclass(frozen=True)
class UnionRegion(FailureRegion):
    """The union of several component regions (possibly non-connected)."""

    components: tuple[FailureRegion, ...]

    def __init__(self, components: Sequence[FailureRegion]):
        flattened: list[FailureRegion] = []
        for component in components:
            if isinstance(component, UnionRegion):
                flattened.extend(component.components)
            else:
                flattened.append(component)
        if not flattened:
            raise ValueError("UnionRegion requires at least one component")
        object.__setattr__(self, "components", tuple(flattened))

    def contains(self, demands: np.ndarray) -> np.ndarray:
        demands = self._as_matrix(demands)
        result = np.zeros(demands.shape[0], dtype=bool)
        for component in self.components:
            result |= component.contains(demands)
        return result
