"""Sensitivity of the model's predictions to its assumptions (Section 6).

The paper defends three simplifying assumptions -- independent fault
introduction, non-overlapping failure regions, and a one-to-one mapping from
faults to failure regions -- and argues their violation does not invalidate
the model's practical conclusions.  This subpackage provides the machinery to
*check* those arguments quantitatively:

* :mod:`~repro.sensitivity.correlation` -- compare the independent-model
  predictions with simulation under positively / negatively correlated fault
  introduction (Section 6.1);
* :mod:`~repro.sensitivity.overlap` -- evaluate versions whose failure
  regions overlap in the demand space, where the PFD is the measure of the
  *union* of the regions present, and quantify how pessimistic the
  non-overlap sum is (Section 6.2);
* :mod:`~repro.sensitivity.robustness` -- convenience sweeps combining both.
"""

from repro.sensitivity.correlation import CorrelationSensitivityResult, correlation_sensitivity
from repro.sensitivity.overlap import OverlappingRegionModel, OverlapSensitivityResult
from repro.sensitivity.robustness import RobustnessReport, robustness_report

__all__ = [
    "CorrelationSensitivityResult",
    "OverlapSensitivityResult",
    "OverlappingRegionModel",
    "RobustnessReport",
    "correlation_sensitivity",
    "robustness_report",
]
