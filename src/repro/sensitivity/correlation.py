"""Sensitivity to the independent-fault-introduction assumption (Section 6.1).

The paper argues that if the probabilities of individual mistakes are low and
joint occurrences are much rarer still, the independence-based predictions
"should not be too far from reality", and that strong positive correlation can
be approximated by merging the correlated faults into one bigger fault.  The
functions here quantify both statements by simulating correlated development
processes and comparing the headline quantities with the independent model's
analytic predictions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fault_model import FaultModel
from repro.core.moments import pfd_moments
from repro.core.no_common_faults import prob_any_common_fault, prob_any_fault, risk_ratio
from repro.montecarlo.engine import MonteCarloEngine
from repro.stats.rng import ensure_rng
from repro.versions.correlated import CopulaDevelopmentProcess
from repro.versions.generation import DevelopmentProcess

__all__ = ["CorrelationSensitivityResult", "correlation_sensitivity", "copula_sensitivity_sweep"]


@dataclass(frozen=True)
class CorrelationSensitivityResult:
    """Independent-model predictions versus simulation under a correlated process.

    All ``predicted_*`` entries come from the analytic formulas that assume
    independence; all ``simulated_*`` entries come from Monte Carlo simulation
    of the supplied (correlated) development process.
    """

    replications: int
    predicted_mean_single: float
    simulated_mean_single: float
    predicted_mean_system: float
    simulated_mean_system: float
    predicted_std_single: float
    simulated_std_single: float
    predicted_std_system: float
    simulated_std_system: float
    predicted_risk_single: float
    simulated_risk_single: float
    predicted_risk_system: float
    simulated_risk_system: float
    predicted_risk_ratio: float
    simulated_risk_ratio: float

    def relative_error(self, quantity: str) -> float:
        """Relative error of the independent-model prediction for ``quantity``.

        ``quantity`` is one of ``mean_single``, ``mean_system``,
        ``std_single``, ``std_system``, ``risk_single``, ``risk_system`` or
        ``risk_ratio``.  Returns ``inf`` when the simulated value is zero but
        the prediction is not.
        """
        predicted = getattr(self, f"predicted_{quantity}")
        simulated = getattr(self, f"simulated_{quantity}")
        if simulated == 0.0:
            return 0.0 if predicted == 0.0 else float("inf")
        return abs(predicted - simulated) / abs(simulated)

    def summary(self) -> dict:
        """Dictionary of predicted / simulated / relative-error triples."""
        quantities = [
            "mean_single",
            "mean_system",
            "std_single",
            "std_system",
            "risk_single",
            "risk_system",
            "risk_ratio",
        ]
        return {
            quantity: {
                "predicted": getattr(self, f"predicted_{quantity}"),
                "simulated": getattr(self, f"simulated_{quantity}"),
                "relative_error": self.relative_error(quantity),
            }
            for quantity in quantities
        }


def correlation_sensitivity(
    model: FaultModel,
    process: DevelopmentProcess,
    replications: int = 20_000,
    rng: np.random.Generator | int | None = None,
) -> CorrelationSensitivityResult:
    """Compare independent-model predictions with simulation of a correlated process.

    Parameters
    ----------
    model:
        The fault-creation model whose *marginal* probabilities the correlated
        process preserves.
    process:
        The (correlated) development process to simulate, e.g. a
        :class:`~repro.versions.correlated.CopulaDevelopmentProcess`.
    replications:
        Number of simulated version pairs.
    rng:
        Random generator or seed.
    """
    generator = ensure_rng(rng)
    engine = MonteCarloEngine(model=model, process=process)
    result = engine.simulate_paired(replications, generator)
    single_moments = pfd_moments(model, 1)
    system_moments = pfd_moments(model, 2)
    return CorrelationSensitivityResult(
        replications=replications,
        predicted_mean_single=single_moments.mean,
        simulated_mean_single=result.single.mean_pfd(),
        predicted_mean_system=system_moments.mean,
        simulated_mean_system=result.system.mean_pfd(),
        predicted_std_single=single_moments.std,
        simulated_std_single=result.single.std_pfd(),
        predicted_std_system=system_moments.std,
        simulated_std_system=result.system.std_pfd(),
        predicted_risk_single=prob_any_fault(model),
        simulated_risk_single=result.single.prob_any_fault(),
        predicted_risk_system=prob_any_common_fault(model),
        simulated_risk_system=result.system.prob_any_fault(),
        predicted_risk_ratio=risk_ratio(model),
        simulated_risk_ratio=result.risk_ratio(),
    )


def copula_sensitivity_sweep(
    model: FaultModel,
    correlations: list[float],
    replications: int = 20_000,
    rng: np.random.Generator | int | None = None,
) -> list[tuple[float, CorrelationSensitivityResult]]:
    """Run :func:`correlation_sensitivity` for a list of copula correlations.

    Returns ``(correlation, result)`` pairs, one per requested correlation,
    with independent random substreams per correlation level.
    """
    generator = ensure_rng(rng)
    streams = generator.spawn(len(correlations))
    results: list[tuple[float, CorrelationSensitivityResult]] = []
    for correlation, stream in zip(correlations, streams):
        process = CopulaDevelopmentProcess(model=model, correlation=correlation)
        results.append(
            (correlation, correlation_sensitivity(model, process, replications, stream))
        )
    return results
