"""Sensitivity to the non-overlapping failure-region assumption (Section 6.2).

When the failure regions of different faults overlap, the PFD of a version is
the profile measure of the *union* of the regions present, which is at most
(and generally less than) the sum of the individual ``q_i``.  The paper argues
the sum is therefore a pessimistic approximation, acceptable for safety
assessment.  :class:`OverlappingRegionModel` evaluates versions exactly over a
finite demand space so the size of that pessimism can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fault_model import FaultModel
from repro.core.moments import pfd_moments
from repro.demandspace.profiles import GridProfile
from repro.demandspace.regions import FailureRegion
from repro.stats.empirical import EmpiricalDistribution
from repro.stats.rng import ensure_rng

__all__ = ["OverlappingRegionModel", "OverlapSensitivityResult"]


@dataclass(frozen=True)
class OverlapSensitivityResult:
    """Exact (union-based) statistics versus the non-overlap (sum-based) predictions."""

    replications: int
    sum_mean_single: float
    union_mean_single: float
    sum_mean_system: float
    union_mean_system: float
    sum_std_single: float
    union_std_single: float
    sum_std_system: float
    union_std_system: float

    @property
    def single_mean_pessimism(self) -> float:
        """Ratio of the sum-based to the union-based single-version mean (>= 1)."""
        if self.union_mean_single == 0.0:
            return 1.0 if self.sum_mean_single == 0.0 else float("inf")
        return self.sum_mean_single / self.union_mean_single

    @property
    def system_mean_pessimism(self) -> float:
        """Ratio of the sum-based to the union-based system mean (>= 1)."""
        if self.union_mean_system == 0.0:
            return 1.0 if self.sum_mean_system == 0.0 else float("inf")
        return self.sum_mean_system / self.union_mean_system


@dataclass(frozen=True)
class OverlappingRegionModel:
    """A fault population with explicit (possibly overlapping) failure regions.

    Parameters
    ----------
    probabilities:
        Fault-introduction probabilities ``p_i``.
    regions:
        The corresponding failure regions (may overlap arbitrarily).
    profile:
        A finite :class:`~repro.demandspace.profiles.GridProfile`; exact PFDs
        are computed by summation over its demand points.
    """

    probabilities: np.ndarray
    regions: tuple[FailureRegion, ...]
    profile: GridProfile

    def __init__(self, probabilities, regions, profile: GridProfile):
        probability_array = np.asarray(probabilities, dtype=float)
        region_tuple = tuple(regions)
        if probability_array.ndim != 1 or probability_array.size != len(region_tuple):
            raise ValueError("probabilities and regions must have the same length")
        if np.any((probability_array < 0.0) | (probability_array > 1.0)):
            raise ValueError("all probabilities must lie in [0, 1]")
        object.__setattr__(self, "probabilities", probability_array)
        object.__setattr__(self, "regions", region_tuple)
        object.__setattr__(self, "profile", profile)

    @property
    def n(self) -> int:
        """Number of potential faults."""
        return int(self.probabilities.size)

    def membership_matrix(self) -> np.ndarray:
        """Boolean matrix ``(demands, faults)`` of region membership over the grid."""
        demands = self.profile.space.points
        matrix = np.zeros((demands.shape[0], self.n), dtype=bool)
        for index, region in enumerate(self.regions):
            matrix[:, index] = region.contains(demands)
        return matrix

    def individual_impacts(self) -> np.ndarray:
        """The ``q_i`` of each fault in isolation (profile measure of its region)."""
        membership = self.membership_matrix()
        return membership.T @ self.profile.probabilities

    def as_nonoverlapping_model(self) -> FaultModel:
        """The (pessimistic) fault-creation model that ignores the overlaps."""
        return FaultModel(
            p=self.probabilities.copy(), q=self.individual_impacts(), strict=False
        )

    def exact_pfd(self, fault_present: np.ndarray) -> float:
        """Exact PFD of a version containing the given faults (measure of the union)."""
        fault_present = np.asarray(fault_present, dtype=bool)
        if fault_present.size != self.n:
            raise ValueError(f"fault_present must have length {self.n}")
        if not np.any(fault_present):
            return 0.0
        membership = self.membership_matrix()
        union = np.any(membership[:, fault_present], axis=1)
        return float(np.sum(self.profile.probabilities[union]))

    def simulate(
        self, replications: int, rng: np.random.Generator | int | None = None
    ) -> OverlapSensitivityResult:
        """Simulate developments and compare union-based with sum-based statistics."""
        if replications < 2:
            raise ValueError(f"replications must be at least 2, got {replications}")
        generator = ensure_rng(rng)
        membership = self.membership_matrix()
        impacts = membership.T @ self.profile.probabilities
        demand_probabilities = self.profile.probabilities

        first = generator.random((replications, self.n)) < self.probabilities
        second = generator.random((replications, self.n)) < self.probabilities
        common = first & second

        def union_pfds(fault_matrix: np.ndarray) -> np.ndarray:
            # For each replication, the PFD is the measure of the union of the
            # regions of the present faults: P(any present region covers X).
            covered = fault_matrix @ membership.T.astype(float)  # counts per demand
            return (covered > 0).astype(float) @ demand_probabilities

        def sum_pfds(fault_matrix: np.ndarray) -> np.ndarray:
            return fault_matrix @ impacts

        union_single = EmpiricalDistribution(union_pfds(first))
        union_system = EmpiricalDistribution(union_pfds(common))
        sum_model = self.as_nonoverlapping_model()
        single_moments = pfd_moments(sum_model, 1)
        system_moments = pfd_moments(sum_model, 2)
        # Simulated sum-based values are also available; the analytic ones are
        # used because they are exact for the sum model.
        del sum_pfds
        return OverlapSensitivityResult(
            replications=replications,
            sum_mean_single=single_moments.mean,
            union_mean_single=union_single.mean(),
            sum_mean_system=system_moments.mean,
            union_mean_system=union_system.mean(),
            sum_std_single=single_moments.std,
            union_std_single=union_single.std(),
            sum_std_system=system_moments.std,
            union_std_system=union_system.std(),
        )
