"""Combined robustness reporting for the Section 6 discussion.

A :class:`RobustnessReport` gathers, for one fault-creation model, how far the
independent / non-overlapping predictions move when (a) fault introduction is
correlated and (b) failure regions overlap, in a single structure suitable for
printing in benchmarks and examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fault_model import FaultModel
from repro.sensitivity.correlation import CorrelationSensitivityResult, correlation_sensitivity
from repro.stats.rng import ensure_rng
from repro.versions.correlated import CopulaDevelopmentProcess

__all__ = ["RobustnessReport", "robustness_report"]


@dataclass(frozen=True)
class RobustnessReport:
    """Sensitivity of the headline predictions to correlated fault introduction.

    Attributes
    ----------
    model:
        The fault-creation model under study.
    correlations:
        The copula correlation levels examined (0 reproduces independence).
    results:
        One :class:`CorrelationSensitivityResult` per correlation level.
    """

    model: FaultModel
    correlations: tuple[float, ...]
    results: tuple[CorrelationSensitivityResult, ...]

    def worst_relative_error(self, quantity: str) -> float:
        """Largest relative error of the independent prediction across the sweep."""
        return max(result.relative_error(quantity) for result in self.results)

    def rows(self) -> list[dict]:
        """One summary dictionary per correlation level, for tabular printing."""
        table = []
        for correlation, result in zip(self.correlations, self.results):
            table.append(
                {
                    "correlation": correlation,
                    "mean_system_predicted": result.predicted_mean_system,
                    "mean_system_simulated": result.simulated_mean_system,
                    "risk_ratio_predicted": result.predicted_risk_ratio,
                    "risk_ratio_simulated": result.simulated_risk_ratio,
                    "mean_system_error": result.relative_error("mean_system"),
                    "risk_ratio_error": result.relative_error("risk_ratio"),
                }
            )
        return table


def robustness_report(
    model: FaultModel,
    correlations: tuple[float, ...] = (-0.3, 0.0, 0.3, 0.6),
    replications: int = 20_000,
    rng: np.random.Generator | int | None = None,
) -> RobustnessReport:
    """Build a :class:`RobustnessReport` by sweeping copula correlation levels."""
    generator = ensure_rng(rng)
    streams = generator.spawn(len(correlations))
    results = []
    for correlation, stream in zip(correlations, streams):
        process = CopulaDevelopmentProcess(model=model, correlation=correlation)
        results.append(correlation_sensitivity(model, process, replications, stream))
    return RobustnessReport(model=model, correlations=tuple(correlations), results=tuple(results))
