"""repro: a reproduction of Popov & Strigini (DSN 2001).

"The Reliability of Diverse Systems: a Contribution using Modelling of the
Fault Creation Process" models how design faults arise in independently
developed software versions and what that implies for 1-out-of-2 diverse
(two-channel) systems.  This package implements the model, its analytical
results, the substrates needed to exercise it (demand spaces, version
generation, adjudication, Monte Carlo simulation, the Eckhardt-Lee /
Littlewood-Miller baselines), and assessor-facing utilities.

Quick start -- the unified evaluation API::

    import numpy as np
    from repro import FaultModel, evaluate, evaluate_batch

    model = FaultModel(p=np.array([0.05, 0.02, 0.01]),
                       q=np.array([1e-4, 5e-4, 2e-3]))

    # One dispatch path for every method: moments, exact, normal, bounds,
    # montecarlo, tail-quantile, ... (``repro methods`` lists them all).
    result = evaluate(model, "moments")
    print(result["mean_system"], result["std_system"])
    print(evaluate(model, "tail-quantile", level=0.999)["tail_quantile"])

    # Many methods on one model, optionally process-parallel (jobs=...),
    # each returning a typed, JSON-round-trippable EvaluationResult.
    for res in evaluate_batch(model, ["moments", "bounds",
                                      ("montecarlo", {"replications": 50_000})],
                              seed=7, jobs=2):
        print(res.method, res.metric_dict())

Registering a custom method makes it available everywhere at once -- the
CLI (``repro evaluate``/``repro methods``), study specs and
:func:`repro.evaluate`::

    from repro.api import OptionSpec, register_method

    @register_method("mean-only",
                     options=(OptionSpec("versions", "int", 2),),
                     description="just the system mean")
    def _mean_only(model, options, rng):
        from repro.core.moments import pfd_moments
        return {"mean": pfd_moments(model, int(options["versions"])).mean}

The lower-level facades remain available for direct use::

    from repro import OneOutOfTwoSystem, diversity_gain_summary

    system = OneOutOfTwoSystem(model)
    print(system.mean_pfd(), system.normal_bound(0.99))
    print(diversity_gain_summary(model).as_dict())

The subpackages map onto the paper as follows:

==============================  =====================================================
Subpackage                      Paper sections
==============================  =====================================================
:mod:`repro.api`                unified evaluation API (registry, typed results)
:mod:`repro.core`               Sections 2-5, Appendices A-B (the contribution)
:mod:`repro.stats`              probability machinery (Poisson-binomial, CLT, bounds)
:mod:`repro.demandspace`        Section 2.1, Fig. 2 (demands, failure regions)
:mod:`repro.versions`           Section 2.2, Section 6.1 (fault creation process)
:mod:`repro.adjudication`       Fig. 1 (1-out-of-2 and general M-out-of-N systems)
:mod:`repro.montecarlo`         simulation used to validate every analytic result
:mod:`repro.elm`                Eckhardt-Lee and Littlewood-Miller baselines
:mod:`repro.sensitivity`        Section 6 (assumption violations)
:mod:`repro.assessment`         Sections 5, 7 (assessor-facing outputs)
:mod:`repro.experiments`        Section 7 (synthetic Knight-Leveson check), scenarios
:mod:`repro.studies`            declarative parameter-sweep studies (cached, parallel)
:mod:`repro.service`            evaluation service (async micro-batching HTTP server)
==============================  =====================================================
"""

from repro.core import (
    DiversityGainSummary,
    FaultClass,
    FaultModel,
    OneOutOfTwoSystem,
    PfdMoments,
    SingleVersionSystem,
    confidence_bound_from_bound,
    confidence_bound_from_moments,
    diversity_gain_summary,
    exact_pfd_distribution,
    fault_count_distribution,
    mean_gain_factor,
    normal_approximation,
    pfd_moments,
    pmax_gain_table,
    prob_any_common_fault,
    prob_any_fault,
    prob_fault_free_pair,
    prob_fault_free_version,
    proportional_improvement_derivative,
    risk_ratio,
    risk_ratio_partial_derivative,
    single_fault_reversal_point,
    single_version_mean,
    single_version_std,
    std_gain_factor,
    success_ratio,
    two_fault_reversal_point,
    two_version_mean,
    two_version_std,
)
from repro.api import (
    BatchUnsupported,
    EvaluationRequest,
    EvaluationResult,
    MethodDefinition,
    MethodRegistry,
    OptionSpec,
    default_registry,
    evaluate,
    evaluate_batch,
    evaluate_sweep,
    register_batch,
    register_method,
)
from repro.montecarlo import MonteCarloEngine
from repro.stats import PoissonBinomial
from repro.versions import IndependentDevelopmentProcess

__version__ = "1.1.0"

__all__ = [
    "BatchUnsupported",
    "DiversityGainSummary",
    "EvaluationRequest",
    "EvaluationResult",
    "MethodDefinition",
    "MethodRegistry",
    "OptionSpec",
    "FaultClass",
    "FaultModel",
    "IndependentDevelopmentProcess",
    "MonteCarloEngine",
    "OneOutOfTwoSystem",
    "PfdMoments",
    "PoissonBinomial",
    "SingleVersionSystem",
    "__version__",
    "confidence_bound_from_bound",
    "confidence_bound_from_moments",
    "default_registry",
    "diversity_gain_summary",
    "evaluate",
    "evaluate_batch",
    "evaluate_sweep",
    "exact_pfd_distribution",
    "fault_count_distribution",
    "mean_gain_factor",
    "normal_approximation",
    "pfd_moments",
    "pmax_gain_table",
    "prob_any_common_fault",
    "prob_any_fault",
    "prob_fault_free_pair",
    "prob_fault_free_version",
    "proportional_improvement_derivative",
    "register_batch",
    "register_method",
    "risk_ratio",
    "risk_ratio_partial_derivative",
    "single_fault_reversal_point",
    "single_version_mean",
    "single_version_std",
    "std_gain_factor",
    "success_ratio",
    "two_fault_reversal_point",
    "two_version_mean",
    "two_version_std",
]
