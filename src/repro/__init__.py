"""repro: a reproduction of Popov & Strigini (DSN 2001).

"The Reliability of Diverse Systems: a Contribution using Modelling of the
Fault Creation Process" models how design faults arise in independently
developed software versions and what that implies for 1-out-of-2 diverse
(two-channel) systems.  This package implements the model, its analytical
results, the substrates needed to exercise it (demand spaces, version
generation, adjudication, Monte Carlo simulation, the Eckhardt-Lee /
Littlewood-Miller baselines), and assessor-facing utilities.

Quick start::

    import numpy as np
    from repro import FaultModel, OneOutOfTwoSystem, diversity_gain_summary

    model = FaultModel(p=np.array([0.05, 0.02, 0.01]),
                       q=np.array([1e-4, 5e-4, 2e-3]))
    system = OneOutOfTwoSystem(model)
    print(system.mean_pfd(), system.normal_bound(0.99))
    print(diversity_gain_summary(model).as_dict())

The subpackages map onto the paper as follows:

==============================  =====================================================
Subpackage                      Paper sections
==============================  =====================================================
:mod:`repro.core`               Sections 2-5, Appendices A-B (the contribution)
:mod:`repro.stats`              probability machinery (Poisson-binomial, CLT, bounds)
:mod:`repro.demandspace`        Section 2.1, Fig. 2 (demands, failure regions)
:mod:`repro.versions`           Section 2.2, Section 6.1 (fault creation process)
:mod:`repro.adjudication`       Fig. 1 (1-out-of-2 and general M-out-of-N systems)
:mod:`repro.montecarlo`         simulation used to validate every analytic result
:mod:`repro.elm`                Eckhardt-Lee and Littlewood-Miller baselines
:mod:`repro.sensitivity`        Section 6 (assumption violations)
:mod:`repro.assessment`         Sections 5, 7 (assessor-facing outputs)
:mod:`repro.experiments`        Section 7 (synthetic Knight-Leveson check), scenarios
==============================  =====================================================
"""

from repro.core import (
    DiversityGainSummary,
    FaultClass,
    FaultModel,
    OneOutOfTwoSystem,
    PfdMoments,
    SingleVersionSystem,
    confidence_bound_from_bound,
    confidence_bound_from_moments,
    diversity_gain_summary,
    exact_pfd_distribution,
    fault_count_distribution,
    mean_gain_factor,
    normal_approximation,
    pfd_moments,
    pmax_gain_table,
    prob_any_common_fault,
    prob_any_fault,
    prob_fault_free_pair,
    prob_fault_free_version,
    proportional_improvement_derivative,
    risk_ratio,
    risk_ratio_partial_derivative,
    single_fault_reversal_point,
    single_version_mean,
    single_version_std,
    std_gain_factor,
    success_ratio,
    two_fault_reversal_point,
    two_version_mean,
    two_version_std,
)
from repro.montecarlo import MonteCarloEngine
from repro.stats import PoissonBinomial
from repro.versions import IndependentDevelopmentProcess

__version__ = "1.0.0"

__all__ = [
    "DiversityGainSummary",
    "FaultClass",
    "FaultModel",
    "IndependentDevelopmentProcess",
    "MonteCarloEngine",
    "OneOutOfTwoSystem",
    "PfdMoments",
    "PoissonBinomial",
    "SingleVersionSystem",
    "__version__",
    "confidence_bound_from_bound",
    "confidence_bound_from_moments",
    "diversity_gain_summary",
    "exact_pfd_distribution",
    "fault_count_distribution",
    "mean_gain_factor",
    "normal_approximation",
    "pfd_moments",
    "pmax_gain_table",
    "prob_any_common_fault",
    "prob_any_fault",
    "prob_fault_free_pair",
    "prob_fault_free_version",
    "proportional_improvement_derivative",
    "risk_ratio",
    "risk_ratio_partial_derivative",
    "single_fault_reversal_point",
    "single_version_mean",
    "single_version_std",
    "std_gain_factor",
    "success_ratio",
    "two_fault_reversal_point",
    "two_version_mean",
    "two_version_std",
]
