"""The micro-batcher: concurrent requests become batched kernel calls.

Requests arriving while others are in flight rarely have *nothing* in
common: a sweep-style client (or several clients scanning the same model)
issues many requests that agree on everything except the batchable
``p_scale`` / ``q_scale`` transforms.  The batcher holds each batchable
request for a short window (``--batch-window-ms``) keyed by its batch-group
digest -- the same (model content, method, options, seed) grouping the study
runner uses for cache-miss sweep points -- and dispatches every group as
*one* :func:`repro.service.worker.evaluate_group` call: one stacked
convolution or one shared-demand Monte Carlo pass instead of N scalar
evaluations.

Grouping never changes *whether* an answer is right, only which equally
valid estimator produced it (see the README's CRN notes): a lone request, a
group whose kernel declined, and every non-batchable method dispatch through
the exact scalar :func:`repro.evaluate` path; duplicate requests inside a
group (same digest) are coalesced -- computed once, fanned out to every
waiter.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable

from repro import telemetry
from repro.service import worker
from repro.service.protocol import ServiceRequest
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["MicroBatcher"]


@dataclass
class _Job:
    request: ServiceRequest
    digest: str
    future: asyncio.Future
    #: Stamped at submit so the flush can report how long this job sat in
    #: the open batching window -- the latency the window *added*.
    submitted: float = 0.0
    #: The submitting request's trace id (contextvars do not survive into
    #: the flush task for any job but the window opener's).
    trace: str | None = None


@dataclass
class _PendingGroup:
    jobs: list[_Job] = field(default_factory=list)
    timer: asyncio.TimerHandle | None = None


class MicroBatcher:
    """Collects in-flight batchable requests and dispatches them per group.

    Parameters
    ----------
    run_in_pool:
        ``async (function, arguments) -> result``: how work reaches the
        executor (the server wraps ``loop.run_in_executor``).
    window_seconds:
        How long the *first* request of a group waits for companions.  The
        window bounds added latency; it does not delay non-batchable
        requests, which dispatch immediately.
    batch:
        ``False`` disables grouping entirely (``repro serve --no-batch``):
        every request takes the scalar path, byte-identical to
        :func:`repro.evaluate`.
    on_group:
        Optional ``(group_size, unique, batched)`` callback invoked per
        dispatch, feeding the server's ``/metrics`` counters.
    on_fallback:
        Optional zero-argument callback invoked when a batched group call
        failed and the group was re-dispatched point by point (the
        ``group_fallbacks`` metric).
    metrics:
        Optional :class:`~repro.telemetry.metrics.MetricsRegistry` receiving
        the ``batch_window_wait_seconds`` histogram (how long each batched
        job sat in its window before dispatch).
    """

    def __init__(
        self,
        run_in_pool: Callable[..., Awaitable[Any]],
        *,
        window_seconds: float = 0.005,
        batch: bool = True,
        on_group: Callable[[int, int, bool], None] | None = None,
        on_fallback: Callable[[], None] | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if window_seconds < 0.0:
            raise ValueError(f"window_seconds must be non-negative, got {window_seconds}")
        self._run = run_in_pool
        self.window_seconds = window_seconds
        self.batch = batch
        self._on_group = on_group
        self._on_fallback = on_fallback
        self._metrics = metrics
        self._pending: dict[str, _PendingGroup] = {}
        self._flush_tasks: set[asyncio.Task] = set()

    @property
    def pending_requests(self) -> int:
        """Requests currently waiting in an open batching window."""
        return sum(len(group.jobs) for group in self._pending.values())

    async def submit(self, request: ServiceRequest, digest: str) -> tuple[dict, dict]:
        """Serve one request; returns ``(wire record, served metadata)``.

        Batchable requests (method registered a kernel, batching enabled)
        wait up to the window for groupmates; everything else dispatches
        immediately on the scalar path.
        """
        if not (self.batch and request.supports_batch):
            return await self._dispatch_single(request, group_size=1)
        loop = asyncio.get_running_loop()
        job = _Job(
            request=request,
            digest=digest,
            future=loop.create_future(),
            submitted=time.perf_counter(),
            trace=telemetry.current_trace_id(),
        )
        key = request.group_key()
        group = self._pending.get(key)
        if group is None:
            group = self._pending[key] = _PendingGroup()
            group.timer = loop.call_later(self.window_seconds, self._spawn_flush, key)
        group.jobs.append(job)
        return await job.future

    async def flush_all(self) -> None:
        """Dispatch every open group immediately (shutdown and tests)."""
        await asyncio.gather(*(self._flush(key) for key in list(self._pending)))

    def _spawn_flush(self, key: str) -> None:
        task = asyncio.get_running_loop().create_task(self._flush(key))
        # Keep a strong reference: the loop only holds weak ones.
        self._flush_tasks.add(task)
        task.add_done_callback(self._flush_tasks.discard)

    async def _dispatch_single(
        self, request: ServiceRequest, group_size: int
    ) -> tuple[dict, dict]:
        record = await self._run(worker.evaluate_single, request.single_arguments())
        if self._on_group is not None:
            self._on_group(group_size, 1, False)
        return record, {"batched": False, "group_size": group_size}

    async def _flush(self, key: str) -> None:
        group = self._pending.pop(key, None)
        if group is None:
            return
        if group.timer is not None:
            group.timer.cancel()
        jobs = group.jobs
        self._record_window_waits(jobs)
        # Coalesce duplicates (same request digest) into one variation
        # slot, preserving first-seen order -- the batched kernel sees
        # each distinct point once and every waiter gets its result.
        slot_by_digest: dict[str, int] = {}
        variations: list[dict] = []
        positions: list[int] = []
        for job in jobs:
            slot = slot_by_digest.get(job.digest)
            if slot is None:
                slot = slot_by_digest[job.digest] = len(variations)
                variations.append(
                    {"p_scale": job.request.p_scale, "q_scale": job.request.q_scale}
                )
            positions.append(slot)
        if len(variations) == 1:
            # A single distinct point gains nothing from the kernel and
            # must not depend on how many duplicates asked for it.
            try:
                record, meta = await self._dispatch_single(
                    jobs[0].request, group_size=len(jobs)
                )
            except Exception as error:  # noqa: BLE001 - fanned out to every waiter
                self._fan_exception(jobs, error)
                return
            self._fan_result(jobs, record, meta)
            return
        try:
            # The flush task inherits the window opener's context (the timer
            # was scheduled from the first submit), so this span lands in the
            # first job's trace; every job's own trace still gets its
            # window-wait event above.
            with telemetry.span(
                "batcher.dispatch",
                group_size=len(jobs),
                unique=len(variations),
                method=jobs[0].request.method,
            ):
                used_batch, records = await self._run(
                    worker.evaluate_group, jobs[0].request.group_arguments(tuple(variations))
                )
            if len(records) != len(variations):
                raise TypeError(
                    f"group evaluation returned {len(records)} records "
                    f"for {len(variations)} variations"
                )
        except Exception:  # noqa: BLE001 - isolated below, point by point
            # Group isolation: one bad point (or one crashed group job) must
            # not poison its groupmates.  Re-dispatch every distinct point on
            # the scalar path -- byte-identical to repro.evaluate, the same
            # contract as a declined kernel -- so only the genuinely failing
            # points answer with errors.
            if self._on_fallback is not None:
                self._on_fallback()
            await self._fallback_scalar(jobs, positions)
            return
        meta = {"batched": used_batch, "group_size": len(jobs)}
        if self._on_group is not None:
            self._on_group(len(jobs), len(variations), used_batch)
        for job, slot in zip(jobs, positions):
            if not job.future.done():
                job.future.set_result((records[slot], meta))

    async def _fallback_scalar(self, jobs: list[_Job], positions: list[int]) -> None:
        """Per-point scalar re-dispatch after a failed group call.

        Each distinct point is evaluated once (duplicates still coalesce);
        a point whose scalar evaluation also fails answers only its own
        waiters with that error.
        """
        by_slot: dict[int, list[_Job]] = {}
        for job, slot in zip(jobs, positions):
            by_slot.setdefault(slot, []).append(job)

        async def serve_slot(slot_jobs: list[_Job]) -> None:
            try:
                record = await self._run(
                    worker.evaluate_single, slot_jobs[0].request.single_arguments()
                )
            except Exception as error:  # noqa: BLE001 - this slot's waiters only
                self._fan_exception(slot_jobs, error)
                return
            meta = {"batched": False, "group_size": len(jobs), "fallback": True}
            self._fan_result(slot_jobs, record, meta)

        await asyncio.gather(*(serve_slot(slot_jobs) for slot_jobs in by_slot.values()))
        if self._on_group is not None:
            self._on_group(len(jobs), len(by_slot), False)

    def _record_window_waits(self, jobs: list[_Job]) -> None:
        """Report how long each job sat in the batching window.

        Measured at flush (submit-to-dispatch), attributed to each job's own
        trace -- the interval cannot wrap a ``with`` block, hence
        :func:`telemetry.record`.
        """
        now = time.perf_counter()
        tracing = telemetry.enabled()
        for job in jobs:
            waited = now - job.submitted
            if self._metrics is not None:
                self._metrics.observe("batch_window_wait_seconds", waited)
            if tracing:
                telemetry.record(
                    "batcher.window_wait",
                    waited,
                    trace_id=job.trace or telemetry.new_trace_id(),
                    group_size=len(jobs),
                )

    @staticmethod
    def _fan_result(jobs: list[_Job], record: dict, meta: dict) -> None:
        for job in jobs:
            if not job.future.done():
                job.future.set_result((record, meta))

    @staticmethod
    def _fan_exception(jobs: list[_Job], error: BaseException) -> None:
        for job in jobs:
            if not job.future.done():
                job.future.set_exception(error)
