"""Execution functions the service worker pool runs.

Everything here is module-level and takes one picklable argument tuple, so
the same functions serve the in-process thread executor (``--workers 0``)
and the process pool (``--workers N``); worker processes re-import the
default method registry, exactly like the study runner's workers.

The contract that makes the service trustworthy: every record produced here
is **byte-identical** to what the public API returns for the same inputs --

* :func:`evaluate_single` is ``repro.evaluate(model.rescaled(p, q), method,
  seed=seed, options=options)``, nothing more;
* :func:`evaluate_group` matches :func:`repro.evaluate_sweep` for the same
  ``(model, method, variations, seed)``: the batched kernel sees the whole
  variation set with one shared stream seeded from the request seed
  (common-random-numbers semantics for stochastic methods), and when the
  kernel declines (:class:`~repro.api.registry.BatchUnsupported`) every
  member falls back to exactly the :func:`evaluate_single` path, so an
  unbatchable group is indistinguishable from never having been grouped.
"""

from __future__ import annotations

import time

import numpy as np

from repro import faults, telemetry
from repro.api.evaluate import evaluate as api_evaluate
from repro.api.evaluate import evaluate_batch as api_evaluate_batch
from repro.api.registry import BatchUnsupported, default_registry
from repro.api.results import EvaluationResult
from repro.core.fault_model import FaultModel
from repro.telemetry.metrics import subtract_snapshots

__all__ = ["evaluate_batch_endpoint", "evaluate_group", "evaluate_single", "run_job"]


def run_job(arguments: tuple) -> tuple:
    """Run one pool job under telemetry; the server's executor entry point.

    ``arguments`` is ``(function, function_arguments, trace_id, parent_span,
    collect)`` (the PR-7 four-element form without ``parent_span`` is still
    accepted).  The wrapper exists because neither trace context nor metrics
    cross the executor boundary on their own (``run_in_executor`` does not
    propagate contextvars, and a pool worker's registry lives in another
    process):

    * the request's trace id and enclosing span id ride in explicitly and
      scope a ``worker.kernel`` span, so worker-side events land in the
      right trace *and* nest under the server-side span that dispatched the
      job in a stitched fleet trace;
    * with ``collect`` (process pools), the delta of this process's global
      metrics registry across the job rides back with the result, for the
      server to merge -- in thread mode the observations are already in the
      server process's registry and ``None`` comes back instead.

    Returns ``(result, metrics_delta_or_None)``.  Everything in the job
    tuple is picklable (module-level function + plain data), so the same
    wrapper serves thread and process executors.
    """
    if len(arguments) == 4:
        function, function_arguments, trace_id, collect = arguments
        parent_span = None
    else:
        function, function_arguments, trace_id, parent_span, collect = arguments
    registry = telemetry.global_registry()
    before = registry.snapshot() if collect else None
    start = time.perf_counter()
    try:
        with telemetry.span(
            "worker.kernel",
            trace_id=trace_id,
            parent_id=parent_span,
            job=function.__name__,
        ):
            result = function(function_arguments)
    finally:
        registry.observe(
            "kernel_seconds", time.perf_counter() - start, trace_id=trace_id
        )
    delta = subtract_snapshots(registry.snapshot(), before) if collect else None
    return result, delta


def evaluate_single(arguments: tuple) -> dict:
    """One scalar evaluation: the direct ``repro.evaluate`` path."""
    faults.hit("worker.crash")
    faults.hit("worker.evaluate")
    model_data, method, options, seed, p_scale, q_scale = arguments
    model = FaultModel.from_dict(model_data).rescaled(p_scale, q_scale)
    return api_evaluate(model, method, seed=seed, options=options).to_dict()


def evaluate_group(arguments: tuple) -> tuple[bool, list[dict]]:
    """One micro-batched group: the batched kernel over the whole variation set.

    Returns ``(used_batch, records)`` with one wire record per variation, in
    order.  ``used_batch`` is False when the method's kernel declined the
    sweep and every member was evaluated on the scalar path instead.
    """
    faults.hit("worker.crash")
    faults.hit("worker.group")
    model_data, method, options, variations, seed = arguments
    registry = default_registry()
    definition = registry.get(method)
    resolved = registry.resolve_options(method, options)
    model = FaultModel.from_dict(model_data)
    rng = None
    if definition.requires_seed:
        # The shared group stream: identical to evaluate_sweep's derivation
        # for an integer seed (Generator(SeedSequence([seed]))).
        rng = np.random.default_rng(np.random.SeedSequence([seed]))
    coerced = tuple(
        {"p_scale": float(variation["p_scale"]), "q_scale": float(variation["q_scale"])}
        for variation in variations
    )
    start = time.perf_counter()
    try:
        rows = list(definition.evaluate_batch(model, coerced, resolved, rng))
    except BatchUnsupported:
        return False, [
            evaluate_single(
                (model_data, method, options, seed, variation["p_scale"], variation["q_scale"])
            )
            for variation in coerced
        ]
    elapsed = time.perf_counter() - start
    if len(rows) != len(coerced):
        raise TypeError(
            f"batched evaluator of {method!r} returned {len(rows)} records "
            f"for {len(coerced)} variations"
        )
    entropy = (seed,) if definition.requires_seed else None
    return True, [
        EvaluationResult(
            method=method,
            options=resolved,
            metrics=dict(row),
            seed_entropy=entropy,
            elapsed_seconds=elapsed / max(len(rows), 1),
        ).to_dict()
        for row in rows
    ]


def evaluate_batch_endpoint(arguments: tuple) -> list[dict]:
    """The ``/v1/evaluate/batch`` job: one ``repro.evaluate_batch`` call.

    Per-request ``(seed, index)`` streams and duplicate-request coalescing
    are ``evaluate_batch``'s own semantics; the service adds nothing, so the
    endpoint is byte-identical to calling the function directly.
    ``stream_indices`` (sent by the cluster router for fanned-out
    sub-batches) passes straight through, keeping each request's stream tied
    to its position in the *original* batch.
    """
    model_data, requests, seed, stream_indices = arguments
    model = FaultModel.from_dict(model_data)
    results = api_evaluate_batch(
        model, requests, seed=seed, stream_indices=stream_indices
    )
    return [result.to_dict() for result in results]
