"""The asyncio evaluation server behind ``repro serve``.

A minimal, dependency-free HTTP/1.1 server on ``asyncio`` streams -- no web
framework, no third-party packages -- exposing:

===========================  ========================================================
Endpoint                     Meaning
===========================  ========================================================
``POST /v1/evaluate``        one evaluation (micro-batched with concurrent traffic)
``POST /v1/evaluate/batch``  one ``repro.evaluate_batch`` call, shipped as one job
``GET /v1/methods``          the method registry's schemas (``repro methods`` as JSON)
``GET /v1/cache/<digest>``   the shared cache surface: this shard's cached entry
                             for a digest (local tiers only), or 404
``PUT /v1/cache/<digest>``   push a study-shaped entry into this shard's cache
``GET /healthz``             liveness: ``{"status": "ok", ...}``
``GET /v1/health/peers``     the shared health-view surface (role, status and an
                             empty view table: routers own ejection state)
``GET /metrics``             counters, gauges and latency histograms (JSON; the
                             Prometheus text exposition via ``?format=prom``)
===========================  ========================================================

The ``/v1/cache`` surface is the cluster's shared cache tier
(:mod:`repro.cluster`): shards started with ``--cache-peer URL`` probe each
other's entries after a local LRU + disk miss, so a shard warmed by studies
or earlier traffic answers for a cold one without recomputation.

Request handling is fully asynchronous: each connection is a task, each
``/v1/evaluate`` awaits the micro-batcher, and every evaluation runs on an
executor (process pool with ``workers >= 1``, a thread pool in-process
otherwise), so slow evaluations never stall the accept loop, ``/healthz`` or
``/metrics``.

Responses are JSON; invalid input is HTTP 400 with a one-line ``error``
message (the same messages the CLI prints), unknown paths 404, wrong verbs
405, oversized bodies 413 and evaluation failures 500.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import string
import sys
import threading
import time
from typing import Any, Sequence
from urllib.parse import parse_qs

from repro import telemetry
from repro.api.registry import default_registry
from repro.cache import ResultCache
from repro.service.batcher import MicroBatcher
from repro.service.cache import RemoteCacheClient, ResponseCache, record_from_entry
from repro.service.http import read_request, write_response
from repro.service.protocol import (
    parse_batch_payload,
    parse_evaluate_payload,
    parse_timeout_ms,
)
from repro.service import worker
from repro.telemetry.metrics import (
    MetricsRegistry,
    histogram_summary,
    merge_snapshots,
    render_prometheus,
)

__all__ = ["EvaluationServer", "ServerHandle", "WorkerCrashError", "start_in_background"]

#: Every PR-6 counter, pre-registered so ``/metrics`` always exposes the
#: full catalogue (at zero) from the first scrape -- the schema test pins
#: these names; removals are breaking, additions are not.
_COUNTER_NAMES = (
    "requests_total",
    "errors_total",
    "evaluate_requests",
    "batch_endpoint_requests",
    "batch_endpoint_evaluations",
    "evaluations_computed",
    "dispatched_groups",
    "batched_groups",
    "batched_group_requests",
    "coalesced_requests",
    "cache_hits_lru",
    "cache_hits_disk",
    "cache_misses",
    "group_fallbacks",
    "pool_restarts",
    "retried_jobs",
    "poison_jobs",
    "rejected_saturated",
    "rejected_draining",
    "deadline_timeouts",
    "cache_hits_remote",
    "remote_cache_probes",
    "cache_endpoint_hits",
    "cache_endpoint_misses",
    "cache_endpoint_stores",
)

#: Latency histograms the server always populates (cheap fixed-bucket
#: observations; the JSON exposition derives p50/p95/p99 from the buckets).
_HISTOGRAM_NAMES = (
    "request_seconds",
    "queue_wait_seconds",
    "batch_window_wait_seconds",
)

_HEX_DIGITS = frozenset(string.hexdigits.lower())


class WorkerCrashError(RuntimeError):
    """A request that crashed the worker pool on its retry too.

    Raised after the pool has already been rebuilt once for the same job --
    the poison-job guard: one crashing request costs at most two pool
    restarts and then fails *typed*, instead of restart-looping the pool.
    """


class EvaluationServer:
    """The evaluation service: batcher + cache + executor + HTTP front.

    Parameters
    ----------
    workers:
        Process-pool size for evaluations; ``0`` evaluates in server-side
        threads (no pickling, fine for tests and small deployments).
    batch_window_ms:
        Micro-batching window: how long the first request of a batchable
        group waits for companions (the added latency ceiling).
    batch:
        ``False`` disables micro-batching; every request takes the scalar
        :func:`repro.evaluate` path.
    cache_dir:
        Optional disk tier for the response cache (the shared
        content-addressed :class:`~repro.cache.ResultCache` format).
    lru_size:
        In-process response-cache capacity (entries).
    cache_peers:
        Base URLs of peer shards whose ``/v1/cache/<digest>`` surface is
        probed after a local LRU + disk miss (``repro serve --cache-peer``).
        A hit back-fills the local tiers, so a warm peer answers for this
        shard exactly once per key; a dead or slow peer is just a miss.
    max_inflight:
        Admission control: how many evaluation requests may be *running*
        concurrently.  Further requests queue.
    max_queue:
        How many admitted requests may *wait* for a running slot before the
        server starts answering 429 with ``Retry-After`` (backpressure).
    request_timeout_ms:
        Server-wide default deadline per evaluation request; a request's own
        ``timeout_ms`` overrides it.  ``None`` disables the default.
    slow_request_ms:
        When set, any request whose total handling time exceeds this many
        milliseconds is logged to stderr with its trace id (``repro serve
        --slow-request-ms``).  ``None`` disables the log.
    """

    def __init__(
        self,
        *,
        workers: int = 0,
        batch_window_ms: float = 5.0,
        batch: bool = True,
        cache_dir: str | None = None,
        lru_size: int = 1024,
        cache_peers: Sequence[str] = (),
        max_inflight: int = 64,
        max_queue: int = 256,
        request_timeout_ms: float | None = None,
        slow_request_ms: float | None = None,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if batch_window_ms < 0.0:
            raise ValueError(f"batch_window_ms must be >= 0, got {batch_window_ms}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if request_timeout_ms is not None and request_timeout_ms <= 0.0:
            raise ValueError(
                f"request_timeout_ms must be positive or None, got {request_timeout_ms}"
            )
        if slow_request_ms is not None and slow_request_ms < 0.0:
            raise ValueError(
                f"slow_request_ms must be non-negative or None, got {slow_request_ms}"
            )
        self.workers = workers
        self.batch_window_ms = batch_window_ms
        self.batch = batch
        self.cache_dir = cache_dir
        self.cache_peers = tuple(cache_peers)
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.request_timeout_ms = request_timeout_ms
        self.slow_request_ms = slow_request_ms
        self.cache = ResponseCache(
            max_entries=lru_size,
            disk=ResultCache(cache_dir) if cache_dir is not None else None,
            remote=RemoteCacheClient(self.cache_peers) if self.cache_peers else None,
        )
        self._executor = None
        self._started = time.time()
        self._draining = False
        # Open client connections (kept alive between requests); closed at
        # aclose() so parked handler tasks end via EOF, not cancellation.
        self._connections: set[asyncio.StreamWriter] = set()
        self._running = 0
        self._queued = 0
        # Created lazily per event loop: asyncio primitives bind to the loop
        # that first awaits them, and tests drive one server instance
        # through several short-lived loops.
        self._slots: asyncio.Semaphore | None = None
        self._slots_loop = None
        # This server's own instruments, plus an accumulator for the metric
        # deltas pool workers ship back with their job results.  ``metrics``
        # is the same registry (counters and gauges read by subscript, the
        # PR-6 dict interface).
        self.registry = MetricsRegistry()
        self.registry.register_counters(_COUNTER_NAMES)
        self.registry.gauge("max_group_size")
        for name in _HISTOGRAM_NAMES:
            self.registry.histogram(name)
        self.metrics = self.registry
        self._worker_metrics = MetricsRegistry()
        self.batcher = MicroBatcher(
            self._run_in_pool,
            window_seconds=batch_window_ms / 1000.0,
            batch=batch,
            on_group=self._record_group,
            on_fallback=self._record_fallback,
            metrics=self.registry,
        )

    # ----------------------------------------------------------------- #
    # Executor plumbing
    # ----------------------------------------------------------------- #
    def _ensure_executor(self):
        if self._executor is None:
            if self.workers >= 1:
                from concurrent.futures import ProcessPoolExecutor

                self._executor = ProcessPoolExecutor(max_workers=self.workers)
            else:
                from concurrent.futures import ThreadPoolExecutor

                self._executor = ThreadPoolExecutor(
                    max_workers=4, thread_name_prefix="repro-eval"
                )
        return self._executor

    def _discard_executor(self, executor) -> None:
        """Drop a broken executor (identity-checked: concurrent failures of
        the same pool must count one restart, not one per in-flight job)."""
        if self._executor is executor:
            self._executor = None
            self.registry.inc("pool_restarts")
        executor.shutdown(wait=False, cancel_futures=True)

    async def _run_in_pool(self, function, arguments):
        from concurrent.futures import BrokenExecutor

        # Jobs cross the executor as a run_job envelope carrying the trace
        # id and enclosing span id out (contextvars stop at the executor
        # boundary) and, for process pools, the worker's metrics delta back.
        job = (
            function,
            arguments,
            telemetry.current_trace_id(),
            telemetry.current_span_id(),
            self.workers >= 1,
        )
        loop = asyncio.get_running_loop()
        for attempt in (0, 1):
            executor = self._ensure_executor()
            try:
                result, delta = await loop.run_in_executor(executor, worker.run_job, job)
                if delta is not None:
                    self._worker_metrics.merge(delta)
                return result
            except BrokenExecutor as error:
                # A worker process died (BrokenProcessPool) mid-job.  Rebuild
                # the pool and retry the job once -- results are
                # deterministic, so a retry is safe and byte-identical.
                self._discard_executor(executor)
                if attempt:
                    self.registry.inc("poison_jobs")
                    raise WorkerCrashError(
                        "evaluation crashed the worker pool twice; "
                        "the request was not retried again"
                    ) from error
                self.registry.inc("retried_jobs")

    def _slot_semaphore(self) -> asyncio.Semaphore:
        loop = asyncio.get_running_loop()
        if self._slots is None or self._slots_loop is not loop:
            self._slots = asyncio.Semaphore(self.max_inflight)
            self._slots_loop = loop
        return self._slots

    def _record_group(self, group_size: int, unique: int, batched: bool) -> None:
        self.registry.inc("dispatched_groups")
        self.registry.inc("evaluations_computed", unique)
        self.registry.inc("coalesced_requests", group_size - unique)
        self.registry.set_max("max_group_size", group_size)
        if batched and group_size >= 2:
            self.registry.inc("batched_groups")
            self.registry.inc("batched_group_requests", group_size)

    def _record_fallback(self) -> None:
        self.registry.inc("group_fallbacks")

    # ----------------------------------------------------------------- #
    # Endpoint logic
    # ----------------------------------------------------------------- #
    async def _in_io_thread(self, function, *arguments):
        """Run blocking cache I/O on the default thread executor.

        The call runs under a copy of the caller's context, so cache-tier
        spans emitted inside keep the request's trace id (plain
        ``run_in_executor`` drops contextvars at the thread boundary).
        """
        loop = asyncio.get_running_loop()
        context = contextvars.copy_context()
        return await loop.run_in_executor(None, lambda: context.run(function, *arguments))

    async def _serve_evaluate(self, payload) -> dict:
        request = parse_evaluate_payload(payload)
        self.registry.inc("evaluate_requests")
        digest = request.digest()
        with telemetry.span("server.cache_probe") as probe:
            record = self.cache.get_local(digest)
            if record is not None:
                probe.set(tier="lru")
                self.registry.inc("cache_hits_lru")
                return {"result": record, "served": {"cached": "lru", "batched": False, "group_size": 0}}
            # Disk-tier file I/O runs on the default thread executor: the
            # event loop (accept loop, /healthz, in-flight responses) must
            # never wait on a slow disk.
            metrics = None
            if self.cache.disk is not None:
                metrics = await self._in_io_thread(self.cache.get_disk, digest)
            if metrics is not None:
                probe.set(tier="disk")
                self.registry.inc("cache_hits_disk")
                record = request.result_record(metrics)
                self.cache.put_local(digest, record)
                return {"result": record, "served": {"cached": "disk", "batched": False, "group_size": 0}}
            # The shared remote tier: peer shards' /v1/cache surface, probed
            # only after both local tiers missed (network I/O, also off the
            # event loop).  A hit back-fills LRU and disk so each key is
            # fetched from a peer at most once.
            if self.cache.remote is not None:
                self.registry.inc("remote_cache_probes")
                metrics = await self._in_io_thread(self.cache.get_remote, digest)
            if metrics is not None:
                probe.set(tier="remote")
                self.registry.inc("cache_hits_remote")
                record = request.result_record(metrics)
                self.cache.put_local(digest, record)
                if self.cache.disk is not None:
                    await self._in_io_thread(
                        self.cache.store_disk, digest, record, request.payload()
                    )
                return {"result": record, "served": {"cached": "remote", "batched": False, "group_size": 0}}
            probe.set(tier="miss")
        self.registry.inc("cache_misses")
        record, meta = await self.batcher.submit(request, digest)
        self.cache.put_local(digest, record)
        if self.cache.disk is not None:
            await self._in_io_thread(
                self.cache.store_disk, digest, record, request.payload()
            )
        return {"result": record, "served": {"cached": None, **meta}}

    async def _serve_batch(self, payload) -> dict:
        model_data, requests, seed, stream_indices = parse_batch_payload(payload)
        self.registry.inc("batch_endpoint_requests")
        self.registry.inc("batch_endpoint_evaluations", len(requests))
        records = await self._run_in_pool(
            worker.evaluate_batch_endpoint, (model_data, requests, seed, stream_indices)
        )
        return {"results": records, "served": {"cached": None, "requests": len(requests)}}

    def _serve_methods(self) -> dict:
        return {"methods": [definition.schema() for definition in default_registry()]}

    # ----------------------------------------------------------------- #
    # The shared cache surface (the cluster's remote tier)
    # ----------------------------------------------------------------- #
    async def _serve_cache_get(self, digest: str) -> tuple[int, dict]:
        """``GET /v1/cache/<digest>``: this shard's entry, local tiers only.

        The LRU is probed on the event loop (cheap dict access), the disk
        tier on the I/O executor.  Peers are deliberately *not* probed --
        two shards pointing at each other must not ping-pong a miss -- and
        no admission control applies: peers keep reading from a draining or
        saturated shard.
        """
        record = self.cache.get_local(digest)
        if record is not None:
            self.registry.inc("cache_endpoint_hits")
            return 200, {"digest": digest, "metrics": dict(record["metrics"])}
        if self.cache.disk is not None:
            entry = await self._in_io_thread(self.cache.disk.load, digest)
            if entry is not None:
                self.registry.inc("cache_endpoint_hits")
                return 200, {"digest": digest, **entry}
        self.registry.inc("cache_endpoint_misses")
        return 404, {"error": f"no cache entry for digest {digest[:12]}...", "code": "cache_miss"}

    async def _serve_cache_put(self, digest: str, body: bytes) -> tuple[int, dict]:
        """``PUT /v1/cache/<digest>``: accept a pushed study-shaped entry.

        The LRU fills when the entry's payload is rich enough to rebuild a
        wire record (:func:`record_from_entry`); the disk tier fills when it
        exists and the entry carries its payload.  The pushed bytes are
        trusted exactly as far as a disk entry would be -- the digest keys
        them, the content-addressed scheme makes collisions a non-concern.
        """
        try:
            entry = json.loads(body or b"null")
        except json.JSONDecodeError as error:
            return 400, {"error": f"cache entry is not valid JSON: {error}", "code": "bad_request"}
        if not isinstance(entry, dict) or not isinstance(entry.get("metrics"), dict):
            return 400, {
                "error": "a cache entry needs a 'metrics' object (study entry shape)",
                "code": "bad_request",
            }
        stored = False
        record = record_from_entry(entry)
        if record is not None:
            self.cache.put_local(digest, record)
            stored = True
        if self.cache.disk is not None and isinstance(entry.get("payload"), dict):
            await self._in_io_thread(
                self.cache.disk.store,
                digest,
                {"digest": digest, "payload": dict(entry["payload"]), "metrics": dict(entry["metrics"])},
            )
            stored = True
        if stored:
            self.registry.inc("cache_endpoint_stores")
        return 200, {"digest": digest, "stored": stored}

    @staticmethod
    def _cache_digest(path: str) -> str | None:
        """The digest component of a ``/v1/cache/<digest>`` path, validated."""
        digest = path[len("/v1/cache/"):]
        if len(digest) == 64 and set(digest) <= _HEX_DIGITS:
            return digest
        return None

    def _metrics_snapshot(self) -> dict:
        """One consistent registry cut, merged with worker-side observations.

        Operational gauges (queue depth, inflight, LRU size, ...) are set
        into the registry synchronously on the event loop and then *every*
        value is read in a single locked pass -- no counter in one response
        can be newer than a gauge next to it.  Worker metrics arrive from
        two places with disjoint instrument names: the process-global
        registry (thread-mode kernels and cache tiers run in this process)
        and the accumulated deltas pool workers shipped back.
        """
        self.registry.set_gauge("uptime_seconds", round(time.time() - self._started, 3))
        self.registry.set_gauge("pending_requests", self.batcher.pending_requests)
        self.registry.set_gauge("running_requests", self._running)
        self.registry.set_gauge("queued_requests", self._queued)
        self.registry.set_gauge("draining", self._draining)
        self.registry.set_gauge("lru_entries", len(self.cache))
        self.registry.set_gauge("batch_enabled", self.batch)
        self.registry.set_gauge("batch_window_ms", self.batch_window_ms)
        self.registry.set_gauge("workers", self.workers)
        self.registry.set_gauge("max_inflight", self.max_inflight)
        self.registry.set_gauge("max_queue", self.max_queue)
        self.registry.set_gauge("request_timeout_ms", self.request_timeout_ms)
        self.registry.set_gauge("cache_dir", self.cache_dir)
        telemetry.set_process_gauges(self.registry)
        return merge_snapshots(
            self.registry.snapshot(),
            telemetry.global_registry().snapshot(),
            self._worker_metrics.snapshot(),
        )

    def _serve_metrics(self) -> dict:
        """The ``/metrics`` JSON body: the PR-6 flat schema plus histograms.

        Counters and gauges stay flat top-level keys (a strict superset of
        the old hand-rolled dict); histograms are additive under one new
        ``"histograms"`` key, each with derived p50/p95/p99.
        """
        snapshot = self._metrics_snapshot()
        body: dict[str, Any] = {**snapshot["counters"], **snapshot["gauges"]}
        body["histograms"] = {
            name: histogram_summary(data) for name, data in snapshot["histograms"].items()
        }
        return body

    def _serve_metrics_prometheus(self) -> str:
        """The ``/metrics?format=prom`` text body (Prometheus exposition)."""
        return render_prometheus(self._metrics_snapshot())

    # ----------------------------------------------------------------- #
    # Admission control and deadlines
    # ----------------------------------------------------------------- #
    async def _admit(self, coroutine, timeout_ms: float | None) -> tuple[int, dict, dict]:
        """Run an evaluation coroutine under admission control and a deadline.

        Saturation (the wait queue is full) answers 429, draining answers
        503 -- both with ``Retry-After``, both *before* any work starts, so
        an overloaded server stays responsive instead of building an
        unbounded backlog.  A deadline overrun cancels the waiting request
        and answers 504; groupmates batched with it are unaffected (their
        futures complete independently).

        Admission accounting is *atomic with the saturation check*: the
        queued counter (and its gauge) is bumped here, synchronously, before
        the first ``await`` -- not inside the queued coroutine, which only
        starts on a later event-loop tick.  Without that, a burst arriving
        in one tick would all pass the saturation check against stale
        counters (over-admission beyond ``max_queue``), and a ``/metrics``
        snapshot taken between admission and enqueue would under-report
        ``queued_requests``.
        """
        if self._draining:
            coroutine.close()
            self.registry.inc("rejected_draining")
            return (
                503,
                {"error": "server is draining before shutdown", "code": "draining"},
                {"Retry-After": "1"},
            )
        # One combined capacity check: a reservation counts against the queue
        # until its slot is acquired, so comparing the *sum* keeps the check
        # exact even for a same-tick burst where nothing has started running
        # yet (separate comparisons would admit against a stale running=0).
        if self._queued + self._running >= self.max_queue + self.max_inflight:
            coroutine.close()
            self.registry.inc("rejected_saturated")
            return (
                429,
                {
                    "error": (
                        f"server saturated: {self._running} running and "
                        f"{self._queued} queued requests "
                        f"(max-inflight {self.max_inflight}, max-queue {self.max_queue})"
                    ),
                    "code": "saturated",
                },
                {"Retry-After": "1"},
            )
        # Reserve the queue slot NOW, before the first await: the wait_for
        # task below only starts on a later loop tick, and every concurrent
        # admission this tick must see this request counted.
        self._queued += 1
        self._set_admission_gauges()
        effective = timeout_ms if timeout_ms is not None else self.request_timeout_ms
        timeout = None if effective is None else effective / 1000.0
        try:
            payload = await asyncio.wait_for(self._with_slot(coroutine), timeout)
        except asyncio.TimeoutError:
            self.registry.inc("deadline_timeouts")
            return (
                504,
                {
                    "error": f"request deadline of {effective:g} ms exceeded",
                    "code": "deadline_exceeded",
                },
                {},
            )
        return 200, payload, {}

    def _set_admission_gauges(self) -> None:
        """Publish the admission counters as gauges, synchronously.

        Called at every queued/running transition so a ``/metrics`` snapshot
        taken mid-burst reads the same numbers admission control does --
        not values from one loop tick ago.
        """
        self.registry.set_gauge("queued_requests", self._queued)
        self.registry.set_gauge("running_requests", self._running)

    async def _with_slot(self, coroutine):
        # The caller (_admit) already took the queued reservation; this
        # coroutine releases it once a running slot is acquired.  A deadline
        # cancellation lands inside acquire() -- after this task's first
        # step, which the event loop always runs before a positive wait_for
        # timer -- so the finally below cannot be skipped.
        semaphore = self._slot_semaphore()
        waited_from = time.perf_counter()
        try:
            await semaphore.acquire()
        except asyncio.CancelledError:
            # The deadline fired while this request was still queued: the
            # evaluation coroutine never started, so close it here instead
            # of leaking it un-awaited.
            coroutine.close()
            raise
        finally:
            self._queued -= 1
            self._set_admission_gauges()
        waited = time.perf_counter() - waited_from
        self.registry.observe("queue_wait_seconds", waited)
        telemetry.record("server.queue_wait", waited)
        self._running += 1
        self._set_admission_gauges()
        try:
            return await coroutine
        finally:
            self._running -= 1
            self._set_admission_gauges()
            semaphore.release()

    async def _route(
        self, verb: str, path: str, body: bytes, query: str = ""
    ) -> tuple[int, dict | str, dict]:
        if path.startswith("/v1/cache/"):
            # The shared cache surface: no admission control (peers keep
            # reading from a draining or saturated shard) and no fixed
            # route-table entry (the digest is part of the path).
            digest = self._cache_digest(path)
            if digest is None:
                return (
                    404,
                    {
                        "error": "cache paths are /v1/cache/<64 lowercase hex digest chars>",
                        "code": "not_found",
                    },
                    {},
                )
            if verb not in ("GET", "PUT"):
                return (
                    405,
                    {"error": f"{path} expects GET or PUT, got {verb}", "code": "method_not_allowed"},
                    {},
                )
            try:
                if verb == "GET":
                    status, payload = await self._serve_cache_get(digest)
                else:
                    status, payload = await self._serve_cache_put(digest, body)
                return status, payload, {}
            except Exception as error:  # noqa: BLE001 - the server must not die
                return (
                    500,
                    {
                        "error": f"cache operation failed: {type(error).__name__}: {error}",
                        "code": "cache_failed",
                    },
                    {},
                )
        routes = {
            "/healthz": "GET",
            "/metrics": "GET",
            "/v1/methods": "GET",
            "/v1/health/peers": "GET",
            "/v1/evaluate": "POST",
            "/v1/evaluate/batch": "POST",
        }
        expected = routes.get(path)
        if expected is None:
            return 404, {"error": f"unknown path {path!r}", "code": "not_found"}, {}
        if verb != expected:
            return (
                405,
                {"error": f"{path} expects {expected}, got {verb}", "code": "method_not_allowed"},
                {},
            )
        try:
            if path == "/healthz":
                return 200, {
                    "status": "ok",
                    "draining": self._draining,
                    "uptime_seconds": round(time.time() - self._started, 3),
                }, {}
            if path == "/v1/health/peers":
                # The shared health-view surface, uniform across roles: a
                # shard has no peer table (routers own ejection state), so
                # its view is empty and merging it is a no-op -- a router
                # pointed at a shard by mistake converges on nothing
                # instead of failing.
                return 200, {
                    "role": "shard",
                    "status": "draining" if self._draining else "ok",
                    "updated": round(time.time(), 6),
                    "view": {},
                }, {}
            if path == "/metrics":
                params = parse_qs(query)
                wanted = params.get("format", ["json"])[-1]
                scope = params.get("scope", ["local"])[-1]
                if scope != "local":
                    return (
                        400,
                        {
                            "error": (
                                f"unknown metrics scope {scope!r}; shards serve "
                                "'local' only -- routers serve scope=fleet"
                            ),
                            "code": "bad_request",
                        },
                        {},
                    )
                if wanted == "prom":
                    return 200, self._serve_metrics_prometheus(), {}
                if wanted != "json":
                    return (
                        400,
                        {
                            "error": f"unknown metrics format {wanted!r}; use 'json' or 'prom'",
                            "code": "bad_request",
                        },
                        {},
                    )
                return 200, self._serve_metrics(), {}
            if path == "/v1/methods":
                return 200, self._serve_methods(), {}
            try:
                payload = json.loads(body or b"null")
            except json.JSONDecodeError as error:
                return (
                    400,
                    {"error": f"request body is not valid JSON: {error}", "code": "bad_request"},
                    {},
                )
            # The deadline is validated up front (bad spellings are 400s,
            # not admitted work); full payload validation runs inside the
            # admitted coroutine.
            timeout_ms = parse_timeout_ms(
                payload.get("timeout_ms") if isinstance(payload, dict) else None
            )
            if path == "/v1/evaluate":
                return await self._admit(self._serve_evaluate(payload), timeout_ms)
            return await self._admit(self._serve_batch(payload), timeout_ms)
        except ValueError as error:
            return 400, {"error": str(error), "code": "bad_request"}, {}
        except WorkerCrashError as error:
            return 500, {"error": str(error), "code": "worker_crash"}, {}
        except Exception as error:  # noqa: BLE001 - the server must not die
            return (
                500,
                {
                    "error": f"evaluation failed: {type(error).__name__}: {error}",
                    "code": "evaluation_failed",
                },
                {},
            )

    # ----------------------------------------------------------------- #
    # HTTP front
    # ----------------------------------------------------------------- #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                request = await read_request(reader)
                if request is None:
                    break
                if request.error is not None:
                    status, message = request.error
                    await write_response(writer, status, {"error": message}, True)
                    break
                self.registry.inc("requests_total")
                headers = request.headers or {}
                # Every request gets a trace id -- the client's own when it
                # sent one (x-repro-trace-id), so multi-hop callers
                # correlate; echoed on the response either way.
                trace_id = headers.get("x-repro-trace-id") or telemetry.new_trace_id()
                # A router forwards its enclosing span id so this request's
                # root span nests under it in the stitched fleet trace.
                parent_span = headers.get("x-repro-parent-span") or None
                trace_token = telemetry.set_trace_id(trace_id)
                handled_from = time.perf_counter()
                try:
                    with telemetry.span(
                        "server.request",
                        trace_id=trace_id,
                        parent_id=parent_span,
                        path=request.path,
                        verb=request.verb,
                    ) as request_span:
                        status, payload, extra_headers = await self._route(
                            request.verb, request.path, request.body, request.query
                        )
                        request_span.set(status=status)
                finally:
                    trace_token.var.reset(trace_token)
                elapsed = time.perf_counter() - handled_from
                self.registry.observe("request_seconds", elapsed, trace_id=trace_id)
                if (
                    self.slow_request_ms is not None
                    and elapsed * 1000.0 > self.slow_request_ms
                ):
                    print(
                        f"slow request: {request.verb} {request.path} -> {status} "
                        f"in {elapsed * 1000.0:.1f} ms (trace {trace_id})",
                        file=sys.stderr,
                        flush=True,
                    )
                if status >= 400:
                    self.registry.inc("errors_total")
                    if isinstance(payload, dict) and "error" in payload:
                        payload.setdefault("trace_id", trace_id)
                extra_headers = {**(extra_headers or {}), "x-repro-trace-id": trace_id}
                await write_response(writer, status, payload, request.close, extra_headers)
                if request.close:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-request; nothing to answer
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # ----------------------------------------------------------------- #
    # Lifecycle
    # ----------------------------------------------------------------- #
    async def start(self, host: str = "127.0.0.1", port: int = 8000) -> asyncio.AbstractServer:
        """Bind and start accepting connections; returns the asyncio server."""
        self._started = time.time()
        return await asyncio.start_server(self._handle_connection, host=host, port=port)

    async def serve_forever(self, host: str = "127.0.0.1", port: int = 8000) -> None:
        """Run until cancelled (the ``repro serve`` main loop)."""
        server = await self.start(host, port)
        addr = server.sockets[0].getsockname()
        print(f"repro evaluation service listening on http://{addr[0]}:{addr[1]}", flush=True)
        try:
            async with server:
                await server.serve_forever()
        finally:
            await self.aclose()

    async def aclose(self, drain_seconds: float = 5.0) -> None:
        """Graceful shutdown: stop admitting, drain, then release the executor.

        New evaluation requests answer 503 (``Retry-After``) from here on;
        every open batching window is flushed and already-admitted requests
        get up to ``drain_seconds`` to finish before the executor is torn
        down, so a routine shutdown never truncates accepted work.
        """
        self._draining = True
        await self.batcher.flush_all()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + drain_seconds
        while self._running > 0 and loop.time() < deadline:
            await asyncio.sleep(0.02)
        # Close kept-alive client connections: their parked handler tasks
        # see EOF and exit cleanly (cancelling them instead trips a noisy
        # CPython 3.11 streams callback on every cancelled handler).
        for writer in list(self._connections):
            writer.close()
        while self._connections and loop.time() < deadline + 1.0:
            await asyncio.sleep(0.01)
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None


class ServerHandle:
    """A running background server: address, metrics access and shutdown."""

    def __init__(self, server: EvaluationServer, host: str, port: int, thread, loop) -> None:
        self.server = server
        self.host = host
        self.port = port
        self._thread = thread
        self._loop = loop

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the loop and join the server thread."""
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_background(
    server: EvaluationServer,
    host: str = "127.0.0.1",
    port: int = 0,
    startup_timeout: float = 30.0,
) -> ServerHandle:
    """Run ``server`` on a fresh event loop in a daemon thread.

    ``port=0`` binds an ephemeral port; the returned handle carries the
    resolved address.  This is the embedding seam tests, benchmarks and the
    example client use -- production deployments run ``repro serve``.

    Raises ``RuntimeError`` when the server does not come up within
    ``startup_timeout`` seconds (the background loop is told to stop, so a
    late bind cannot leave a half-started server behind) or when binding
    failed outright.
    """
    started = threading.Event()
    box: dict[str, Any] = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        box["loop"] = loop
        try:
            asyncio_server = loop.run_until_complete(server.start(host, port))
            box["port"] = asyncio_server.sockets[0].getsockname()[1]
            started.set()
            loop.run_forever()
            # loop.stop() landed: drain the batcher and close sockets.
            asyncio_server.close()
            loop.run_until_complete(asyncio_server.wait_closed())
            loop.run_until_complete(server.aclose())
            # Kept-alive client connections leave their handler tasks
            # parked in read_request(); cancel them while the loop can
            # still run their cleanup, or closing the loop strands them
            # (unraisable GeneratorExit at garbage collection).
            pending = [task for task in asyncio.all_tasks(loop) if not task.done()]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
        except BaseException as error:  # noqa: BLE001 - surfaced to the caller
            box["error"] = error
            started.set()
        finally:
            loop.close()

    thread = threading.Thread(target=run, name="repro-serve", daemon=True)
    thread.start()
    if not started.wait(timeout=startup_timeout):
        # Never hand back a half-started server: stop the loop (a late bind
        # would otherwise keep serving invisibly) and fail with a message
        # that names the bind target and the timeout.
        loop = box.get("loop")
        if loop is not None:
            loop.call_soon_threadsafe(loop.stop)
        raise RuntimeError(
            f"service failed to start on {host}:{port} within {startup_timeout:g}s "
            f"(startup thread {'still running' if thread.is_alive() else 'exited'})"
        )
    if "error" in box:
        raise RuntimeError(f"service failed to start: {box['error']}") from box["error"]
    return ServerHandle(server, host, box["port"], thread, box["loop"])
