"""The asyncio evaluation server behind ``repro serve``.

A minimal, dependency-free HTTP/1.1 server on ``asyncio`` streams -- no web
framework, no third-party packages -- exposing:

===========================  ========================================================
Endpoint                     Meaning
===========================  ========================================================
``POST /v1/evaluate``        one evaluation (micro-batched with concurrent traffic)
``POST /v1/evaluate/batch``  one ``repro.evaluate_batch`` call, shipped as one job
``GET /v1/methods``          the method registry's schemas (``repro methods`` as JSON)
``GET /healthz``             liveness: ``{"status": "ok", ...}``
``GET /metrics``             counters: requests, batched groups, cache hits, ...
===========================  ========================================================

Request handling is fully asynchronous: each connection is a task, each
``/v1/evaluate`` awaits the micro-batcher, and every evaluation runs on an
executor (process pool with ``workers >= 1``, a thread pool in-process
otherwise), so slow evaluations never stall the accept loop, ``/healthz`` or
``/metrics``.

Responses are JSON; invalid input is HTTP 400 with a one-line ``error``
message (the same messages the CLI prints), unknown paths 404, wrong verbs
405, oversized bodies 413 and evaluation failures 500.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any

from repro.api.registry import default_registry
from repro.cache import ResultCache
from repro.service.batcher import MicroBatcher
from repro.service.cache import ResponseCache
from repro.service.protocol import parse_batch_payload, parse_evaluate_payload
from repro.service import worker

__all__ = ["EvaluationServer", "ServerHandle", "start_in_background"]

#: Largest accepted request body.  A 10k-fault inline model is ~0.5 MB of
#: JSON; 32 MB leaves two orders of magnitude of headroom while bounding a
#: misbehaving client's memory impact.
MAX_BODY_BYTES = 32 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class EvaluationServer:
    """The evaluation service: batcher + cache + executor + HTTP front.

    Parameters
    ----------
    workers:
        Process-pool size for evaluations; ``0`` evaluates in server-side
        threads (no pickling, fine for tests and small deployments).
    batch_window_ms:
        Micro-batching window: how long the first request of a batchable
        group waits for companions (the added latency ceiling).
    batch:
        ``False`` disables micro-batching; every request takes the scalar
        :func:`repro.evaluate` path.
    cache_dir:
        Optional disk tier for the response cache (the shared
        content-addressed :class:`~repro.cache.ResultCache` format).
    lru_size:
        In-process response-cache capacity (entries).
    """

    def __init__(
        self,
        *,
        workers: int = 0,
        batch_window_ms: float = 5.0,
        batch: bool = True,
        cache_dir: str | None = None,
        lru_size: int = 1024,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if batch_window_ms < 0.0:
            raise ValueError(f"batch_window_ms must be >= 0, got {batch_window_ms}")
        self.workers = workers
        self.batch_window_ms = batch_window_ms
        self.batch = batch
        self.cache_dir = cache_dir
        self.cache = ResponseCache(
            max_entries=lru_size,
            disk=ResultCache(cache_dir) if cache_dir is not None else None,
        )
        self._executor = None
        self._started = time.time()
        self.batcher = MicroBatcher(
            self._run_in_pool,
            window_seconds=batch_window_ms / 1000.0,
            batch=batch,
            on_group=self._record_group,
        )
        self.metrics: dict[str, Any] = {
            "requests_total": 0,
            "errors_total": 0,
            "evaluate_requests": 0,
            "batch_endpoint_requests": 0,
            "batch_endpoint_evaluations": 0,
            "evaluations_computed": 0,
            "dispatched_groups": 0,
            "batched_groups": 0,
            "batched_group_requests": 0,
            "coalesced_requests": 0,
            "max_group_size": 0,
            "cache_hits_lru": 0,
            "cache_hits_disk": 0,
            "cache_misses": 0,
        }

    # ----------------------------------------------------------------- #
    # Executor plumbing
    # ----------------------------------------------------------------- #
    def _ensure_executor(self):
        if self._executor is None:
            if self.workers >= 1:
                from concurrent.futures import ProcessPoolExecutor

                self._executor = ProcessPoolExecutor(max_workers=self.workers)
            else:
                from concurrent.futures import ThreadPoolExecutor

                self._executor = ThreadPoolExecutor(
                    max_workers=4, thread_name_prefix="repro-eval"
                )
        return self._executor

    async def _run_in_pool(self, function, arguments):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._ensure_executor(), function, arguments)

    def _record_group(self, group_size: int, unique: int, batched: bool) -> None:
        self.metrics["dispatched_groups"] += 1
        self.metrics["evaluations_computed"] += unique
        self.metrics["coalesced_requests"] += group_size - unique
        self.metrics["max_group_size"] = max(self.metrics["max_group_size"], group_size)
        if batched and group_size >= 2:
            self.metrics["batched_groups"] += 1
            self.metrics["batched_group_requests"] += group_size

    # ----------------------------------------------------------------- #
    # Endpoint logic
    # ----------------------------------------------------------------- #
    async def _serve_evaluate(self, payload) -> dict:
        request = parse_evaluate_payload(payload)
        self.metrics["evaluate_requests"] += 1
        digest = request.digest()
        record = self.cache.get_local(digest)
        if record is not None:
            self.metrics["cache_hits_lru"] += 1
            return {"result": record, "served": {"cached": "lru", "batched": False, "group_size": 0}}
        # Disk-tier file I/O runs on the default thread executor: the event
        # loop (accept loop, /healthz, in-flight responses) must never wait
        # on a slow disk.
        loop = asyncio.get_running_loop()
        metrics = None
        if self.cache.disk is not None:
            metrics = await loop.run_in_executor(None, self.cache.get_disk, digest)
        if metrics is not None:
            self.metrics["cache_hits_disk"] += 1
            record = request.result_record(metrics)
            self.cache.put_local(digest, record)
            return {"result": record, "served": {"cached": "disk", "batched": False, "group_size": 0}}
        self.metrics["cache_misses"] += 1
        record, meta = await self.batcher.submit(request, digest)
        self.cache.put_local(digest, record)
        if self.cache.disk is not None:
            await loop.run_in_executor(
                None, self.cache.store_disk, digest, record, request.payload()
            )
        return {"result": record, "served": {"cached": None, **meta}}

    async def _serve_batch(self, payload) -> dict:
        model_data, requests, seed = parse_batch_payload(payload)
        self.metrics["batch_endpoint_requests"] += 1
        self.metrics["batch_endpoint_evaluations"] += len(requests)
        records = await self._run_in_pool(
            worker.evaluate_batch_endpoint, (model_data, requests, seed)
        )
        return {"results": records, "served": {"cached": None, "requests": len(requests)}}

    def _serve_methods(self) -> dict:
        return {"methods": [definition.schema() for definition in default_registry()]}

    def _serve_metrics(self) -> dict:
        snapshot = dict(self.metrics)
        snapshot.update(
            {
                "uptime_seconds": round(time.time() - self._started, 3),
                "pending_requests": self.batcher.pending_requests,
                "lru_entries": len(self.cache),
                "batch_enabled": self.batch,
                "batch_window_ms": self.batch_window_ms,
                "workers": self.workers,
                "cache_dir": self.cache_dir,
            }
        )
        return snapshot

    async def _route(self, verb: str, path: str, body: bytes) -> tuple[int, dict]:
        routes = {
            "/healthz": "GET",
            "/metrics": "GET",
            "/v1/methods": "GET",
            "/v1/evaluate": "POST",
            "/v1/evaluate/batch": "POST",
        }
        expected = routes.get(path)
        if expected is None:
            return 404, {"error": f"unknown path {path!r}"}
        if verb != expected:
            return 405, {"error": f"{path} expects {expected}, got {verb}"}
        try:
            if path == "/healthz":
                return 200, {
                    "status": "ok",
                    "uptime_seconds": round(time.time() - self._started, 3),
                }
            if path == "/metrics":
                return 200, self._serve_metrics()
            if path == "/v1/methods":
                return 200, self._serve_methods()
            try:
                payload = json.loads(body or b"null")
            except json.JSONDecodeError as error:
                return 400, {"error": f"request body is not valid JSON: {error}"}
            if path == "/v1/evaluate":
                return 200, await self._serve_evaluate(payload)
            return 200, await self._serve_batch(payload)
        except ValueError as error:
            return 400, {"error": str(error)}
        except Exception as error:  # noqa: BLE001 - the server must not die
            return 500, {"error": f"evaluation failed: {type(error).__name__}: {error}"}

    # ----------------------------------------------------------------- #
    # HTTP front
    # ----------------------------------------------------------------- #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                parts = request_line.decode("latin-1").strip().split()
                if len(parts) != 3:
                    await self._respond(writer, 400, {"error": "malformed request line"}, True)
                    break
                verb, target, version = parts
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0") or "0")
                except ValueError:
                    length = -1  # non-integer: rejected below with negatives
                if length < 0:
                    await self._respond(writer, 400, {"error": "bad Content-Length"}, True)
                    break
                if length > MAX_BODY_BYTES:
                    await self._respond(
                        writer,
                        413,
                        {"error": f"request body exceeds {MAX_BODY_BYTES} bytes"},
                        True,
                    )
                    break
                body = await reader.readexactly(length) if length else b""
                close = (
                    headers.get("connection", "").lower() == "close"
                    or version.upper() == "HTTP/1.0"
                )
                self.metrics["requests_total"] += 1
                path = target.split("?", 1)[0]
                status, payload = await self._route(verb.upper(), path, body)
                if status >= 400:
                    self.metrics["errors_total"] += 1
                await self._respond(writer, status, payload, close)
                if close:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(
        self, writer: asyncio.StreamWriter, status: int, payload: dict, close: bool
    ) -> None:
        data = (json.dumps(payload) + "\n").encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + data)
        await writer.drain()

    # ----------------------------------------------------------------- #
    # Lifecycle
    # ----------------------------------------------------------------- #
    async def start(self, host: str = "127.0.0.1", port: int = 8000) -> asyncio.AbstractServer:
        """Bind and start accepting connections; returns the asyncio server."""
        self._started = time.time()
        return await asyncio.start_server(self._handle_connection, host=host, port=port)

    async def serve_forever(self, host: str = "127.0.0.1", port: int = 8000) -> None:
        """Run until cancelled (the ``repro serve`` main loop)."""
        server = await self.start(host, port)
        addr = server.sockets[0].getsockname()
        print(f"repro evaluation service listening on http://{addr[0]}:{addr[1]}", flush=True)
        try:
            async with server:
                await server.serve_forever()
        finally:
            await self.aclose()

    async def aclose(self) -> None:
        """Flush pending groups and release the executor."""
        await self.batcher.flush_all()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None


class ServerHandle:
    """A running background server: address, metrics access and shutdown."""

    def __init__(self, server: EvaluationServer, host: str, port: int, thread, loop) -> None:
        self.server = server
        self.host = host
        self.port = port
        self._thread = thread
        self._loop = loop

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the loop and join the server thread."""
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_background(
    server: EvaluationServer, host: str = "127.0.0.1", port: int = 0
) -> ServerHandle:
    """Run ``server`` on a fresh event loop in a daemon thread.

    ``port=0`` binds an ephemeral port; the returned handle carries the
    resolved address.  This is the embedding seam tests, benchmarks and the
    example client use -- production deployments run ``repro serve``.
    """
    started = threading.Event()
    box: dict[str, Any] = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        try:
            asyncio_server = loop.run_until_complete(server.start(host, port))
            box["port"] = asyncio_server.sockets[0].getsockname()[1]
            box["loop"] = loop
            started.set()
            loop.run_forever()
            # loop.stop() landed: drain the batcher and close sockets.
            asyncio_server.close()
            loop.run_until_complete(asyncio_server.wait_closed())
            loop.run_until_complete(server.aclose())
        except BaseException as error:  # noqa: BLE001 - surfaced to the caller
            box["error"] = error
            started.set()
        finally:
            loop.close()

    thread = threading.Thread(target=run, name="repro-serve", daemon=True)
    thread.start()
    started.wait(timeout=30.0)
    if "error" in box:
        raise RuntimeError(f"service failed to start: {box['error']}") from box["error"]
    if "port" not in box:
        raise RuntimeError("service failed to start within 30s")
    return ServerHandle(server, host, box["port"], thread, box["loop"])
