"""The service wire protocol: request parsing, validation and identity.

``POST /v1/evaluate`` bodies look like::

    {"model": {"p": [...], "q": [...]}, "method": "montecarlo",
     "options": {"replications": 50000}, "seed": 7,
     "p_scale": 0.5, "q_scale": 1.0}

``"scenario": "<name>"`` may replace ``"model"``; the scenario is resolved
to its concrete model content immediately, so a scenario-spelled request and
its inline-model equivalent are the *same* request (same digest, same batch
group, same cache entry).  ``options`` resolve through the method registry
exactly like every other surface; ``seed`` defaults to the library seed so
"no seed" still means "reproducible"; ``p_scale`` / ``q_scale`` are the
batchable model transforms (:mod:`repro.grouping`) that let concurrent
requests share one batched-kernel call.

Parsing is strict: unknown keys, unknown methods, unknown options, wrong
types and transforms the model rejects all raise ``ValueError`` here, which
the server maps to a 400 response -- nothing invalid ever reaches the worker
pool.

A parsed request carries its content identity: :meth:`ServiceRequest.digest`
is the response-cache key (the same canonical-payload scheme as study cache
keys -- a deterministic-method entry warmed by a study over the same inline
model is served to service traffic as-is), and :meth:`ServiceRequest.group_key`
is the micro-batcher's grouping key (the digest with neutral transforms,
exactly the study runner's group digest).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.api.registry import default_registry
from repro.api.results import EvaluationRequest
from repro.cache import payload_digest
from repro.core.fault_model import FaultModel
from repro.grouping import evaluation_payload, group_digest
from repro.stats.rng import DEFAULT_SEED

__all__ = [
    "ServiceRequest",
    "parse_batch_payload",
    "parse_evaluate_payload",
    "parse_timeout_ms",
]

_EVALUATE_KEYS = {
    "model", "scenario", "method", "options", "seed", "p_scale", "q_scale", "timeout_ms",
}
_BATCH_KEYS = {"model", "scenario", "requests", "seed", "timeout_ms", "stream_indices"}


@dataclass(frozen=True)
class ServiceRequest:
    """One validated ``/v1/evaluate`` request with its content identity."""

    model_data: dict
    method: str
    options: dict
    seed: int
    p_scale: float = 1.0
    q_scale: float = 1.0
    requires_seed: bool = False
    supports_batch: bool = False
    #: Per-request deadline in milliseconds (``None``: the server default).
    #: Delivery metadata, not content: it never enters the digest, the group
    #: key or the cache payload, so a request with a deadline hits the same
    #: cache entry as one without.
    timeout_ms: float | None = field(default=None, compare=False)
    #: Computed lazily and memoised: hashing the canonical payload walks the
    #: whole model content, so each request pays for it at most once.
    _digests: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def entropy(self) -> list[int] | None:
        """The payload's seed identity.

        A *list* (unlike the bare study-seed integer in study payloads),
        because the service seeds streams from the seed directly while the
        study runner derives digest-keyed child streams -- the spellings must
        never collide in the shared cache key space.  ``None`` for
        deterministic methods, whose entries survive seed changes (and are
        shared with study-warmed entries for the same model content).
        """
        return [self.seed] if self.requires_seed else None

    def payload(self) -> dict:
        """The canonical content payload (the study-compatible cache identity)."""
        return evaluation_payload(
            {"model": self.model_data},
            {"p_scale": self.p_scale, "q_scale": self.q_scale},
            self.method,
            self.options,
            self.entropy,
        )

    def digest(self) -> str:
        """Content digest of this request: the response-cache key."""
        digest = self._digests.get("digest")
        if digest is None:
            digest = self._digests["digest"] = payload_digest(self.payload())
        return digest

    def group_key(self) -> str:
        """Batch-group digest: the payload with neutral transforms."""
        key = self._digests.get("group")
        if key is None:
            key = self._digests["group"] = group_digest(self.payload())
        return key

    def result_record(self, metrics: Mapping[str, Any]) -> dict:
        """Rebuild the wire result record around cached ``metrics``.

        Disk-cache entries store only the metrics (the study-compatible
        entry shape); method, options and the seed entropy are implied by
        the request that hashed to the entry's digest.  ``elapsed_seconds``
        is 0.0 -- nothing was evaluated.
        """
        return {
            "method": self.method,
            "options": dict(self.options),
            "metrics": dict(metrics),
            "seed_entropy": self.entropy,
            "elapsed_seconds": 0.0,
        }

    def single_arguments(self) -> tuple:
        """Arguments for :func:`repro.service.worker.evaluate_single`."""
        return (
            self.model_data,
            self.method,
            self.options,
            self.seed,
            self.p_scale,
            self.q_scale,
        )

    def group_arguments(self, variations: tuple) -> tuple:
        """Arguments for :func:`repro.service.worker.evaluate_group`."""
        return (self.model_data, self.method, self.options, variations, self.seed)


def _require_mapping(payload, what: str) -> Mapping:
    if not isinstance(payload, Mapping):
        raise ValueError(f"{what} must be a JSON object, got {type(payload).__name__}")
    return payload


def _reject_unknown(payload: Mapping, accepted: set[str], what: str) -> None:
    unknown = sorted(str(key) for key in set(payload) - accepted)
    if unknown:
        raise ValueError(
            f"unknown {what} key(s): {', '.join(unknown)}; "
            f"accepted: {', '.join(sorted(accepted))}"
        )


def _parse_model(payload: Mapping) -> FaultModel:
    """Resolve the request's model source (inline content XOR scenario)."""
    has_model = payload.get("model") is not None
    has_scenario = payload.get("scenario") is not None
    if has_model == has_scenario:
        raise ValueError("a request needs exactly one of 'model' and 'scenario'")
    if has_scenario:
        from repro.experiments.scenarios import get_scenario

        scenario = payload["scenario"]
        if not isinstance(scenario, str):
            raise ValueError(f"'scenario' must be a string, got {scenario!r}")
        return get_scenario(scenario)
    data = payload["model"]
    if not isinstance(data, Mapping):
        raise ValueError(f"'model' must be a JSON object, got {type(data).__name__}")
    try:
        return FaultModel.from_dict(data)
    except KeyError as error:
        raise ValueError(f"model is missing required key {error}") from error
    except (TypeError, ValueError) as error:
        raise ValueError(f"invalid model: {error}") from error


def _parse_seed(value) -> int:
    if value is None:
        return DEFAULT_SEED
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"'seed' must be a non-negative integer or null, got {value!r}")
    if value < 0:
        raise ValueError(f"'seed' must be non-negative, got {value}")
    return value


def parse_timeout_ms(value) -> float | None:
    """Validate a ``timeout_ms`` payload value (``None`` means no deadline)."""
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"'timeout_ms' must be a positive number or null, got {value!r}")
    timeout = float(value)
    if not math.isfinite(timeout) or timeout <= 0.0:
        raise ValueError(f"'timeout_ms' must be a positive finite number, got {value!r}")
    return timeout


def _parse_scale(payload: Mapping, name: str) -> float:
    value = payload.get(name, 1.0)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"'{name}' must be a number, got {value!r}")
    scale = float(value)
    if not math.isfinite(scale) or scale < 0.0:
        raise ValueError(f"'{name}' must be a finite non-negative number, got {value!r}")
    return scale


def parse_evaluate_payload(payload) -> ServiceRequest:
    """Validate a ``/v1/evaluate`` body into a :class:`ServiceRequest`.

    Raises ``ValueError`` with a one-line message on any invalid input
    (mapped to HTTP 400 by the server).
    """
    payload = _require_mapping(payload, "an evaluate request")
    _reject_unknown(payload, _EVALUATE_KEYS, "request")
    model = _parse_model(payload)
    method = payload.get("method")
    if not method or not isinstance(method, str):
        raise ValueError(f"a request needs a 'method' name, got {method!r}")
    registry = default_registry()
    definition = registry.get(method)
    options = payload.get("options") or {}
    if not isinstance(options, Mapping):
        raise ValueError(f"'options' must be a JSON object, got {type(options).__name__}")
    resolved = registry.resolve_options(method, options)
    seed = _parse_seed(payload.get("seed"))
    p_scale = _parse_scale(payload, "p_scale")
    q_scale = _parse_scale(payload, "q_scale")
    # Model-dependent transform constraints (p_i pushed above 1, the strict
    # sum(q) <= 1 invariant) fail here, not in the worker pool.
    model.rescaled(p_scale, q_scale)
    return ServiceRequest(
        model_data=model.to_dict(),
        method=method,
        options=resolved,
        seed=seed,
        p_scale=p_scale,
        q_scale=q_scale,
        requires_seed=definition.requires_seed,
        supports_batch=definition.supports_batch,
        timeout_ms=parse_timeout_ms(payload.get("timeout_ms")),
    )


def parse_batch_payload(
    payload,
) -> tuple[dict, list[tuple[str, dict]], int, list[int] | None]:
    """Validate a ``/v1/evaluate/batch`` body.

    Returns ``(model_data, requests, seed, stream_indices)`` where
    ``requests`` is a list of ``(method, options)`` pairs in request order --
    exactly what :func:`repro.evaluate_batch` accepts, so the endpoint is a
    lossless transport of its argument list.  Request elements accept the
    same spellings as the Python API: a method name or a mapping with a
    ``"method"`` key and the options flattened alongside it.

    ``stream_indices`` (optional) carries each request's *global* position
    when the batch is a slice of a larger one -- the cluster router sends it
    so a fanned-out sub-batch derives the same ``(seed, index)`` streams,
    and therefore the same bytes, as the unsplit call.
    """
    payload = _require_mapping(payload, "a batch request")
    _reject_unknown(payload, _BATCH_KEYS, "batch request")
    model = _parse_model(payload)
    seed = _parse_seed(payload.get("seed"))
    parse_timeout_ms(payload.get("timeout_ms"))  # validated; read by the server
    raw = payload.get("requests")
    if not isinstance(raw, list) or not raw:
        raise ValueError("'requests' must be a non-empty list of evaluation requests")
    registry = default_registry()
    requests: list[tuple[str, dict]] = []
    for index, element in enumerate(raw):
        try:
            request = EvaluationRequest.coerce(element)
            registry.resolve_options(request.method, request.option_dict())
        except ValueError as error:
            raise ValueError(f"request {index}: {error}") from error
        requests.append((request.method, request.option_dict()))
    stream_indices = _parse_stream_indices(payload.get("stream_indices"), len(requests))
    return model.to_dict(), requests, seed, stream_indices


def _parse_stream_indices(raw, count: int) -> list[int] | None:
    if raw is None:
        return None
    if not isinstance(raw, list):
        raise ValueError(
            f"'stream_indices' must be a list of non-negative integers, got {type(raw).__name__}"
        )
    if len(raw) != count:
        raise ValueError(
            f"'stream_indices' ({len(raw)}) must match 'requests' ({count})"
        )
    indices: list[int] = []
    for position in raw:
        if isinstance(position, bool) or not isinstance(position, int) or position < 0:
            raise ValueError(
                f"'stream_indices' must be non-negative integers, got {position!r}"
            )
        indices.append(position)
    return indices
