"""The shared asyncio HTTP/1.1 front: request framing and response writing.

Both serving layers -- the evaluation server (:mod:`repro.service.server`)
and the cluster shard router (:mod:`repro.cluster.router`) -- speak the same
minimal, dependency-free HTTP/1.1 over ``asyncio`` streams: Content-Length
framed bodies, keep-alive by default, JSON payloads (or pre-rendered text
for the Prometheus exposition).  The framing lives here so the two fronts
cannot drift: a request the server accepts is a request the router can
terminate, byte for byte.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass

__all__ = [
    "MAX_BODY_BYTES",
    "REASONS",
    "HttpRequest",
    "read_request",
    "render_response",
    "write_response",
]

#: Largest accepted request body.  A 10k-fault inline model is ~0.5 MB of
#: JSON; 32 MB leaves two orders of magnitude of headroom while bounding a
#: misbehaving client's memory impact.
MAX_BODY_BYTES = 32 * 1024 * 1024

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class HttpRequest:
    """One framed request off the wire (or the framing error it produced)."""

    verb: str = ""
    path: str = ""
    query: str = ""
    headers: dict[str, str] | None = None
    body: bytes = b""
    close: bool = False
    #: ``(status, message)`` when framing failed; the connection handler
    #: answers it and closes.  ``None`` for a well-formed request.
    error: tuple[int, str] | None = None


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Read one request off ``reader``; ``None`` at a clean end of stream.

    Framing failures (malformed request line, bad Content-Length, oversized
    body) come back as a request whose ``error`` is set -- the caller
    responds with it and drops the connection, because the stream position
    is no longer trustworthy.
    """
    request_line = await reader.readline()
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        return HttpRequest(error=(400, "malformed request line"), close=True)
    verb, target, version = parts
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        length = -1  # non-integer: rejected below with negatives
    if length < 0:
        return HttpRequest(error=(400, "bad Content-Length"), close=True)
    if length > MAX_BODY_BYTES:
        return HttpRequest(
            error=(413, f"request body exceeds {MAX_BODY_BYTES} bytes"), close=True
        )
    body = await reader.readexactly(length) if length else b""
    close = (
        headers.get("connection", "").lower() == "close" or version.upper() == "HTTP/1.0"
    )
    path, _, query = target.partition("?")
    return HttpRequest(
        verb=verb.upper(),
        path=path,
        query=query,
        headers=headers,
        body=body,
        close=close,
    )


def render_response(
    status: int,
    payload: dict | list | str,
    close: bool,
    extra_headers: dict | None = None,
) -> bytes:
    """Render a full response (head + body) ready to write.

    A ``str`` payload is pre-rendered text (the Prometheus exposition);
    everything else is JSON.
    """
    if isinstance(payload, str):
        data = payload.encode("utf-8")
        content_type = "text/plain; version=0.0.4; charset=utf-8"
    else:
        data = (json.dumps(payload) + "\n").encode("utf-8")
        content_type = "application/json"
    extras = "".join(
        f"{name}: {value}\r\n" for name, value in (extra_headers or {}).items()
    )
    head = (
        f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(data)}\r\n"
        f"{extras}"
        f"Connection: {'close' if close else 'keep-alive'}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + data


async def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: dict | list | str,
    close: bool,
    extra_headers: dict | None = None,
) -> None:
    writer.write(render_response(status, payload, close, extra_headers))
    await writer.drain()
