""":class:`ServiceClient`: the stdlib Python client for the evaluation service.

A thin, thread-safe wrapper over ``http.client`` that speaks the service's
JSON protocol and returns the same typed
:class:`~repro.api.results.EvaluationResult` objects the in-process API
produces -- swapping ``repro.evaluate(model, ...)`` for
``client.evaluate(model, ...)`` changes where the work runs, not what comes
back.  Connections are kept alive *per thread*: each thread reuses one
``http.client`` connection across calls (reconnecting transparently when the
server closed it between calls), so one client instance can be shared
freely across threads (the concurrent-client pattern that triggers
micro-batching; see ``examples/service_client.py``) without paying a TCP
handshake per request.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from typing import Any, Callable, Mapping, Sequence

from repro.api.results import EvaluationRequest, EvaluationResult

__all__ = ["BackoffPolicy", "RETRYABLE_STATUSES", "ServiceClient", "ServiceError"]

#: Statuses worth retrying: transient server-side saturation (429) and
#: draining/unavailability (503).  Everything else is either the caller's
#: fault (4xx) or a typed evaluation failure a retry would only repeat.
RETRYABLE_STATUSES = frozenset({429, 503})


class ServiceError(RuntimeError):
    """A non-2xx service response, fully typed.

    Attributes
    ----------
    status:
        The HTTP status code.
    code:
        The machine-readable error code the server attaches to every error
        body (``"bad_request"``, ``"saturated"``, ``"draining"``,
        ``"deadline_exceeded"``, ``"worker_crash"``, ``"evaluation_failed"``,
        ...); ``None`` when the body carried none (e.g. a non-JSON proxy
        response).
    detail:
        The human-readable one-line error message.
    retry_after:
        Parsed ``Retry-After`` header in seconds, when the server sent one.
    trace_id:
        The server's trace id for the failed request (from the error body or
        the ``x-repro-trace-id`` response header), so a client-side log line
        can be correlated with the server's trace capture; ``None`` when the
        response carried none.  Included in ``str(error)``.
    """

    def __init__(
        self,
        status: int,
        message: str,
        *,
        code: str | None = None,
        retry_after: float | None = None,
        trace_id: str | None = None,
    ) -> None:
        rendered = f"HTTP {status} [{code or 'unknown'}]: {message}"
        if trace_id:
            rendered += f" (trace {trace_id})"
        super().__init__(rendered)
        self.status = status
        self.message = message
        self.detail = message
        self.code = code
        self.retry_after = retry_after
        self.trace_id = trace_id

    @property
    def retryable(self) -> bool:
        return self.status in RETRYABLE_STATUSES


class BackoffPolicy:
    """Exponential backoff with jitter, honouring ``Retry-After``.

    ``base * 2**attempt`` capped at ``maximum``, scaled by a random factor
    in [0.5, 1.0]; a server-sent ``Retry-After`` sets the floor.  Shared by
    :class:`ServiceClient` (per-call retries) and the cluster router
    (per-hop retries, :mod:`repro.cluster.router`) so the two layers cannot
    drift apart in retry behaviour.  ``rng`` is the injection seam that
    makes a whole backoff schedule assertable in tests.
    """

    def __init__(
        self,
        base: float = 0.05,
        maximum: float = 2.0,
        rng: Callable[[], float] = random.random,
    ) -> None:
        if base <= 0.0 or maximum <= 0.0:
            raise ValueError("backoff base and maximum must be positive")
        self.base = base
        self.maximum = maximum
        self.rng = rng

    def delay(self, attempt: int, retry_after: float | None = None) -> float:
        """The delay before retry ``attempt`` (0-based), jitter applied."""
        delay = min(self.maximum, self.base * (2.0**attempt))
        delay *= 0.5 + 0.5 * self.rng()
        if retry_after is not None:
            delay = max(delay, retry_after)
        return delay


def _parse_retry_after(value: str | None) -> float | None:
    if value is None:
        return None
    try:
        parsed = float(value)
    except ValueError:
        return None  # HTTP-date spelling: ignored, backoff still applies
    return parsed if parsed >= 0.0 else None


def _model_payload(model, scenario: str | None) -> dict:
    if (model is None) == (scenario is None):
        raise ValueError("provide exactly one of model and scenario")
    if scenario is not None:
        return {"scenario": scenario}
    if hasattr(model, "to_dict"):
        return {"model": model.to_dict()}
    if isinstance(model, Mapping):
        return {"model": dict(model)}
    raise ValueError(f"model must be a FaultModel or a mapping, got {type(model).__name__}")


class ServiceClient:
    """Talk to a running ``repro serve`` instance.

    Transient failures are retried transparently: connection errors (the
    server is restarting, a worker crash bounced it) and retryable statuses
    (429 saturated, 503 draining) back off exponentially with jitter --
    ``backoff_base * 2**attempt`` capped at ``backoff_max``, scaled by a
    random factor in [0.5, 1.0] -- honouring the server's ``Retry-After``
    when it is longer.  Retrying is safe because every response is
    deterministic and content-keyed: a retried request returns the same
    bytes the first attempt would have.  ``retries=0`` disables retrying.

    ``max_elapsed_s`` is the **retry budget**: the total time a call may
    spend across attempts and backoff sleeps.  A sleep that would overrun
    the budget is skipped and the last failure raised instead -- a typed
    :class:`ServiceError` when the server answered (429/503, ``Retry-After``
    attached), the transport error otherwise -- so honoured ``Retry-After``
    values can never stretch a call past the caller's own deadline.
    ``None`` (the default) keeps the unbounded PR-6 behaviour.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8000,
        timeout: float = 120.0,
        *,
        retries: int = 2,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        max_elapsed_s: float | None = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: Callable[[], float] = random.random,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if max_elapsed_s is not None and max_elapsed_s <= 0.0:
            raise ValueError(f"max_elapsed_s must be positive, got {max_elapsed_s}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.max_elapsed_s = max_elapsed_s
        self._clock = clock
        self.backoff = BackoffPolicy(backoff_base, backoff_max, rng=rng)
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        # Injection seams for the retry tests: a recorded fake clock and a
        # pinned jitter make the whole backoff schedule assertable.
        self._sleep = sleep
        self._rng = rng
        # One keep-alive connection per thread (http.client connections are
        # not thread-safe); client-side transport stats behind one lock.
        self._local = threading.local()
        self._stats_lock = threading.Lock()
        self._stats = {"connections_opened": 0, "reconnects": 0}

    def backoff_delay(self, attempt: int, retry_after: float | None = None) -> float:
        """The delay before retry ``attempt`` (0-based), jitter applied."""
        return self.backoff.delay(attempt, retry_after)

    # ----------------------------------------------------------------- #
    # Transport: per-thread keep-alive connections
    # ----------------------------------------------------------------- #
    @property
    def stats(self) -> dict:
        """Client-side transport counters, copied under the lock.

        ``connections_opened`` counts fresh TCP connections (one per thread
        in the steady state), ``reconnects`` counts kept-alive connections
        found stale on reuse (the server closed them between calls).
        """
        with self._stats_lock:
            return dict(self._stats)

    def _count(self, name: str) -> None:
        with self._stats_lock:
            self._stats[name] += 1

    def _connection(self) -> tuple[http.client.HTTPConnection, bool]:
        """This thread's connection and whether it is being *reused*."""
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            return connection, True
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        self._local.connection = connection
        self._count("connections_opened")
        return connection, False

    def _drop_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        self._local.connection = None
        if connection is not None:
            connection.close()

    def close(self) -> None:
        """Close *this thread's* kept-alive connection (idempotent).

        Other threads' connections close when their thread ends (or are
        reaped with the client object); a closed client remains usable --
        the next call simply opens a fresh connection.
        """
        self._drop_connection()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _exchange(self, verb: str, path: str, body: bytes | None, headers: dict):
        """One request/response over this thread's connection.

        A *reused* connection that fails at the transport layer is presumed
        stale -- the server closed it between calls, which HTTP/1.1
        keep-alive explicitly allows -- so it is dropped and the exchange
        retried once on a fresh connection (counted in ``reconnects``).  A
        *fresh* connection failing the same way is a real transport error
        and propagates to the retry loop.
        """
        connection, reused = self._connection()
        try:
            connection.request(verb, path, body=body, headers=headers)
            response = connection.getresponse()
            return response, response.read()
        except (http.client.HTTPException, ConnectionError, TimeoutError, OSError):
            self._drop_connection()
            if not reused:
                raise
            self._count("reconnects")
        connection, _ = self._connection()
        try:
            connection.request(verb, path, body=body, headers=headers)
            response = connection.getresponse()
            return response, response.read()
        except (http.client.HTTPException, ConnectionError, TimeoutError, OSError):
            self._drop_connection()
            raise

    def _request(self, verb: str, path: str, payload: dict | None = None) -> dict:
        last_error: Exception | None = None
        started = self._clock()
        for attempt in range(self.retries + 1):
            retry_after = None
            try:
                return self._request_once(verb, path, payload)
            except ServiceError as error:
                if not error.retryable or attempt >= self.retries:
                    raise
                retry_after = error.retry_after
                last_error = error
            except (ConnectionError, TimeoutError, OSError) as error:
                # The connection itself failed (refused, reset, timed out):
                # nothing reached the evaluation layer, so a retry cannot
                # duplicate work.
                if attempt >= self.retries:
                    raise
                last_error = error
            delay = self.backoff_delay(attempt, retry_after)
            if (
                self.max_elapsed_s is not None
                and self._clock() - started + delay > self.max_elapsed_s
            ):
                # The budget expired: sleeping again -- even for an
                # honoured Retry-After -- would overrun the caller's total
                # deadline.  Surface the last failure as-is (the typed
                # ServiceError when the server answered).
                raise last_error
            self._sleep(delay)
        raise last_error  # pragma: no cover - the loop always returns or raises

    def _request_once(self, verb: str, path: str, payload: dict | None = None) -> dict:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        headers = {"Content-Type": "application/json"} if body is not None else {}
        response, raw = self._exchange(verb, path, body, headers)
        try:
            data = json.loads(raw) if raw else {}
        except json.JSONDecodeError as error:
            raise ServiceError(
                response.status,
                f"non-JSON response: {error}",
                trace_id=response.getheader("x-repro-trace-id"),
            ) from error
        if response.status >= 400:
            if isinstance(data, Mapping):
                message = data.get("error", raw.decode("utf-8", "replace"))
                code = data.get("code")
                trace_id = data.get("trace_id")
            else:
                message, code, trace_id = raw.decode("utf-8", "replace"), None, None
            raise ServiceError(
                response.status,
                message,
                code=code,
                retry_after=_parse_retry_after(response.getheader("Retry-After")),
                trace_id=trace_id or response.getheader("x-repro-trace-id"),
            )
        return data

    # ----------------------------------------------------------------- #
    # Evaluation
    # ----------------------------------------------------------------- #
    def evaluate_detail(
        self,
        model=None,
        method: str = "",
        *,
        scenario: str | None = None,
        options: Mapping[str, Any] | None = None,
        seed: int | None = None,
        p_scale: float = 1.0,
        q_scale: float = 1.0,
        timeout_ms: float | None = None,
    ) -> tuple[EvaluationResult, dict]:
        """One evaluation, returning ``(result, served)``.

        ``served`` is the server's provenance record: ``cached`` (``None``,
        ``"lru"`` or ``"disk"``), ``batched`` and ``group_size`` -- how the
        response was produced, useful for tests and capacity work.
        ``timeout_ms`` is the per-request server-side deadline (a 504 with
        code ``deadline_exceeded`` when overrun).
        """
        payload: dict[str, Any] = {**_model_payload(model, scenario), "method": method}
        if options:
            payload["options"] = dict(options)
        if seed is not None:
            payload["seed"] = seed
        if p_scale != 1.0:
            payload["p_scale"] = p_scale
        if q_scale != 1.0:
            payload["q_scale"] = q_scale
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        data = self._request("POST", "/v1/evaluate", payload)
        return EvaluationResult.from_dict(data["result"]), data.get("served", {})

    def evaluate(self, model=None, method: str = "", **kwargs) -> EvaluationResult:
        """One evaluation; the remote analogue of :func:`repro.evaluate`."""
        result, _ = self.evaluate_detail(model, method, **kwargs)
        return result

    def evaluate_batch(
        self,
        model=None,
        requests: Sequence | None = None,
        *,
        scenario: str | None = None,
        seed: int | None = None,
        timeout_ms: float | None = None,
    ) -> list[EvaluationResult]:
        """Many methods on one model; the remote :func:`repro.evaluate_batch`."""
        if not requests:
            raise ValueError("evaluate_batch needs a non-empty sequence of requests")
        wire: list[Any] = []
        for request in requests:
            coerced = EvaluationRequest.coerce(request)
            wire.append({"method": coerced.method, **coerced.option_dict()})
        payload: dict[str, Any] = {**_model_payload(model, scenario), "requests": wire}
        if seed is not None:
            payload["seed"] = seed
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        data = self._request("POST", "/v1/evaluate/batch", payload)
        return [EvaluationResult.from_dict(record) for record in data["results"]]

    # ----------------------------------------------------------------- #
    # Introspection
    # ----------------------------------------------------------------- #
    def methods(self) -> list[dict]:
        """The registry's method schemas (``repro methods`` as JSON)."""
        return self._request("GET", "/v1/methods")["methods"]

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def health_peers(self) -> dict:
        """The shared health view (router eject/readmit table, shard status)."""
        return self._request("GET", "/v1/health/peers")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")
