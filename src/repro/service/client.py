""":class:`ServiceClient`: the stdlib Python client for the evaluation service.

A thin, thread-safe wrapper over ``http.client`` that speaks the service's
JSON protocol and returns the same typed
:class:`~repro.api.results.EvaluationResult` objects the in-process API
produces -- swapping ``repro.evaluate(model, ...)`` for
``client.evaluate(model, ...)`` changes where the work runs, not what comes
back.  Each call opens its own connection, so one client instance can be
shared freely across threads (the concurrent-client pattern that triggers
micro-batching; see ``examples/service_client.py``).
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Mapping, Sequence

from repro.api.results import EvaluationRequest, EvaluationResult

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx service response: carries the HTTP status and the message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


def _model_payload(model, scenario: str | None) -> dict:
    if (model is None) == (scenario is None):
        raise ValueError("provide exactly one of model and scenario")
    if scenario is not None:
        return {"scenario": scenario}
    if hasattr(model, "to_dict"):
        return {"model": model.to_dict()}
    if isinstance(model, Mapping):
        return {"model": dict(model)}
    raise ValueError(f"model must be a FaultModel or a mapping, got {type(model).__name__}")


class ServiceClient:
    """Talk to a running ``repro serve`` instance."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8000, timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, verb: str, path: str, payload: dict | None = None) -> dict:
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None if payload is None else json.dumps(payload).encode("utf-8")
            headers = {"Content-Type": "application/json"} if body is not None else {}
            connection.request(verb, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                data = json.loads(raw) if raw else {}
            except json.JSONDecodeError as error:
                raise ServiceError(response.status, f"non-JSON response: {error}") from error
            if response.status >= 400:
                message = data.get("error", raw.decode("utf-8", "replace"))
                raise ServiceError(response.status, message)
            return data
        finally:
            connection.close()

    # ----------------------------------------------------------------- #
    # Evaluation
    # ----------------------------------------------------------------- #
    def evaluate_detail(
        self,
        model=None,
        method: str = "",
        *,
        scenario: str | None = None,
        options: Mapping[str, Any] | None = None,
        seed: int | None = None,
        p_scale: float = 1.0,
        q_scale: float = 1.0,
    ) -> tuple[EvaluationResult, dict]:
        """One evaluation, returning ``(result, served)``.

        ``served`` is the server's provenance record: ``cached`` (``None``,
        ``"lru"`` or ``"disk"``), ``batched`` and ``group_size`` -- how the
        response was produced, useful for tests and capacity work.
        """
        payload: dict[str, Any] = {**_model_payload(model, scenario), "method": method}
        if options:
            payload["options"] = dict(options)
        if seed is not None:
            payload["seed"] = seed
        if p_scale != 1.0:
            payload["p_scale"] = p_scale
        if q_scale != 1.0:
            payload["q_scale"] = q_scale
        data = self._request("POST", "/v1/evaluate", payload)
        return EvaluationResult.from_dict(data["result"]), data.get("served", {})

    def evaluate(self, model=None, method: str = "", **kwargs) -> EvaluationResult:
        """One evaluation; the remote analogue of :func:`repro.evaluate`."""
        result, _ = self.evaluate_detail(model, method, **kwargs)
        return result

    def evaluate_batch(
        self,
        model=None,
        requests: Sequence | None = None,
        *,
        scenario: str | None = None,
        seed: int | None = None,
    ) -> list[EvaluationResult]:
        """Many methods on one model; the remote :func:`repro.evaluate_batch`."""
        if not requests:
            raise ValueError("evaluate_batch needs a non-empty sequence of requests")
        wire: list[Any] = []
        for request in requests:
            coerced = EvaluationRequest.coerce(request)
            wire.append({"method": coerced.method, **coerced.option_dict()})
        payload: dict[str, Any] = {**_model_payload(model, scenario), "requests": wire}
        if seed is not None:
            payload["seed"] = seed
        data = self._request("POST", "/v1/evaluate/batch", payload)
        return [EvaluationResult.from_dict(record) for record in data["results"]]

    # ----------------------------------------------------------------- #
    # Introspection
    # ----------------------------------------------------------------- #
    def methods(self) -> list[dict]:
        """The registry's method schemas (``repro methods`` as JSON)."""
        return self._request("GET", "/v1/methods")["methods"]

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")
