"""The evaluation service: an async micro-batching server over the batched kernels.

A dependency-free (stdlib ``asyncio`` + ``http.client``) serving layer that
turns concurrent independent evaluation requests into the batched multi-point
evaluations the sweep kernels make cheap:

* :mod:`~repro.service.protocol` -- the JSON wire protocol: a lossless
  transport of :class:`~repro.api.EvaluationRequest` /
  :class:`~repro.api.EvaluationResult` plus the content-addressed request
  identity (digest and batch-group key, shared with the study runner via
  :mod:`repro.grouping`);
* :mod:`~repro.service.batcher` -- the micro-batcher: requests in flight
  during a short window that share (model digest, method, options, seed) and
  differ only in the batchable ``p_scale`` / ``q_scale`` axis are dispatched
  as *one* batched-kernel call;
* :mod:`~repro.service.worker` -- the picklable execution functions the
  process worker pool runs, byte-identical to :func:`repro.evaluate` /
  :func:`repro.evaluate_sweep`;
* :mod:`~repro.service.cache` -- the response cache tiers: in-process LRU,
  the shared on-disk :class:`~repro.cache.ResultCache`, and the cluster's
  remote tier (peer shards' ``/v1/cache`` surface);
* :mod:`~repro.service.http` -- the shared asyncio HTTP/1.1 framing used by
  both this server and the cluster shard router;
* :mod:`~repro.service.server` -- the asyncio HTTP server
  (``/v1/evaluate``, ``/v1/evaluate/batch``, ``/v1/methods``, ``/v1/cache``,
  ``/healthz``, ``/metrics``) behind ``repro serve``;
* :mod:`~repro.service.client` -- :class:`ServiceClient`, the stdlib Python
  client (per-thread keep-alive connections, typed retries).
"""

from repro.service.client import BackoffPolicy, ServiceClient, ServiceError
from repro.service.server import EvaluationServer, WorkerCrashError, start_in_background

__all__ = [
    "BackoffPolicy",
    "EvaluationServer",
    "ServiceClient",
    "ServiceError",
    "WorkerCrashError",
    "start_in_background",
]
