"""The service response cache: an in-process LRU over the shared disk cache.

Two tiers, probed in order:

* **LRU** -- a bounded in-process mapping from request digest to the exact
  wire record previously served.  Warm traffic is answered without touching
  the executor, the disk or even a JSON re-encode of the metrics;
* **disk** -- the shared content-addressed :class:`repro.cache.ResultCache`
  (``repro serve --cache-dir``), the same format and key scheme the study
  runner uses.  Entries written by the service are study-shaped
  (``{"digest", "payload", "metrics"}``); deterministic-method entries
  warmed by a study over the same inline model are served to service
  traffic directly, and survive server restarts.

The digest covers everything a response depends on *except* how it was
computed -- batched-kernel and scalar values share a key, exactly like study
cache entries across ``batch=True``/``batch=False`` runs.  A warm hit
therefore returns whichever equally valid estimate was computed first;
that is the documented CRN trade, not drift.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Mapping

from repro.cache import ResultCache

__all__ = ["ResponseCache"]


class ResponseCache:
    """Bounded LRU response store with an optional disk tier."""

    def __init__(self, max_entries: int = 1024, disk: ResultCache | None = None) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be a positive integer, got {max_entries}")
        self.max_entries = max_entries
        self.disk = disk
        self._records: OrderedDict[str, dict] = OrderedDict()

    def get_local(self, digest: str) -> dict | None:
        """The LRU tier: the previously served wire record, freshened."""
        record = self._records.get(digest)
        if record is not None:
            self._records.move_to_end(digest)
        return record

    def get_disk(self, digest: str) -> dict | None:
        """The disk tier: the cached entry's metric mapping, or ``None``."""
        if self.disk is None:
            return None
        entry = self.disk.load(digest)
        if entry is None:
            return None
        return entry["metrics"]

    def put_local(self, digest: str, record: Mapping[str, Any]) -> None:
        self._records[digest] = dict(record)
        self._records.move_to_end(digest)
        while len(self._records) > self.max_entries:
            self._records.popitem(last=False)

    def store_disk(
        self, digest: str, record: Mapping[str, Any], payload: Mapping[str, Any]
    ) -> None:
        """Write the disk-tier entry (a no-op without a disk tier).

        Split out from :meth:`put` so the server can run just the file I/O
        on an executor while the LRU insert stays on the event loop.
        """
        if self.disk is not None:
            self.disk.store(
                digest,
                {"digest": digest, "payload": dict(payload), "metrics": dict(record["metrics"])},
            )

    def put(self, digest: str, record: Mapping[str, Any], payload: Mapping[str, Any]) -> None:
        """Store a freshly computed record in both tiers."""
        self.put_local(digest, record)
        self.store_disk(digest, record, payload)

    def __len__(self) -> int:
        return len(self._records)
