"""The service response cache: an in-process LRU over disk and remote tiers.

Three tiers, probed in order:

* **LRU** -- a bounded in-process mapping from request digest to the exact
  wire record previously served.  Warm traffic is answered without touching
  the executor, the disk or even a JSON re-encode of the metrics;
* **disk** -- the shared content-addressed :class:`repro.cache.ResultCache`
  (``repro serve --cache-dir``), the same format and key scheme the study
  runner uses.  Entries written by the service are study-shaped
  (``{"digest", "payload", "metrics"}``); deterministic-method entries
  warmed by a study over the same inline model are served to service
  traffic directly, and survive server restarts;
* **remote** -- the shared cluster tier (``repro serve --cache-peer URL``):
  on a local miss, peer shards are asked over their ``GET /v1/cache/<digest>``
  surface.  Peers answer from their *local* tiers only (never their own
  peers), so probes cannot recurse; a hit back-fills this shard's LRU and
  disk, so a warm shard answers for a cold one exactly once per key.

The digest covers everything a response depends on *except* how it was
computed -- batched-kernel and scalar values share a key, exactly like study
cache entries across ``batch=True``/``batch=False`` runs.  A warm hit
therefore returns whichever equally valid estimate was computed first;
that is the documented CRN trade, not drift.
"""

from __future__ import annotations

import http.client
import json
from collections import OrderedDict
from typing import Any, Mapping
from urllib.parse import urlsplit

from repro.cache import ResultCache

__all__ = ["RemoteCacheClient", "ResponseCache", "record_from_entry"]


def record_from_entry(entry: Mapping[str, Any]) -> dict | None:
    """Rebuild a wire result record from a study-shaped cache entry.

    The canonical payload carries the method name, its resolved options and
    the seed entropy (``payload["method"]`` is ``{"name": ..., **options}``),
    so a full :class:`~repro.api.results.EvaluationResult` record can be
    reconstituted from the entry alone -- which is what lets a ``PUT
    /v1/cache/<digest>`` populate the receiving shard's LRU, not just its
    disk.  Returns ``None`` for entries without a usable payload (legacy or
    foreign files); those still serve through the metrics-only path.
    """
    payload = entry.get("payload")
    metrics = entry.get("metrics")
    if not isinstance(payload, Mapping) or not isinstance(metrics, Mapping):
        return None
    method = payload.get("method")
    if not isinstance(method, Mapping) or "name" not in method:
        return None
    options = {key: value for key, value in method.items() if key != "name"}
    return {
        "method": method["name"],
        "options": options,
        "metrics": dict(metrics),
        "seed_entropy": payload.get("entropy"),
        "elapsed_seconds": 0.0,
    }


class RemoteCacheClient:
    """Blocking client for peer shards' ``/v1/cache/<digest>`` surface.

    Runs on the server's I/O thread executor (never the event loop).  A
    peer that is down, slow or answering garbage is a cache *miss*, not an
    error -- the remote tier degrades to recomputation, the same contract as
    a damaged disk entry.  ``timeout`` is deliberately short: a dead peer
    must cost milliseconds, not a request deadline.
    """

    def __init__(self, peers: tuple[str, ...], timeout: float = 2.0) -> None:
        self.peers = tuple(peers)
        self.timeout = timeout

    @staticmethod
    def _split(peer: str) -> tuple[str, int]:
        parts = urlsplit(peer if "//" in peer else f"http://{peer}")
        if not parts.hostname:
            raise ValueError(f"cache peer {peer!r} has no host")
        return parts.hostname, parts.port or 80

    def get(self, digest: str) -> dict | None:
        """Probe every peer in order; the first hit's entry wins."""
        for peer in self.peers:
            entry = self._get_one(peer, digest)
            if entry is not None:
                return entry
        return None

    def _get_one(self, peer: str, digest: str) -> dict | None:
        try:
            host, port = self._split(peer)
            connection = http.client.HTTPConnection(host, port, timeout=self.timeout)
            try:
                connection.request("GET", f"/v1/cache/{digest}")
                response = connection.getresponse()
                raw = response.read()
            finally:
                connection.close()
            if response.status != 200:
                return None
            entry = json.loads(raw)
        except (OSError, ValueError, http.client.HTTPException):
            return None
        if not isinstance(entry, dict) or not isinstance(entry.get("metrics"), dict):
            return None
        return entry


class ResponseCache:
    """Bounded LRU response store with optional disk and remote tiers."""

    def __init__(
        self,
        max_entries: int = 1024,
        disk: ResultCache | None = None,
        remote: RemoteCacheClient | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be a positive integer, got {max_entries}")
        self.max_entries = max_entries
        self.disk = disk
        self.remote = remote
        self._records: OrderedDict[str, dict] = OrderedDict()

    def get_local(self, digest: str) -> dict | None:
        """The LRU tier: the previously served wire record, freshened."""
        record = self._records.get(digest)
        if record is not None:
            self._records.move_to_end(digest)
        return record

    def get_disk(self, digest: str) -> dict | None:
        """The disk tier: the cached entry's metric mapping, or ``None``."""
        if self.disk is None:
            return None
        entry = self.disk.load(digest)
        if entry is None:
            return None
        return entry["metrics"]

    def get_remote(self, digest: str) -> dict | None:
        """The remote tier: a peer shard's entry metrics, or ``None``.

        Blocking network I/O -- the server calls this off the event loop,
        exactly like the disk tier.
        """
        if self.remote is None:
            return None
        entry = self.remote.get(digest)
        if entry is None:
            return None
        return entry["metrics"]

    def entry_for(self, digest: str) -> dict | None:
        """The full study-shaped entry for ``digest`` from the *local* tiers.

        This is what ``GET /v1/cache/<digest>`` serves to peers: the disk
        entry when one exists (it carries the canonical payload), otherwise
        an entry rebuilt from the LRU record (metrics only -- still enough
        for the probing peer, which rebuilds the wire record from its own
        request context).  Peers are never probed here, so two shards
        pointing at each other cannot ping-pong a miss.
        """
        if self.disk is not None:
            entry = self.disk.load(digest)
            if entry is not None:
                return {"digest": digest, **entry} if "digest" not in entry else entry
        record = self.get_local(digest)
        if record is not None:
            return {"digest": digest, "metrics": dict(record["metrics"])}
        return None

    def put_local(self, digest: str, record: Mapping[str, Any]) -> None:
        self._records[digest] = dict(record)
        self._records.move_to_end(digest)
        while len(self._records) > self.max_entries:
            self._records.popitem(last=False)

    def store_disk(
        self, digest: str, record: Mapping[str, Any], payload: Mapping[str, Any]
    ) -> None:
        """Write the disk-tier entry (a no-op without a disk tier).

        Split out from :meth:`put` so the server can run just the file I/O
        on an executor while the LRU insert stays on the event loop.
        """
        if self.disk is not None:
            self.disk.store(
                digest,
                {"digest": digest, "payload": dict(payload), "metrics": dict(record["metrics"])},
            )

    def store_entry(self, digest: str, entry: Mapping[str, Any]) -> bool:
        """Accept a pushed entry (``PUT /v1/cache/<digest>``) into local tiers.

        The LRU is filled when the entry's payload is rich enough to rebuild
        a wire record; the disk tier is filled when it exists and the entry
        carries its payload (the study-compatible shape).  Returns whether
        anything was stored.
        """
        metrics = entry.get("metrics")
        if not isinstance(metrics, Mapping):
            return False
        stored = False
        record = record_from_entry(entry)
        if record is not None:
            self.put_local(digest, record)
            stored = True
        if self.disk is not None and isinstance(entry.get("payload"), Mapping):
            self.disk.store(
                digest,
                {
                    "digest": digest,
                    "payload": dict(entry["payload"]),
                    "metrics": dict(metrics),
                },
            )
            stored = True
        return stored

    def put(self, digest: str, record: Mapping[str, Any], payload: Mapping[str, Any]) -> None:
        """Store a freshly computed record in both local tiers."""
        self.put_local(digest, record)
        self.store_disk(digest, record, payload)

    def __len__(self) -> int:
        return len(self._records)
