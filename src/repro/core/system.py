"""High-level system facades.

:class:`SingleVersionSystem` and :class:`OneOutOfTwoSystem` wrap a
:class:`~repro.core.fault_model.FaultModel` and expose the paper's quantities
-- mean PFD, standard deviation, probability of (common) faults, exact and
approximate PFD distributions, confidence bounds -- behind one object each, so
example scripts and the assessment module can speak in terms of *systems*
rather than formulas.  Both share the implementation through a common base
parameterised by the number of independently developed versions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fault_model import FaultModel
from repro.core.moments import pfd_moments
from repro.core.no_common_faults import (
    fault_count_distribution,
    prob_any_common_fault,
    prob_fault_free_r_versions,
)
from repro.core.normal_approximation import berry_esseen_error, normal_approximation
from repro.core.pfd_distribution import exact_pfd_distribution, pfd_exceedance_probability
from repro.stats.discrete import DiscreteDistribution
from repro.stats.normal import NormalApproximation
from repro.stats.poisson_binomial import PoissonBinomial

__all__ = ["SingleVersionSystem", "OneOutOfTwoSystem", "OneOutOfRSystem"]


@dataclass(frozen=True)
class OneOutOfRSystem:
    """A 1-out-of-r system of ``versions`` independently developed versions.

    With ``versions = 1`` this is a single-version (non-diverse) system; with
    ``versions = 2`` it is the paper's dual-channel protection system of
    Fig. 1, in which the system fails on a demand only if *every* channel
    fails on it.
    """

    model: FaultModel
    versions: int

    def __post_init__(self) -> None:
        if self.versions < 1:
            raise ValueError(f"versions must be a positive integer, got {self.versions}")

    # -- moments ------------------------------------------------------- #
    def mean_pfd(self) -> float:
        """Mean probability of failure on demand."""
        return pfd_moments(self.model, self.versions).mean

    def variance_pfd(self) -> float:
        """Variance of the probability of failure on demand."""
        return pfd_moments(self.model, self.versions).variance

    def std_pfd(self) -> float:
        """Standard deviation of the probability of failure on demand."""
        return pfd_moments(self.model, self.versions).std

    # -- fault counts --------------------------------------------------- #
    def prob_fault_free(self) -> float:
        """Probability that no fault is common to all channels."""
        return prob_fault_free_r_versions(self.model, self.versions)

    def prob_any_fault(self) -> float:
        """Probability that at least one fault is common to all channels."""
        return prob_any_common_fault(self.model, self.versions)

    def fault_count_distribution(self) -> PoissonBinomial:
        """Distribution of the number of faults common to all channels."""
        return fault_count_distribution(self.model, self.versions)

    # -- distributions and bounds --------------------------------------- #
    def pfd_distribution(self, max_support: int | None = 4096) -> DiscreteDistribution:
        """Exact distribution of the system PFD."""
        return exact_pfd_distribution(self.model, self.versions, max_support)

    def normal_approximation(self) -> NormalApproximation:
        """Normal approximation to the PFD distribution (Section 5)."""
        return normal_approximation(self.model, self.versions)

    def normal_bound(self, confidence: float) -> float:
        """Confidence bound on the PFD under the normal approximation."""
        return self.normal_approximation().bound_for_confidence(confidence)

    def exact_bound(self, confidence: float, max_support: int | None = 4096) -> float:
        """Confidence bound on the PFD from the exact distribution."""
        return self.pfd_distribution(max_support).quantile(confidence)

    def prob_pfd_exceeds(self, threshold: float, max_support: int | None = 4096) -> float:
        """Probability that the system PFD exceeds a required bound ``theta_R``."""
        return pfd_exceedance_probability(self.model, threshold, self.versions, max_support)

    def normal_approximation_error_bound(self) -> float:
        """Berry-Esseen bound on the normal-approximation error for this system."""
        return berry_esseen_error(self.model, self.versions)

    # -- sampling -------------------------------------------------------- #
    def sample_pfd(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Sample system PFD values by simulating the fault creation process.

        Each sample develops ``versions`` versions independently and sums the
        ``q_i`` of the faults common to all of them.
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        present_probability = self.model.p ** self.versions
        uniforms = rng.random((size, self.model.n))
        common = uniforms < present_probability[np.newaxis, :]
        return common @ self.model.q


class SingleVersionSystem(OneOutOfRSystem):
    """A single-version (non-diverse) system."""

    def __init__(self, model: FaultModel):
        super().__init__(model=model, versions=1)


class OneOutOfTwoSystem(OneOutOfRSystem):
    """The paper's 1-out-of-2, two-version diverse system (Fig. 1)."""

    def __init__(self, model: FaultModel):
        super().__init__(model=model, versions=2)

    def single_channel(self) -> SingleVersionSystem:
        """The corresponding single-version system, for gain comparisons."""
        return SingleVersionSystem(self.model)
