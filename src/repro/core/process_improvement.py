"""Effects of process improvement on the gain from diversity (Section 4.2).

The paper asks how the eq. (10) gain ratio ``P(N_2 > 0) / P(N_1 > 0)`` changes
when the development process improves, i.e. when fault-introduction
probabilities ``p_i`` decrease.  Two stylised improvements are analysed:

* **A single ``p_i`` decreases** (Section 4.2.1, Appendix A).  The partial
  derivative of the ratio with respect to ``p_i`` can be positive *or*
  negative, so improving the process can *reduce* the gain from diversity --
  the paper's counter-intuitive headline result.  For ``n = 2`` there is a
  closed-form reversal point (the value of ``p_1`` at which the derivative
  changes sign), implemented in :func:`two_fault_reversal_point`.

  *Reproduction note.*  Re-deriving the n = 2 stationarity condition gives
  ``p_1* = p_2 (sqrt(2 (1 + p_2)) - (1 + p_2)) / (1 - p_2^2)``, which is
  *smaller* than ``p_2`` (e.g. ``p_2 = 0.5 -> p_1* ~= 0.155``), whereas the
  paper's prose asserts the root exceeds the other fault's probability.
  Numerical evaluation of the ratio confirms the root computed here; the
  qualitative conclusion (the sign can go either way) is unchanged.  See
  DESIGN.md section 3.5 and experiment E4.

* **All ``p_i`` decrease proportionally** (Section 4.2.2, Appendix B): writing
  ``p_i = k b_i``, the derivative of the ratio with respect to ``k`` is always
  non-negative, so this kind of improvement always *increases* the gain from
  diversity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import optimize

from repro.core.fault_model import FaultModel
from repro.core.no_common_faults import prob_any_common_fault, prob_any_fault, risk_ratio

__all__ = [
    "risk_ratio_partial_derivative",
    "risk_ratio_gradient",
    "proportional_improvement_derivative",
    "two_fault_reversal_point",
    "single_fault_reversal_point",
    "risk_ratio_single_fault_sweep",
    "risk_ratio_proportional_sweep",
    "ImprovementSweepResult",
]


def risk_ratio_partial_derivative(model: FaultModel, index: int) -> float:
    """Analytic partial derivative of the eq. (10) ratio with respect to ``p_index``.

    Writing ``A = 1 - prod(1 - p_j^2)`` and ``B = 1 - prod(1 - p_j)``:

    * ``dA/dp_i = 2 p_i prod_{j != i} (1 - p_j^2)``
    * ``dB/dp_i = prod_{j != i} (1 - p_j)``
    * ``d(A/B)/dp_i = (dA/dp_i * B - A * dB/dp_i) / B^2``

    A *negative* value means that decreasing ``p_index`` (improving the
    process on that fault class) increases the ratio, i.e. reduces the gain
    from diversity.  Raises :class:`ValueError` when ``B = 0`` (all ``p_i``
    zero), where the ratio is not differentiable in a useful sense.
    """
    if not 0 <= index < model.n:
        raise IndexError(f"fault index {index} out of range for n={model.n}")
    p = model.p
    risk_single = prob_any_fault(model)
    if risk_single == 0.0:
        raise ValueError("the risk ratio derivative is undefined when all p_i are zero")
    risk_common = prob_any_common_fault(model)
    others = np.ones(model.n, dtype=bool)
    others[index] = False
    partial_common = 2.0 * p[index] * float(np.prod(1.0 - p[others] ** 2))
    partial_single = float(np.prod(1.0 - p[others]))
    return (partial_common * risk_single - risk_common * partial_single) / risk_single**2


def risk_ratio_gradient(model: FaultModel) -> np.ndarray:
    """Vector of partial derivatives of the eq. (10) ratio with respect to every ``p_i``."""
    return np.array([risk_ratio_partial_derivative(model, i) for i in range(model.n)])


def proportional_improvement_derivative(base_model: FaultModel, k: float) -> float:
    """Derivative of the eq. (10) ratio with respect to the quality factor ``k``.

    The Appendix B parameterisation writes ``p_i = k b_i`` with ``b_i`` the
    probabilities of ``base_model``.  By the chain rule the derivative with
    respect to ``k`` is ``sum_i b_i * d(ratio)/dp_i`` evaluated at
    ``p = k b``.  Appendix B proves this is non-negative for all admissible
    parameters, i.e. proportional process improvement (decreasing ``k``)
    always decreases the ratio and therefore always increases the gain from
    diversity.
    """
    if k <= 0.0:
        raise ValueError(f"k must be positive, got {k}")
    scaled = base_model.scaled(k)
    gradient = risk_ratio_gradient(scaled)
    return float(np.dot(gradient, base_model.p))


def two_fault_reversal_point(p_other: float) -> float:
    """Closed-form reversal point for a model with exactly two potential faults.

    For ``n = 2`` the derivative of the eq. (10) ratio with respect to ``p_1``
    (holding ``p_2 = p_other`` fixed) vanishes at::

        p_1* = p_other * (sqrt(2 (1 + p_other)) - (1 + p_other)) / (1 - p_other^2)

    For ``p_1 < p_1*`` the derivative is negative (further improving that
    single fault class reduces the gain from diversity); for ``p_1 > p_1*`` it
    is positive.  This corresponds to Appendix A of the paper (see the module
    docstring for the erratum on the root's location relative to ``p_other``).
    """
    if not 0.0 < p_other < 1.0:
        raise ValueError(f"p_other must be in (0, 1), got {p_other}")
    return float(
        p_other
        * (np.sqrt(2.0 * (1.0 + p_other)) - (1.0 + p_other))
        / (1.0 - p_other**2)
    )


def single_fault_reversal_point(
    model: FaultModel, index: int, tolerance: float = 1e-12
) -> float | None:
    """Numerically locate the reversal point of fault ``index`` for a general model.

    Returns the value of ``p_index`` (all other parameters held fixed) at which
    the partial derivative of the eq. (10) ratio changes sign, or ``None`` when
    the derivative keeps the same sign throughout ``(0, 1)``.
    """
    if not 0 <= index < model.n:
        raise IndexError(f"fault index {index} out of range for n={model.n}")

    def derivative_at(value: float) -> float:
        return risk_ratio_partial_derivative(model.with_probability(index, value), index)

    low, high = 1e-9, 1.0 - 1e-9
    derivative_low, derivative_high = derivative_at(low), derivative_at(high)
    if np.sign(derivative_low) == np.sign(derivative_high):
        return None
    root = optimize.brentq(derivative_at, low, high, xtol=tolerance)
    return float(root)


@dataclass(frozen=True)
class ImprovementSweepResult:
    """The result of sweeping a process-improvement parameter.

    Attributes
    ----------
    parameter_values:
        The swept values (either a single ``p_i`` or the quality factor ``k``).
    risk_ratios:
        The eq. (10) ratio at each value.
    risk_single:
        ``P(N_1 > 0)`` at each value (the single-version risk, to show that the
        process improvement does improve reliability even when it reduces the
        diversity gain).
    risk_common:
        ``P(N_2 > 0)`` at each value.
    """

    parameter_values: np.ndarray
    risk_ratios: np.ndarray
    risk_single: np.ndarray
    risk_common: np.ndarray

    def ratio_is_monotone_nondecreasing(self, atol: float = 1e-12) -> bool:
        """True when the ratio never decreases as the parameter increases."""
        return bool(np.all(np.diff(self.risk_ratios) >= -atol))

    def argmin_ratio(self) -> float:
        """Parameter value at which the ratio (and hence the gain loss) is smallest."""
        return float(self.parameter_values[int(np.argmin(self.risk_ratios))])


def risk_ratio_single_fault_sweep(
    model: FaultModel, index: int, values: Sequence[float]
) -> ImprovementSweepResult:
    """Sweep ``p_index`` over ``values`` and record the eq. (10) ratio (Section 4.2.1)."""
    value_array = np.asarray(values, dtype=float)
    ratios = np.empty_like(value_array)
    singles = np.empty_like(value_array)
    commons = np.empty_like(value_array)
    for position, value in enumerate(value_array):
        candidate = model.with_probability(index, float(value))
        ratios[position] = risk_ratio(candidate)
        singles[position] = prob_any_fault(candidate)
        commons[position] = prob_any_common_fault(candidate)
    return ImprovementSweepResult(
        parameter_values=value_array,
        risk_ratios=ratios,
        risk_single=singles,
        risk_common=commons,
    )


def risk_ratio_proportional_sweep(
    base_model: FaultModel, k_values: Sequence[float]
) -> ImprovementSweepResult:
    """Sweep the quality factor ``k`` (``p_i = k b_i``) and record the ratio (Section 4.2.2)."""
    k_array = np.asarray(k_values, dtype=float)
    if np.any(k_array <= 0.0):
        raise ValueError("all k values must be positive")
    ratios = np.empty_like(k_array)
    singles = np.empty_like(k_array)
    commons = np.empty_like(k_array)
    for position, k in enumerate(k_array):
        candidate = base_model.scaled(float(k))
        ratios[position] = risk_ratio(candidate)
        singles[position] = prob_any_fault(candidate)
        commons[position] = prob_any_common_fault(candidate)
    return ImprovementSweepResult(
        parameter_values=k_array,
        risk_ratios=ratios,
        risk_single=singles,
        risk_common=commons,
    )
