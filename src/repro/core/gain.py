"""Assessor-facing summary of the gain from diversity.

Brings together the paper's three families of gain measures into one report:

* the **mean** gain ``mu_2 / mu_1`` with its eq. (4) guaranteed bound
  ``p_max``;
* the **risk** gain of eq. (10), ``P(N_2 > 0) / P(N_1 > 0)`` -- relevant for
  the "very high-quality software" regime of Section 4;
* the **confidence-bound** gain ``(mu_2 + k sigma_2) / (mu_1 + k sigma_1)``
  with its eq. (12) guaranteed bound ``sqrt(p_max (1 + p_max))`` -- relevant
  for the many-small-faults regime of Section 5.

The summary also reports whether the versions-fail-independently claim
(``mu_2 = mu_1^2``) would be optimistic for the model at hand, reproducing the
Eckhardt-Lee / Littlewood-Miller comparison the paper re-derives in
Section 2.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bounds import mean_gain_factor, std_gain_factor
from repro.core.fault_model import FaultModel
from repro.core.moments import single_version_mean, single_version_std, two_version_mean, two_version_std
from repro.core.no_common_faults import risk_ratio
from repro.core.normal_approximation import bound_gain_ratio
from repro.stats.normal import k_factor_for_confidence

__all__ = ["DiversityGainSummary", "diversity_gain_summary"]


@dataclass(frozen=True)
class DiversityGainSummary:
    """A complete picture of the predicted gain from 1-out-of-2 diversity.

    All ratios compare the two-version system to a single version: smaller is
    better (more gain).  ``guaranteed_*`` entries are the paper's assessor
    bounds, which hold whatever the detailed parameters are, given only
    ``p_max``.
    """

    mean_single: float
    mean_pair: float
    std_single: float
    std_pair: float
    mean_ratio: float
    guaranteed_mean_ratio: float
    risk_ratio: float
    confidence: float
    k_factor: float
    bound_single: float
    bound_pair: float
    bound_ratio: float
    guaranteed_bound_ratio: float
    independence_mean: float

    @property
    def beta_factor(self) -> float:
        """The common-cause "beta factor" view of the mean gain.

        In common-cause failure modelling the beta factor is the fraction of a
        channel's failure probability that is common to both channels; under
        this model it equals ``mu_2 / mu_1`` exactly.
        """
        return self.mean_ratio

    @property
    def independence_is_optimistic(self) -> bool:
        """True when assuming independent version failures would under-state ``mu_2``.

        The EL/LM result re-derived in the paper: on average the two-version
        system is *worse* than the product of the single-version means, i.e.
        ``mu_2 >= mu_1^2``, with equality only in degenerate cases.
        """
        return self.mean_pair > self.independence_mean

    def as_dict(self) -> dict:
        """Plain-dictionary view for reporting."""
        return {
            "mean_single": self.mean_single,
            "mean_pair": self.mean_pair,
            "std_single": self.std_single,
            "std_pair": self.std_pair,
            "mean_ratio": self.mean_ratio,
            "guaranteed_mean_ratio": self.guaranteed_mean_ratio,
            "risk_ratio": self.risk_ratio,
            "confidence": self.confidence,
            "k_factor": self.k_factor,
            "bound_single": self.bound_single,
            "bound_pair": self.bound_pair,
            "bound_ratio": self.bound_ratio,
            "guaranteed_bound_ratio": self.guaranteed_bound_ratio,
            "beta_factor": self.beta_factor,
            "independence_mean": self.independence_mean,
            "independence_is_optimistic": self.independence_is_optimistic,
        }


def diversity_gain_summary(model: FaultModel, confidence: float = 0.99) -> DiversityGainSummary:
    """Compute the full gain summary for a model at a given confidence level.

    Parameters
    ----------
    model:
        The fault-creation model.
    confidence:
        Confidence level for the Section 5 bound comparison (default 99%,
        corresponding to ``k ~= 2.33`` as in the paper).
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    mean_single = single_version_mean(model)
    mean_pair = two_version_mean(model)
    std_single = single_version_std(model)
    std_pair = two_version_std(model)
    k = k_factor_for_confidence(confidence)
    bound_single = mean_single + k * std_single
    bound_pair = mean_pair + k * std_pair
    mean_ratio = mean_pair / mean_single if mean_single > 0.0 else 1.0
    return DiversityGainSummary(
        mean_single=mean_single,
        mean_pair=mean_pair,
        std_single=std_single,
        std_pair=std_pair,
        mean_ratio=mean_ratio,
        guaranteed_mean_ratio=mean_gain_factor(model.p_max),
        risk_ratio=risk_ratio(model),
        confidence=confidence,
        k_factor=k,
        bound_single=bound_single,
        bound_pair=bound_pair,
        bound_ratio=bound_gain_ratio(model, k),
        guaranteed_bound_ratio=std_gain_factor(model.p_max),
        independence_mean=mean_single**2,
    )
