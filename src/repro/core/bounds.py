"""Inequality lemmas and confidence-bound results (Sections 3.1 and 5.1).

The paper's practically usable outputs are *bounds* expressed in terms of
``p_max = max{p_1 .. p_n}``, because an assessor can plausibly bound the
probability of the most likely fault even when the full parameter set is
unknowable:

* eq. (4):  ``mu_2 <= p_max * mu_1``
* eq. (9):  ``sigma_2 <= sqrt(p_max (1 + p_max)) * sigma_1``
* eq. (11): ``mu_2 + k sigma_2 <= p_max mu_1 + k sqrt(p_max (1 + p_max)) sigma_1``
* eq. (12): ``mu_2 + k sigma_2 <= sqrt(p_max (1 + p_max)) (mu_1 + k sigma_1)``

and the Section 5.1 table of the factor ``sqrt(p_max (1 + p_max))`` for
``p_max in {0.5, 0.1, 0.01}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.fault_model import FaultModel
from repro.core.moments import (
    single_version_mean,
    single_version_std,
    two_version_mean,
    two_version_std,
)

__all__ = [
    "mean_gain_factor",
    "std_gain_factor",
    "mean_bound",
    "std_bound",
    "confidence_bound_from_moments",
    "confidence_bound_from_bound",
    "PmaxGainRow",
    "pmax_gain_table",
    "PAPER_PMAX_TABLE",
    "STD_CONTRACTION_THRESHOLD",
]

#: The largest ``p`` for which ``p^2 (1 - p^2) <= p (1 - p)`` holds, quoted in
#: Section 3.1.2 as ``(-1 + 5^0.5) / 2 = 0.618033987`` (the reciprocal of the
#: golden ratio).  Below this threshold every summand of ``sigma_2^2`` is
#: smaller than the corresponding summand of ``sigma_1^2``.
STD_CONTRACTION_THRESHOLD = (np.sqrt(5.0) - 1.0) / 2.0

#: The Section 5.1 table: ``p_max`` versus ``sqrt(p_max (1 + p_max))`` as
#: printed in the paper (three-decimal rounding).
PAPER_PMAX_TABLE = {0.5: 0.866, 0.1: 0.332, 0.01: 0.100}


def _validate_pmax(p_max: float) -> float:
    if not 0.0 <= p_max <= 1.0:
        raise ValueError(f"p_max must be in [0, 1], got {p_max}")
    return float(p_max)


def mean_gain_factor(p_max: float) -> float:
    """The eq. (4) factor: ``mu_2 <= p_max * mu_1``.

    Interpreting the paper's example: if quality assurance convinces an
    assessor that the most likely fault has probability at most 10%, the
    two-version system has, on average, at least 10 times better PFD than a
    single version.
    """
    return _validate_pmax(p_max)


def std_gain_factor(p_max: float) -> float:
    """The eq. (9) / eq. (12) factor ``sqrt(p_max (1 + p_max))``."""
    p_max = _validate_pmax(p_max)
    return float(np.sqrt(p_max * (1.0 + p_max)))


def mean_bound(model: FaultModel) -> float:
    """Upper bound on ``mu_2`` from eq. (4): ``p_max * mu_1``."""
    return mean_gain_factor(model.p_max) * single_version_mean(model)


def std_bound(model: FaultModel) -> float:
    """Upper bound on ``sigma_2`` from eq. (9): ``sqrt(p_max(1+p_max)) * sigma_1``."""
    return std_gain_factor(model.p_max) * single_version_std(model)


def confidence_bound_from_moments(
    mu_1: float, sigma_1: float, p_max: float, k: float
) -> float:
    """Eq. (11): bound on ``mu_2 + k sigma_2`` given ``mu_1`` and ``sigma_1``.

    ``mu_2 + k sigma_2 <= p_max mu_1 + k sqrt(p_max (1 + p_max)) sigma_1``.

    This is the tighter of the paper's two bounds, available when the assessor
    has separate estimates of the single-version mean and standard deviation.
    """
    if mu_1 < 0.0 or sigma_1 < 0.0:
        raise ValueError("mu_1 and sigma_1 must be non-negative")
    if k < 0.0:
        raise ValueError(f"k must be non-negative, got {k}")
    p_max = _validate_pmax(p_max)
    return p_max * mu_1 + k * std_gain_factor(p_max) * sigma_1


def confidence_bound_from_bound(one_version_bound: float, p_max: float) -> float:
    """Eq. (12): bound on ``mu_2 + k sigma_2`` given only ``mu_1 + k sigma_1``.

    ``mu_2 + k sigma_2 <= sqrt(p_max (1 + p_max)) * (mu_1 + k sigma_1)``.

    The looser of the two bounds, applicable when the assessor only holds a
    single confidence bound for the one-version system rather than separate
    mean / standard-deviation estimates.
    """
    if one_version_bound < 0.0:
        raise ValueError(f"one_version_bound must be non-negative, got {one_version_bound}")
    return std_gain_factor(p_max) * one_version_bound


@dataclass(frozen=True)
class PmaxGainRow:
    """One row of the Section 5.1 table."""

    p_max: float
    gain_factor: float

    @property
    def improvement_factor(self) -> float:
        """The reciprocal of the gain factor -- "how many times better" the bound gets."""
        if self.gain_factor == 0.0:
            return float("inf")
        return 1.0 / self.gain_factor


def pmax_gain_table(p_max_values: Sequence[float] = (0.5, 0.1, 0.01)) -> list[PmaxGainRow]:
    """Regenerate the Section 5.1 table of ``p_max`` versus ``sqrt(p_max(1+p_max))``.

    The default argument reproduces exactly the three rows printed in the
    paper (0.5 -> 0.866, 0.1 -> 0.332, 0.01 -> 0.100).
    """
    return [PmaxGainRow(p_max=float(p), gain_factor=std_gain_factor(p)) for p in p_max_values]


def verify_mean_bound(model: FaultModel) -> tuple[float, float]:
    """Return ``(mu_2, p_max * mu_1)`` so callers can check eq. (4) numerically."""
    return two_version_mean(model), mean_bound(model)


def verify_std_bound(model: FaultModel) -> tuple[float, float]:
    """Return ``(sigma_2, sqrt(p_max(1+p_max)) * sigma_1)`` for checking eq. (9)."""
    return two_version_std(model), std_bound(model)


def verify_confidence_bound(model: FaultModel, k: float) -> tuple[float, float, float]:
    """Return the actual two-version bound and both paper bounds (eqs. 11, 12).

    The tuple is ``(mu_2 + k sigma_2, eq. (11) bound, eq. (12) bound)``;
    monotone ordering ``actual <= eq11 <= eq12`` should hold for every model
    (eq. (12) is derived from eq. (11) by a further relaxation).
    """
    mu_1, sigma_1 = single_version_mean(model), single_version_std(model)
    mu_2, sigma_2 = two_version_mean(model), two_version_std(model)
    actual = mu_2 + k * sigma_2
    from_moments = confidence_bound_from_moments(mu_1, sigma_1, model.p_max, k)
    from_bound = confidence_bound_from_bound(mu_1 + k * sigma_1, model.p_max)
    return actual, from_moments, from_bound
