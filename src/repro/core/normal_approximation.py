"""Confidence bounds under the normal approximation (Section 5 of the paper).

When there are many possible faults, each with small ``q_i``, the PFD is a sum
of many independent contributions and its distribution can be approximated by
a normal distribution (central limit theorem).  Reliability claims then take
the form of confidence bounds ``mu + k sigma``:

* :func:`normal_approximation` builds the approximating
  :class:`~repro.stats.normal.NormalApproximation` for a single version or for
  a 1-out-of-r system;
* :func:`bound_gain_ratio` and :func:`bound_difference` quantify the gain from
  diversity as the ratio / difference of the two bounds (Section 5.1 and the
  Section 5.2 measures);
* :func:`berry_esseen_error` bounds the error of the normal approximation, so
  its trustworthiness for a given model can be assessed (the paper points out
  that in practice "we will not know how good an approximation it is");
* :func:`worked_example_bounds` reproduces the Section 5.1 numerical example
  verbatim from ``(mu_1, sigma_1, p_max, k)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.bounds import confidence_bound_from_bound, confidence_bound_from_moments
from repro.core.fault_model import FaultModel
from repro.core.moments import pfd_moments
from repro.stats.normal import NormalApproximation, berry_esseen_bound

__all__ = [
    "normal_approximation",
    "bound_gain_ratio",
    "bound_difference",
    "berry_esseen_error",
    "WorkedExampleBounds",
    "worked_example_bounds",
    "bound_ratio_proportional_sweep",
    "bound_ratio_single_fault_sweep",
]


def normal_approximation(model: FaultModel, versions: int = 1) -> NormalApproximation:
    """The normal approximation to the PFD distribution of a 1-out-of-``versions`` system."""
    moments = pfd_moments(model, versions)
    return NormalApproximation(mean=moments.mean, std=moments.std)


def bound_gain_ratio(model: FaultModel, k: float) -> float:
    """The ratio ``(mu_2 + k sigma_2) / (mu_1 + k sigma_1)``.

    This is the Section 5 measure of the gain from diversity in terms of
    confidence bounds: the smaller the ratio, the greater the gain.  When the
    single-version bound is zero (a perfect process) the ratio is returned as
    1.0 by convention.
    """
    if k < 0.0:
        raise ValueError(f"k must be non-negative, got {k}")
    single = pfd_moments(model, 1)
    pair = pfd_moments(model, 2)
    denominator = single.bound(k)
    if denominator == 0.0:
        return 1.0
    return pair.bound(k) / denominator


def bound_difference(model: FaultModel, k: float) -> float:
    """The difference ``(mu_1 + k sigma_1) - (mu_2 + k sigma_2)``.

    Section 5.2 notes that, measured as a *difference*, the reliability gain
    "improves with any increase in any of the p_i"; this function supports
    checking that statement numerically.
    """
    if k < 0.0:
        raise ValueError(f"k must be non-negative, got {k}")
    return pfd_moments(model, 1).bound(k) - pfd_moments(model, 2).bound(k)


def berry_esseen_error(model: FaultModel, versions: int = 1) -> float:
    """Berry-Esseen bound on the normal-approximation error for the PFD CDF.

    The ``i``-th PFD contribution equals ``q_i`` with probability
    ``a_i = p_i**versions`` and 0 otherwise; after centring its variance is
    ``a_i (1 - a_i) q_i^2`` and its third absolute central moment is
    ``a_i (1 - a_i) ((1 - a_i)^2 + a_i^2) q_i^3``.
    """
    if versions < 1:
        raise ValueError(f"versions must be a positive integer, got {versions}")
    present = model.p ** versions
    variances = present * (1.0 - present) * model.q**2
    third_moments = present * (1.0 - present) * ((1.0 - present) ** 2 + present**2) * model.q**3
    return berry_esseen_bound(third_moments, variances)


@dataclass(frozen=True)
class WorkedExampleBounds:
    """The three bounds of the Section 5.1 worked example.

    Attributes
    ----------
    single_version_bound:
        ``mu_1 + k sigma_1`` (0.011 in the paper's example).
    two_version_bound_from_moments:
        The eq. (11) bound on ``mu_2 + k sigma_2`` (0.001 in the example).
    two_version_bound_from_bound:
        The looser eq. (12) bound (0.004 in the example).
    """

    single_version_bound: float
    two_version_bound_from_moments: float
    two_version_bound_from_bound: float

    @property
    def improvement_from_moments(self) -> float:
        """Factor by which the eq. (11) bound improves on the single-version bound."""
        if self.two_version_bound_from_moments == 0.0:
            return float("inf")
        return self.single_version_bound / self.two_version_bound_from_moments

    @property
    def improvement_from_bound(self) -> float:
        """Factor by which the eq. (12) bound improves on the single-version bound."""
        if self.two_version_bound_from_bound == 0.0:
            return float("inf")
        return self.single_version_bound / self.two_version_bound_from_bound


def worked_example_bounds(
    mu_1: float, sigma_1: float, p_max: float, k: float
) -> WorkedExampleBounds:
    """Reproduce the Section 5.1 numerical example from its four inputs.

    With ``mu_1 = 0.01``, ``sigma_1 = 0.001``, ``p_max = 0.1`` and ``k = 1``
    (an 84% confidence bound) the paper reports a single-version bound of
    0.011, an eq. (11) two-version bound of (approximately) 0.001 and an
    eq. (12) bound of (approximately) 0.004.
    """
    single = mu_1 + k * sigma_1
    from_moments = confidence_bound_from_moments(mu_1, sigma_1, p_max, k)
    from_bound = confidence_bound_from_bound(single, p_max)
    return WorkedExampleBounds(
        single_version_bound=single,
        two_version_bound_from_moments=from_moments,
        two_version_bound_from_bound=from_bound,
    )


@dataclass(frozen=True)
class BoundSweepResult:
    """Result of sweeping a process-improvement parameter for the bound ratio."""

    parameter_values: np.ndarray
    bound_ratios: np.ndarray
    single_version_bounds: np.ndarray
    two_version_bounds: np.ndarray

    def ratio_is_monotone_nondecreasing(self, atol: float = 1e-12) -> bool:
        """True when the bound ratio never decreases as the parameter increases."""
        return bool(np.all(np.diff(self.bound_ratios) >= -atol))


def bound_ratio_proportional_sweep(
    base_model: FaultModel, k_values: Sequence[float], k_factor: float
) -> BoundSweepResult:
    """Sweep the quality factor ``k`` and record the Section 5 bound ratio.

    Supports the Section 5.2 conjecture that the bound-ratio gain "improves
    with forms of process improvement that reduce the probability of all
    faults proportionally".
    """
    k_array = np.asarray(k_values, dtype=float)
    if np.any(k_array <= 0.0):
        raise ValueError("all k values must be positive")
    ratios = np.empty_like(k_array)
    singles = np.empty_like(k_array)
    pairs = np.empty_like(k_array)
    for position, quality in enumerate(k_array):
        candidate = base_model.scaled(float(quality))
        singles[position] = pfd_moments(candidate, 1).bound(k_factor)
        pairs[position] = pfd_moments(candidate, 2).bound(k_factor)
        ratios[position] = bound_gain_ratio(candidate, k_factor)
    return BoundSweepResult(
        parameter_values=k_array,
        bound_ratios=ratios,
        single_version_bounds=singles,
        two_version_bounds=pairs,
    )


def bound_ratio_single_fault_sweep(
    model: FaultModel, index: int, values: Sequence[float], k_factor: float
) -> BoundSweepResult:
    """Sweep a single ``p_index`` and record the Section 5 bound ratio.

    Supports the Section 5.2 conjecture that this gain "may increase or
    decrease with a process improvement that affects only one of the p_i".
    """
    value_array = np.asarray(values, dtype=float)
    ratios = np.empty_like(value_array)
    singles = np.empty_like(value_array)
    pairs = np.empty_like(value_array)
    for position, value in enumerate(value_array):
        candidate = model.with_probability(index, float(value))
        singles[position] = pfd_moments(candidate, 1).bound(k_factor)
        pairs[position] = pfd_moments(candidate, 2).bound(k_factor)
        ratios[position] = bound_gain_ratio(candidate, k_factor)
    return BoundSweepResult(
        parameter_values=value_array,
        bound_ratios=ratios,
        single_version_bounds=singles,
        two_version_bounds=pairs,
    )
