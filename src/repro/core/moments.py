"""Moments of the probability of failure on demand (Section 3 of the paper).

In the fault-creation model the PFD of a version or system is a sum of
independent two-point random variables: the ``i``-th takes the value ``q_i``
with probability ``p_i`` (single version) or ``p_i**2`` (1-out-of-2 system of
two independently developed versions), and 0 otherwise.  Hence (paper
eqs. (1)-(3) and (5)-(8)):

* ``E[Theta_1]   = sum p_i q_i``
* ``E[Theta_2]   = sum p_i^2 q_i``
* ``Var[Theta_1] = sum p_i (1 - p_i) q_i^2``
* ``Var[Theta_2] = sum p_i^2 (1 - p_i^2) q_i^2``

The functions here also generalise to an ``r``-version, 1-out-of-r system
(a fault is common to all ``r`` versions with probability ``p_i**r``), which
is used by the adjudication substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fault_model import FaultModel

__all__ = [
    "PfdMoments",
    "pfd_moments",
    "single_version_mean",
    "single_version_variance",
    "single_version_std",
    "two_version_mean",
    "two_version_variance",
    "two_version_std",
    "r_version_mean",
    "r_version_variance",
    "r_version_std",
]


def _validate_versions(versions: int) -> int:
    if not isinstance(versions, (int, np.integer)) or versions < 1:
        raise ValueError(f"versions must be a positive integer, got {versions}")
    return int(versions)


def r_version_mean(model: FaultModel, versions: int) -> float:
    """``E[Theta_r] = sum p_i^r q_i`` -- mean PFD of a 1-out-of-r system.

    With ``versions=1`` this is the paper's eq. (1) first part; with
    ``versions=2`` the second part.
    """
    versions = _validate_versions(versions)
    return float(np.sum(model.p**versions * model.q))


def r_version_variance(model: FaultModel, versions: int) -> float:
    """``Var[Theta_r] = sum p_i^r (1 - p_i^r) q_i^2`` (paper eq. (2))."""
    versions = _validate_versions(versions)
    present = model.p**versions
    return float(np.sum(present * (1.0 - present) * model.q**2))


def r_version_std(model: FaultModel, versions: int) -> float:
    """Standard deviation of the PFD of a 1-out-of-r system."""
    return float(np.sqrt(r_version_variance(model, versions)))


def single_version_mean(model: FaultModel) -> float:
    """``mu_1 = E[Theta_1] = sum p_i q_i`` (eq. (1))."""
    return r_version_mean(model, 1)


def single_version_variance(model: FaultModel) -> float:
    """``sigma_1^2 = sum p_i (1 - p_i) q_i^2`` (eq. (5))."""
    return r_version_variance(model, 1)


def single_version_std(model: FaultModel) -> float:
    """``sigma_1`` (eq. (8))."""
    return r_version_std(model, 1)


def two_version_mean(model: FaultModel) -> float:
    """``mu_2 = E[Theta_2] = sum p_i^2 q_i`` (eq. (1))."""
    return r_version_mean(model, 2)


def two_version_variance(model: FaultModel) -> float:
    """``sigma_2^2 = sum p_i^2 (1 - p_i^2) q_i^2`` (eq. (6))."""
    return r_version_variance(model, 2)


def two_version_std(model: FaultModel) -> float:
    """``sigma_2`` (eq. (7))."""
    return r_version_std(model, 2)


@dataclass(frozen=True)
class PfdMoments:
    """Mean, variance and standard deviation of a PFD distribution."""

    mean: float
    variance: float

    @property
    def std(self) -> float:
        """Standard deviation (square root of the variance)."""
        return float(np.sqrt(self.variance))

    def bound(self, k: float) -> float:
        """The Section 5 style upper bound ``mean + k * std``."""
        return self.mean + k * self.std


def pfd_moments(model: FaultModel, versions: int = 1) -> PfdMoments:
    """Moments of the PFD of a 1-out-of-``versions`` system built from ``model``."""
    return PfdMoments(
        mean=r_version_mean(model, versions),
        variance=r_version_variance(model, versions),
    )


def expected_fault_count(model: FaultModel, versions: int = 1) -> float:
    """Expected number of (common) faults, ``sum p_i^versions``.

    With ``versions=1`` this is ``E[N_1]``, with ``versions=2`` it is
    ``E[N_2]`` -- the regime split of Sections 4 and 5 is driven by whether
    this quantity is close to zero.
    """
    versions = _validate_versions(versions)
    return float(np.sum(model.p**versions))
