"""Exact distribution of the probability of failure on demand.

The paper works with means, standard deviations, the probability of zero PFD,
and normal approximations, because the full distribution of the PFD has
``2^n`` atoms in general.  For models of moderate size, however, the exact
distribution *can* be computed by convolving the ``n`` independent two-point
contributions, optionally collapsing the support onto a bounded grid to stay
tractable.  This lets the library:

* check the quality of the Section 5 normal approximation exactly
  (experiment E10);
* answer percentile questions ("what bound is not exceeded with 99%
  probability?") without the normal approximation;
* validate the Monte Carlo engine.
"""

from __future__ import annotations

import numpy as np

from repro.core.fault_model import FaultModel
from repro.stats.discrete import DiscreteDistribution, convolve_two_points

__all__ = [
    "exact_pfd_distribution",
    "pfd_exceedance_probability",
    "pfd_percentile",
    "prob_pfd_zero",
]


def exact_pfd_distribution(
    model: FaultModel, versions: int = 1, max_support: int | None = 4096
) -> DiscreteDistribution:
    """The exact distribution of the PFD of a 1-out-of-``versions`` system.

    Parameters
    ----------
    model:
        The fault-creation model.
    versions:
        Number of independently developed versions combined 1-out-of-r;
        ``1`` gives the single-version distribution, ``2`` the paper's
        two-version system.
    max_support:
        Upper bound on the number of support points kept during convolution.
        ``None`` keeps the full support (exact but exponential in ``n``); the
        default keeps the computation tractable for any model size while
        preserving the mean exactly and the shape to within the grid
        resolution.
    """
    if versions < 1:
        raise ValueError(f"versions must be a positive integer, got {versions}")
    return convolve_two_points(model.q, model.p ** versions, max_support=max_support)


def pfd_exceedance_probability(
    model: FaultModel,
    threshold: float,
    versions: int = 1,
    max_support: int | None = 4096,
) -> float:
    """``P(Theta_r > threshold)`` computed from the exact PFD distribution.

    This is the risk of violating a required PFD bound ``theta_R``
    (the paper's Section 3 second scenario) without invoking the normal
    approximation.
    """
    if threshold < 0.0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    distribution = exact_pfd_distribution(model, versions, max_support)
    return distribution.survival(threshold)


def pfd_percentile(
    model: FaultModel,
    level: float,
    versions: int = 1,
    max_support: int | None = 4096,
) -> float:
    """The ``level`` percentile of the exact PFD distribution.

    E.g. ``level=0.99`` answers the paper's "what is the 99th percentile of
    the distribution of the system PFD?" exactly.
    """
    distribution = exact_pfd_distribution(model, versions, max_support)
    return distribution.quantile(level)


def prob_pfd_zero(model: FaultModel, versions: int = 1) -> float:
    """``P(Theta_r = 0)``.

    Under the non-overlap assumption the PFD is zero exactly when no fault
    (common fault, for ``versions >= 2``) with a non-empty failure region is
    present; for models where every ``q_i > 0`` this coincides with
    ``P(N_r = 0)`` from :mod:`repro.core.no_common_faults`.  Faults with
    ``q_i = 0`` are excluded here because their presence does not affect the
    PFD.
    """
    if versions < 1:
        raise ValueError(f"versions must be a positive integer, got {versions}")
    effective = model.q > 0.0
    if not np.any(effective):
        return 1.0
    present = model.p[effective] ** versions
    return float(np.prod(1.0 - present))
