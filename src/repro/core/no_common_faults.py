"""Probability of no common faults (Section 4 of the paper).

For very high-quality software the requirement is effectively that the pair of
versions share *no* failure region at all.  With independent fault
introduction:

* ``P(N_1 = 0) = prod (1 - p_i)``       -- a single version is fault-free;
* ``P(N_2 = 0) = prod (1 - p_i^2)``     -- a pair has no common fault;
* the *risk ratio* of eq. (10),
  ``P(N_2 > 0) / P(N_1 > 0) = (1 - prod(1 - p_i^2)) / (1 - prod(1 - p_i))``,
  measures the gain from diversity: the smaller the ratio, the greater the
  advantage.  It never exceeds 1;
* the footnote-5 *success ratio*
  ``P(N_2 = 0) / P(N_1 = 0) = prod (1 + p_i) >= 1`` is also provided, together
  with the paper's argument for preferring the risk ratio.

The full distributions of the fault counts ``N_1`` and ``N_2`` (and of the
common-fault count of an ``r``-version system) are Poisson-binomial and are
exposed via :func:`fault_count_distribution`.
"""

from __future__ import annotations

import numpy as np

from repro.core.fault_model import FaultModel
from repro.stats.poisson_binomial import PoissonBinomial

__all__ = [
    "prob_fault_free_version",
    "prob_fault_free_pair",
    "prob_fault_free_r_versions",
    "prob_any_fault",
    "prob_any_common_fault",
    "risk_ratio",
    "success_ratio",
    "fault_count_distribution",
    "expected_common_faults",
]


def prob_fault_free_version(model: FaultModel) -> float:
    """``P(N_1 = 0) = prod (1 - p_i)``."""
    return float(np.prod(1.0 - model.p))


def prob_fault_free_pair(model: FaultModel) -> float:
    """``P(N_2 = 0) = prod (1 - p_i^2)`` -- no fault common to both versions."""
    return float(np.prod(1.0 - model.p**2))


def prob_fault_free_r_versions(model: FaultModel, versions: int) -> float:
    """``P(N_r = 0) = prod (1 - p_i^r)`` -- no fault common to all ``versions`` versions."""
    if versions < 1:
        raise ValueError(f"versions must be a positive integer, got {versions}")
    return float(np.prod(1.0 - model.p**versions))


def prob_any_fault(model: FaultModel) -> float:
    """``P(N_1 > 0)`` -- the risk of a single version containing at least one fault."""
    return 1.0 - prob_fault_free_version(model)


def prob_any_common_fault(model: FaultModel, versions: int = 2) -> float:
    """``P(N_r > 0)`` -- the risk of at least one fault common to all ``versions`` versions."""
    return 1.0 - prob_fault_free_r_versions(model, versions)


def risk_ratio(model: FaultModel, versions: int = 2) -> float:
    """The eq. (10) gain ratio ``P(N_r > 0) / P(N_1 > 0)``.

    Values close to 0 mean a large gain from diversity; values close to 1 mean
    little gain.  The ratio is always <= 1 (diversity never hurts under the
    model).  When ``P(N_1 > 0) = 0`` (all ``p_i`` zero) the single version is
    already certainly fault-free, diversity adds nothing, and the ratio is
    returned as 1.0 by convention.
    """
    denominator = prob_any_fault(model)
    if denominator == 0.0:
        return 1.0
    return prob_any_common_fault(model, versions) / denominator


def success_ratio(model: FaultModel) -> float:
    """The footnote-5 ratio ``P(N_2 = 0) / P(N_1 = 0) = prod (1 + p_i)``.

    Always >= 1.  The paper argues this is the *less* useful measure for
    practitioners, because the probabilities of success are intended to be
    close to 1 in the first place and large changes in risk then appear as
    small changes in this ratio; it is provided for completeness and for
    reproducing the footnote.  When some ``p_i = 1`` the single version can
    never be fault-free and the ratio is infinite.
    """
    denominator = prob_fault_free_version(model)
    if denominator == 0.0:
        return float("inf")
    return prob_fault_free_pair(model) / denominator


def expected_common_faults(model: FaultModel, versions: int = 2) -> float:
    """``E[N_r] = sum p_i^r`` -- expected number of faults common to all versions."""
    if versions < 1:
        raise ValueError(f"versions must be a positive integer, got {versions}")
    return float(np.sum(model.p**versions))


def fault_count_distribution(model: FaultModel, versions: int = 1) -> PoissonBinomial:
    """The Poisson-binomial distribution of the (common-)fault count.

    ``versions=1`` gives the distribution of ``N_1`` (faults in a single
    version); ``versions=2`` gives ``N_2`` (faults common to an independently
    developed pair); larger values generalise to 1-out-of-r systems.

    The distribution object is memoised on the model, so repeated queries
    (e.g. across an assessment report) share one exact-PMF computation.
    """
    return model.poisson_binomial(versions)
