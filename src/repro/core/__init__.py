"""Core model: the fault creation process of Popov & Strigini (DSN 2001).

This subpackage implements the paper's primary contribution -- a probabilistic
model of how design faults are created in independently developed software
versions, and what that implies for the reliability of a 1-out-of-2 diverse
system:

* :mod:`~repro.core.fault_model` -- the model parameters ``{p_i, q_i}``
  (Section 2.2);
* :mod:`~repro.core.moments` -- means and variances of the probability of
  failure on demand (PFD) of one-version and r-version systems
  (Section 3, eqs. (1)-(3), (5)-(8));
* :mod:`~repro.core.bounds` -- the inequality lemmas on means, standard
  deviations and confidence bounds (eqs. (4), (9), (11), (12));
* :mod:`~repro.core.no_common_faults` -- the probability of no common faults
  and the risk ratio of eq. (10) (Section 4);
* :mod:`~repro.core.process_improvement` -- effects of process improvement on
  the gain from diversity (Section 4.2, Appendices A and B);
* :mod:`~repro.core.normal_approximation` -- confidence bounds under the
  normal approximation (Section 5);
* :mod:`~repro.core.pfd_distribution` -- the exact distribution of the PFD;
* :mod:`~repro.core.gain` and :mod:`~repro.core.system` -- assessor-facing
  summaries and high-level system facades.
"""

from repro.core.bounds import (
    confidence_bound_from_bound,
    confidence_bound_from_moments,
    mean_gain_factor,
    pmax_gain_table,
    std_gain_factor,
)
from repro.core.fault_model import FaultClass, FaultModel
from repro.core.gain import DiversityGainSummary, diversity_gain_summary
from repro.core.moments import (
    PfdMoments,
    pfd_moments,
    r_version_mean,
    r_version_variance,
    single_version_mean,
    single_version_std,
    single_version_variance,
    two_version_mean,
    two_version_std,
    two_version_variance,
)
from repro.core.no_common_faults import (
    fault_count_distribution,
    prob_any_common_fault,
    prob_any_fault,
    prob_fault_free_pair,
    prob_fault_free_version,
    risk_ratio,
    success_ratio,
)
from repro.core.normal_approximation import (
    berry_esseen_error,
    bound_difference,
    bound_gain_ratio,
    normal_approximation,
)
from repro.core.pfd_distribution import exact_pfd_distribution, pfd_exceedance_probability
from repro.core.process_improvement import (
    proportional_improvement_derivative,
    risk_ratio_gradient,
    risk_ratio_partial_derivative,
    single_fault_reversal_point,
    two_fault_reversal_point,
)
from repro.core.system import OneOutOfTwoSystem, SingleVersionSystem

__all__ = [
    "DiversityGainSummary",
    "FaultClass",
    "FaultModel",
    "OneOutOfTwoSystem",
    "PfdMoments",
    "SingleVersionSystem",
    "berry_esseen_error",
    "bound_difference",
    "bound_gain_ratio",
    "confidence_bound_from_bound",
    "confidence_bound_from_moments",
    "diversity_gain_summary",
    "exact_pfd_distribution",
    "fault_count_distribution",
    "mean_gain_factor",
    "normal_approximation",
    "pfd_exceedance_probability",
    "pfd_moments",
    "pmax_gain_table",
    "prob_any_common_fault",
    "prob_any_fault",
    "prob_fault_free_pair",
    "prob_fault_free_version",
    "proportional_improvement_derivative",
    "r_version_mean",
    "r_version_variance",
    "risk_ratio",
    "risk_ratio_gradient",
    "risk_ratio_partial_derivative",
    "single_fault_reversal_point",
    "single_version_mean",
    "single_version_std",
    "single_version_variance",
    "std_gain_factor",
    "success_ratio",
    "two_fault_reversal_point",
    "two_version_mean",
    "two_version_std",
    "two_version_variance",
]
