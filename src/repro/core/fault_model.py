"""The fault-creation model parameters (Section 2.2 of the paper).

The model is fully specified by a collection of *potential faults*
``{F_1 .. F_n}``, each characterised by two numbers:

* ``p_i`` -- the probability that the fault is actually produced (and not
  removed) in a newly, independently developed version;
* ``q_i`` -- the probability that an operational demand falls inside the
  fault's failure region, i.e. the fault's contribution to the PFD when it is
  present.

The model's assumptions (stated explicitly in the paper, Section 2.2):

1. one-to-one mapping between faults and failure regions;
2. non-overlapping failure regions, so the PFD of a version is the *sum* of
   the ``q_i`` of the faults present in it;
3. statistically independent introduction of faults ("as though the design
   team ... tossed dice to decide whether to insert it or not").

:class:`FaultModel` stores the parameter vectors, validates them, and offers
constructors for the scenarios used throughout the paper (homogeneous models,
randomly generated models, and models derived from failure-region geometry via
:mod:`repro.demandspace`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["FaultClass", "FaultModel"]


@dataclass(frozen=True)
class FaultClass:
    """A single potential fault.

    Parameters
    ----------
    probability:
        ``p_i`` -- probability that the fault is present in a randomly
        developed version, in ``[0, 1]``.
    impact:
        ``q_i`` -- probability of a demand hitting the fault's failure region,
        in ``[0, 1]``.
    name:
        Optional human-readable label (e.g. "mis-set trip threshold").
    """

    probability: float
    impact: float
    name: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if not 0.0 <= self.impact <= 1.0:
            raise ValueError(f"impact must be in [0, 1], got {self.impact}")


@dataclass(frozen=True)
class FaultModel:
    """The complete parameter set ``{(p_i, q_i)}`` of the fault-creation model.

    Parameters
    ----------
    p:
        Vector of fault-introduction probabilities ``p_i``.
    q:
        Vector of failure-region probabilities ``q_i`` (same length as ``p``).
    names:
        Optional per-fault labels.
    strict:
        When ``True`` (default) the non-overlap assumption is enforced by
        requiring ``sum(q) <= 1``.  Passing ``strict=False`` allows
        ``sum(q) > 1``, which the paper discusses as an acceptable pessimistic
        relaxation (Section 6.2); the flag is recorded on the instance.
    """

    p: np.ndarray
    q: np.ndarray
    names: tuple[str, ...] = ()
    strict: bool = True
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        p = np.atleast_1d(np.asarray(self.p, dtype=float))
        q = np.atleast_1d(np.asarray(self.q, dtype=float))
        if p.ndim != 1 or q.ndim != 1:
            raise ValueError("p and q must be 1-D arrays")
        if p.size != q.size:
            raise ValueError(f"p ({p.size}) and q ({q.size}) must have the same length")
        if p.size == 0:
            raise ValueError("a fault model must contain at least one potential fault")
        if np.any(~np.isfinite(p)) or np.any(~np.isfinite(q)):
            raise ValueError("p and q must be finite")
        if np.any((p < 0.0) | (p > 1.0)):
            raise ValueError("all p_i must lie in [0, 1]")
        if np.any((q < 0.0) | (q > 1.0)):
            raise ValueError("all q_i must lie in [0, 1]")
        if self.strict and q.sum() > 1.0 + 1e-9:
            raise ValueError(
                "sum(q) exceeds 1, violating the non-overlapping failure-region "
                "assumption; pass strict=False to accept the pessimistic relaxation "
                f"(sum(q) = {q.sum():.6f})"
            )
        names = tuple(self.names) if self.names else tuple(f"fault_{i + 1}" for i in range(p.size))
        if len(names) != p.size:
            raise ValueError(f"expected {p.size} names, got {len(names)}")
        object.__setattr__(self, "p", p)
        object.__setattr__(self, "q", q)
        object.__setattr__(self, "names", names)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of potential faults (the paper's ``n``)."""
        return int(self.p.size)

    def _cached(self, key, compute):
        """Memoise ``compute()`` under ``key`` in the instance cache.

        The model is immutable, so every derived quantity is computed at most
        once per instance; the cache is excluded from equality and repr.
        """
        if key not in self._cache:
            self._cache[key] = compute()
        return self._cache[key]

    @property
    def p_max(self) -> float:
        """``max{p_1 .. p_n}`` -- the quantity driving the paper's bounds."""
        return self._cached("p_max", lambda: float(np.max(self.p)))

    @property
    def p_min(self) -> float:
        """``min{p_1 .. p_n}``."""
        return self._cached("p_min", lambda: float(np.min(self.p)))

    @property
    def total_impact(self) -> float:
        """``sum(q_i)`` -- the largest PFD any version can attain."""
        return self._cached("total_impact", lambda: float(np.sum(self.q)))

    def poisson_binomial(self, versions: int = 1):
        """Memoised Poisson-binomial view of the (common-)fault count.

        ``versions=1`` is the distribution of ``N_1`` (faults in one version);
        ``versions=r`` the distribution of ``N_r`` (faults common to ``r``
        independently developed versions, probabilities ``p_i**r``).  Because
        the :class:`~repro.stats.poisson_binomial.PoissonBinomial` caches its
        exact PMF, memoising the view here means the ``O(n^2)`` dynamic
        programming recursion runs at most once per model and exponent.
        """
        from repro.stats.poisson_binomial import PoissonBinomial

        if versions < 1:
            raise ValueError(f"versions must be a positive integer, got {versions}")
        return self._cached(
            ("poisson_binomial", versions), lambda: PoissonBinomial(self.p**versions)
        )

    def powered(self, versions: int) -> "FaultModel":
        """Memoised model with every ``p_i`` raised to ``versions``.

        This is the "system view" of the model: a fault is present in all
        ``versions`` independently developed versions with probability
        ``p_i**versions`` (Section 2.2), so the 1-out-of-r system behaves like
        a single version developed from the powered model.
        """
        if versions < 1:
            raise ValueError(f"versions must be a positive integer, got {versions}")
        if versions == 1:
            return self
        return self._cached(
            ("powered", versions),
            lambda: FaultModel(
                p=self.p**versions, q=self.q.copy(), names=self.names, strict=self.strict
            ),
        )

    def fault_classes(self) -> list[FaultClass]:
        """The model as a list of :class:`FaultClass` value objects."""
        return [
            FaultClass(probability=float(self.p[i]), impact=float(self.q[i]), name=self.names[i])
            for i in range(self.n)
        ]

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_fault_classes(faults: Iterable[FaultClass], strict: bool = True) -> "FaultModel":
        """Build a model from :class:`FaultClass` instances."""
        fault_list = list(faults)
        if not fault_list:
            raise ValueError("at least one fault class is required")
        return FaultModel(
            p=np.array([fault.probability for fault in fault_list]),
            q=np.array([fault.impact for fault in fault_list]),
            names=tuple(fault.name or f"fault_{i + 1}" for i, fault in enumerate(fault_list)),
            strict=strict,
        )

    @staticmethod
    def homogeneous(n: int, probability: float, impact: float, strict: bool = True) -> "FaultModel":
        """A model with ``n`` identical faults (all ``p_i = probability``, ``q_i = impact``).

        The simplest scenario used by the paper's numerical illustrations.
        """
        if n < 1:
            raise ValueError(f"n must be positive, got {n}")
        return FaultModel(
            p=np.full(n, float(probability)), q=np.full(n, float(impact)), strict=strict
        )

    @staticmethod
    def random(
        rng: np.random.Generator,
        n: int,
        p_range: tuple[float, float] = (0.001, 0.1),
        total_impact: float = 0.5,
        impact_dispersion: float = 1.0,
        strict: bool = True,
    ) -> "FaultModel":
        """Generate a random model, for simulation studies and property tests.

        Fault probabilities are drawn log-uniformly from ``p_range`` (so that
        rare and common fault types are both represented), and impacts are a
        Dirichlet split of ``total_impact`` with concentration
        ``impact_dispersion`` (smaller values give more unequal failure-region
        sizes, matching the observation that some regions are much "larger"
        than others).
        """
        if n < 1:
            raise ValueError(f"n must be positive, got {n}")
        low, high = p_range
        if not 0.0 < low <= high <= 1.0:
            raise ValueError(f"p_range must satisfy 0 < low <= high <= 1, got {p_range}")
        if not 0.0 < total_impact <= 1.0:
            raise ValueError(f"total_impact must be in (0, 1], got {total_impact}")
        if impact_dispersion <= 0.0:
            raise ValueError(f"impact_dispersion must be positive, got {impact_dispersion}")
        log_p = rng.uniform(math.log(low), math.log(high), size=n)
        p = np.exp(log_p)
        shares = rng.dirichlet(np.full(n, impact_dispersion))
        q = shares * total_impact
        return FaultModel(p=p, q=q, strict=strict)

    @staticmethod
    def from_regions(
        probabilities: Sequence[float],
        regions: Sequence,
        profile,
        rng: np.random.Generator | None = None,
        sample_size: int = 100_000,
        names: Sequence[str] | None = None,
        strict: bool = True,
    ) -> "FaultModel":
        """Build a model from failure-region geometry and an operational profile.

        Each fault's ``q_i`` is the probability of its failure region under
        ``profile``, computed analytically when possible and otherwise
        estimated by Monte Carlo (``rng`` is then required).

        Parameters
        ----------
        probabilities:
            The ``p_i`` of each fault.
        regions:
            The corresponding :class:`repro.demandspace.FailureRegion` objects.
        profile:
            An :class:`repro.demandspace.OperationalProfile`.
        rng, sample_size:
            Monte Carlo fallback parameters.
        """
        from repro.demandspace.measure import estimate_region_probability, region_probability

        if len(probabilities) != len(regions):
            raise ValueError("probabilities and regions must have the same length")
        impacts: list[float] = []
        for region in regions:
            analytic = region_probability(region, profile)
            if analytic is not None:
                impacts.append(analytic)
                continue
            if rng is None:
                raise ValueError(
                    "no analytic probability available for a region; provide rng for "
                    "Monte Carlo estimation"
                )
            impacts.append(estimate_region_probability(region, profile, rng, sample_size).value)
        return FaultModel(
            p=np.asarray(probabilities, dtype=float),
            q=np.asarray(impacts, dtype=float),
            names=tuple(names) if names is not None else (),
            strict=strict,
        )

    # ------------------------------------------------------------------ #
    # Derived models
    # ------------------------------------------------------------------ #
    def scaled(self, k: float) -> "FaultModel":
        """The model with every ``p_i`` multiplied by ``k`` (``p_i = k b_i``).

        This is the parameterisation of Appendix B: the fault probabilities of
        the current model play the role of the base rates ``b_i`` and ``k``
        expresses overall process quality (smaller ``k`` means a better
        process).
        """
        if k < 0.0:
            raise ValueError(f"k must be non-negative, got {k}")
        scaled_p = self.p * k
        if np.any(scaled_p > 1.0):
            raise ValueError(
                f"scaling by k={k} pushes some p_i above 1 (max would be {scaled_p.max():.4f})"
            )
        return FaultModel(p=scaled_p, q=self.q.copy(), names=self.names, strict=self.strict)

    def rescaled(self, p_scale: float = 1.0, q_scale: float = 1.0) -> "FaultModel":
        """The model with every ``p_i`` times ``p_scale`` and every ``q_i`` times ``q_scale``.

        This is the sweep-point transform used by study axes and
        :func:`repro.evaluate_sweep`: :meth:`scaled` (Appendix B process
        quality) composed with a uniform failure-region scaling.  Neutral
        scales return ``self`` unchanged, so derived-quantity caches survive.
        """
        if q_scale < 0.0:
            raise ValueError(f"q_scale must be non-negative, got {q_scale}")
        if p_scale == 1.0 and q_scale == 1.0:
            return self
        model = self.scaled(p_scale) if p_scale != 1.0 else self
        if q_scale == 1.0:
            return model
        return FaultModel(
            p=model.p.copy(), q=model.q * q_scale, names=model.names, strict=model.strict
        )

    def with_probability(self, index: int, probability: float) -> "FaultModel":
        """The model with ``p_index`` replaced (the Section 4.2.1 single-fault change)."""
        if not 0 <= index < self.n:
            raise IndexError(f"fault index {index} out of range for n={self.n}")
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        new_p = self.p.copy()
        new_p[index] = probability
        return FaultModel(p=new_p, q=self.q.copy(), names=self.names, strict=self.strict)

    def with_impact(self, index: int, impact: float) -> "FaultModel":
        """The model with ``q_index`` replaced."""
        if not 0 <= index < self.n:
            raise IndexError(f"fault index {index} out of range for n={self.n}")
        if not 0.0 <= impact <= 1.0:
            raise ValueError(f"impact must be in [0, 1], got {impact}")
        new_q = self.q.copy()
        new_q[index] = impact
        return FaultModel(p=self.p.copy(), q=new_q, names=self.names, strict=self.strict)

    def subset(self, indices: Sequence[int]) -> "FaultModel":
        """A model restricted to the given fault indices."""
        index_array = np.asarray(indices, dtype=int)
        if index_array.size == 0:
            raise ValueError("subset requires at least one fault index")
        return FaultModel(
            p=self.p[index_array],
            q=self.q[index_array],
            names=tuple(self.names[i] for i in index_array),
            strict=self.strict,
        )

    def merged(self, other: "FaultModel") -> "FaultModel":
        """Concatenate two fault models into one (disjoint fault populations)."""
        return FaultModel(
            p=np.concatenate([self.p, other.p]),
            q=np.concatenate([self.q, other.q]),
            names=self.names + other.names,
            strict=self.strict and other.strict,
        )

    def merge_faults(self, indices: Sequence[int], name: str = "") -> "FaultModel":
        """Merge several faults into a single fault.

        The merged fault is present whenever *any* of the originals would have
        been (probability ``1 - prod(1 - p_i)``) and its failure region is the
        union of the originals (impact ``sum(q_i)`` under the non-overlap
        assumption).  This is the paper's Section 6.1 device for representing
        perfectly positively correlated mistakes: "they can be considered as
        one mistake, with a resulting failure region which is the union of
        those associated to the two mistakes".
        """
        index_array = np.asarray(sorted(set(int(i) for i in indices)), dtype=int)
        if index_array.size < 2:
            raise ValueError("merging requires at least two distinct fault indices")
        if index_array[0] < 0 or index_array[-1] >= self.n:
            raise IndexError("fault index out of range")
        keep_mask = np.ones(self.n, dtype=bool)
        keep_mask[index_array] = False
        merged_probability = 1.0 - float(np.prod(1.0 - self.p[index_array]))
        merged_impact = float(np.sum(self.q[index_array]))
        merged_name = name or "+".join(self.names[i] for i in index_array)
        new_p = np.concatenate([self.p[keep_mask], [merged_probability]])
        new_q = np.concatenate([self.q[keep_mask], [min(merged_impact, 1.0)]])
        new_names = tuple(np.asarray(self.names, dtype=object)[keep_mask]) + (merged_name,)
        return FaultModel(p=new_p, q=new_q, names=new_names, strict=self.strict)

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Plain-Python representation (suitable for JSON serialisation)."""
        return {
            "p": self.p.tolist(),
            "q": self.q.tolist(),
            "names": list(self.names),
            "strict": self.strict,
        }

    @staticmethod
    def from_dict(data: Mapping) -> "FaultModel":
        """Reconstruct a model from :meth:`to_dict` output."""
        return FaultModel(
            p=np.asarray(data["p"], dtype=float),
            q=np.asarray(data["q"], dtype=float),
            names=tuple(data.get("names", ())),
            strict=bool(data.get("strict", True)),
        )

    def __len__(self) -> int:
        return self.n
